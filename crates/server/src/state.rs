//! Request routing and shared server state.
//!
//! One [`ServerState`] is shared by every worker thread. It owns the
//! persistent [`Store`], an in-memory cache of parsed modules (keyed by
//! content hash), and a [`SessionCache`] keyed by the same hashes so the
//! static stage is computed at most once per module *per process* — with
//! the store extending that guarantee across processes at the response
//! granularity.
//!
//! Every handler returns `Result<Value, ServeError>`; the connection layer
//! wraps dispatch in `catch_unwind`, so a bug in a handler costs one error
//! response, never the server.

use crate::ops::{AdmissionPolicy, Ops, METHODS};
use crate::protocol::{ServeError, PROTOCOL_MINOR, PROTOCOL_VERSION};
use crate::store::{Store, StoreKey};
use perf_taint::report::{analysis_summary, static_summary};
use perf_taint::{parse_module, Analysis, PolicyKind, PtError, SessionCache, UnitStore};
use pt_extrap::{fit_multi_param, MeasurementSet, Restriction, SearchSpace};
use pt_ir::Module;
use serde::json::Value;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A method handler in the dispatch table.
type Handler = fn(&ServerState, &Value) -> Result<Value, ServeError>;

/// The [`Store`]-backed [`UnitStore`]: per-function static-stage artifacts
/// persist under [`ArtifactKind::Functions`](crate::store::ArtifactKind),
/// so a restarted server reuses every untouched function of an edited
/// module from disk. Both directions are best-effort — a broken store
/// degrades the edit loop to compute-always, never to an error.
struct StoreUnitStore(Arc<Store>);

impl UnitStore for StoreUnitStore {
    fn load(&self, key: &str) -> Option<String> {
        let k = StoreKey::function_unit(key);
        self.0.get(k.kind, &k.hash)
    }

    fn save(&self, key: &str, doc: &str) {
        let k = StoreKey::function_unit(key);
        let _ = self.0.put(k.kind, &k.hash, doc);
    }
}

/// Cumulative tiered-execution counters over every taint run this process
/// actually executed (responses served from the persistent store never
/// reach the interpreter and are not counted here).
#[derive(Default)]
struct TierTotals {
    /// Taint runs that went through the interpreter.
    runs: AtomicU64,
    /// Runs that started with a session-cached tier-1 specialization
    /// installed (see [`perf_taint::Analysis::tier_reused`]).
    runs_reusing_spec: AtomicU64,
    specialized: AtomicU64,
    respecialized: AtomicU64,
    threaded_insts: AtomicU64,
    fast_insts: AtomicU64,
    fast_deopts: AtomicU64,
}

/// Per-policy taint-run counters (protocol v1.4): one slot per
/// [`PolicyKind`], indexed in [`PolicyKind::ALL`] order.
#[derive(Default)]
struct PolicyTotals {
    runs: [AtomicU64; PolicyKind::ALL.len()],
}

impl PolicyTotals {
    fn record(&self, policy: PolicyKind) {
        let idx = PolicyKind::ALL.iter().position(|&p| p == policy).unwrap();
        self.runs[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn to_json(&self) -> Value {
        Value::Obj(
            PolicyKind::ALL
                .iter()
                .zip(&self.runs)
                .map(|(p, n)| {
                    (
                        p.name().to_string(),
                        Value::int(n.load(Ordering::Relaxed) as i64),
                    )
                })
                .collect(),
        )
    }
}

/// Stage-name cardinality bound of the sampled profile: stage names come
/// from our own instrumentation (a small fixed set), but the bound makes
/// the memory ceiling explicit no matter what future spans appear.
const MAX_PROFILE_STAGES: usize = 64;

/// One stage's aggregate across every sampled request (protocol v1.4).
#[derive(Debug, Clone, Copy, Default)]
struct StageTotal {
    count: u64,
    total_ms: f64,
    max_ms: f64,
}

/// The sampled always-on request profile (protocol v1.4): every Nth
/// request runs under the request tracer, and its per-stage wall totals
/// are folded into this bounded in-memory aggregate. Unlike the `trace`
/// method (client opts in per request) or the slow-request log (only
/// outliers surface), this keeps a continuous low-overhead picture of
/// where *typical* request time goes; `metrics` reports it.
#[derive(Default)]
struct SampledProfile {
    /// Requests seen by the sampling decision (traced or not).
    seen: AtomicU64,
    /// Requests actually traced into the profile.
    sampled: AtomicU64,
    stages: Mutex<BTreeMap<String, StageTotal>>,
}

impl SampledProfile {
    fn record(&self, wall_ms: f64, stages: &[(String, f64)]) {
        self.sampled.fetch_add(1, Ordering::Relaxed);
        let mut map = self.stages.lock().unwrap();
        let mut fold = |name: &str, ms: f64| {
            if map.len() >= MAX_PROFILE_STAGES && !map.contains_key(name) {
                return; // bounded: never grow past the cap
            }
            let slot = map.entry(name.to_string()).or_default();
            slot.count += 1;
            slot.total_ms += ms;
            slot.max_ms = slot.max_ms.max(ms);
        };
        fold("request", wall_ms);
        for (name, ms) in stages {
            fold(name, *ms);
        }
    }

    fn to_json(&self, sample_every: Option<u64>) -> Value {
        let stages = self
            .stages
            .lock()
            .unwrap()
            .iter()
            .map(|(name, t)| {
                (
                    name.clone(),
                    Value::obj(vec![
                        ("count", Value::int(t.count as i64)),
                        ("total_ms", Value::Num(t.total_ms)),
                        ("mean_ms", Value::Num(t.total_ms / t.count.max(1) as f64)),
                        ("max_ms", Value::Num(t.max_ms)),
                    ]),
                )
            })
            .collect();
        Value::obj(vec![
            (
                "sample_every",
                match sample_every {
                    Some(n) => Value::int(n as i64),
                    None => Value::Null,
                },
            ),
            (
                "requests_seen",
                Value::int(self.seen.load(Ordering::Relaxed) as i64),
            ),
            (
                "requests_sampled",
                Value::int(self.sampled.load(Ordering::Relaxed) as i64),
            ),
            ("stages", Value::Obj(stages)),
        ])
    }
}

/// Everything the worker threads share.
pub struct ServerState {
    store: Arc<Store>,
    /// Parsed modules by content hash (loaded lazily from the store, so a
    /// restarted server can serve hashes submitted to a previous process).
    modules: Mutex<HashMap<String, Arc<Module>>>,
    /// In-process static-stage sharing, keyed by module content hash —
    /// backed by a store-persistent per-function artifact cache, so an
    /// edited module recomputes only the edited function's cone.
    sessions: SessionCache,
    /// Worker threads available to `analyze_batch` fan-out.
    pub workers: usize,
    /// Connection-queue bound (reported in `stats`).
    pub queue_capacity: usize,
    requests: AtomicU64,
    /// Responses answered from the persistent store without touching the
    /// pipeline (the acceptance observable for warm requests).
    served_from_store: AtomicU64,
    /// Operational self-observation: uptime, queue depth, shed counts,
    /// per-method counters and latency histograms (read out by `metrics`).
    ops: Ops,
    /// Tiered-execution counters across all interpreter runs (read out by
    /// `stats` and `metrics`).
    tier: TierTotals,
    /// Overload stance of the accept path (see [`AdmissionPolicy`]).
    pub admission: AdmissionPolicy,
    /// Serializes `analyze_batch` fan-outs: each batch uses the full
    /// worker budget, so concurrent batches must queue here rather than
    /// multiply to workers² simultaneous taint runs.
    batch_gate: Mutex<()>,
    stopping: AtomicBool,
    /// Close connections idle longer than this (keep-alive limit).
    pub idle_timeout: Option<std::time::Duration>,
    /// Close connections after serving this many requests.
    pub max_requests_per_connection: Option<u64>,
    /// Emit a structured stderr line for requests slower than this
    /// (protocol v1.3 slow-request log; `None` = off).
    pub slow_request_ms: Option<u64>,
    /// Sampled always-on tracing (protocol v1.4): every Nth request is
    /// traced into [`SampledProfile`]. `None` = off.
    pub trace_sample_every: Option<u64>,
    /// Per-policy taint-run counters (protocol v1.4).
    policy_runs: PolicyTotals,
    /// The bounded per-stage aggregate behind `trace_sample_every`.
    sampled: SampledProfile,
}

impl ServerState {
    pub fn new(store: Store, workers: usize, queue_capacity: usize) -> ServerState {
        let store = Arc::new(store);
        let units = Arc::new(StoreUnitStore(store.clone()));
        ServerState {
            store,
            modules: Mutex::new(HashMap::new()),
            sessions: SessionCache::with_store(units),
            workers: workers.max(1),
            queue_capacity,
            requests: AtomicU64::new(0),
            served_from_store: AtomicU64::new(0),
            ops: Ops::new(),
            tier: TierTotals::default(),
            admission: AdmissionPolicy::default(),
            batch_gate: Mutex::new(()),
            stopping: AtomicBool::new(false),
            idle_timeout: None,
            max_requests_per_connection: None,
            slow_request_ms: None,
            trace_sample_every: None,
            policy_runs: PolicyTotals::default(),
            sampled: SampledProfile::default(),
        }
    }

    /// Set the connection keep-alive limits (see [`crate::ServerConfig`]).
    pub fn with_keepalive_limits(
        mut self,
        idle_timeout: Option<std::time::Duration>,
        max_requests_per_connection: Option<u64>,
    ) -> ServerState {
        self.idle_timeout = idle_timeout;
        self.max_requests_per_connection = max_requests_per_connection;
        self
    }

    /// Set the overload stance (see [`AdmissionPolicy`]).
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> ServerState {
        self.admission = admission;
        self
    }

    /// Bound the in-process session cache to `entries` module contents
    /// (LRU eviction; `None` = unbounded, the pre-v1.3 behavior).
    pub fn with_session_cache_entries(mut self, entries: Option<usize>) -> ServerState {
        self.sessions = self.sessions.with_capacity(entries);
        self
    }

    /// Log one structured stderr line for any request slower than this
    /// (`None` disables the log; see [`crate::handle_line`]).
    pub fn with_slow_request_log(mut self, slow_request_ms: Option<u64>) -> ServerState {
        self.slow_request_ms = slow_request_ms;
        self
    }

    /// Trace every Nth request into the sampled profile `metrics` reports
    /// (`None` disables sampling; see [`crate::handle_line`]).
    pub fn with_trace_sampling(mut self, every: Option<u64>) -> ServerState {
        self.trace_sample_every = every.map(|n| n.max(1));
        self
    }

    /// Sampling decision for one incoming request: true every Nth call.
    /// (The first request is sampled, so short-lived servers still leave
    /// a profile behind.)
    pub fn sampling_due(&self) -> bool {
        let Some(every) = self.trace_sample_every else {
            return false;
        };
        self.sampled.seen.fetch_add(1, Ordering::Relaxed) % every == 0
    }

    /// Fold one sampled request's wall time and per-stage totals into the
    /// bounded profile.
    pub fn record_sample(&self, wall_ms: f64, stages: &[(String, f64)]) {
        self.sampled.record(wall_ms, stages);
    }

    /// The backoff hint for the next shed envelope: the configured fixed
    /// value when one was given, else adaptive from observed per-method
    /// p99 service time.
    pub fn retry_hint(&self) -> u64 {
        self.admission
            .retry_after_ms
            .unwrap_or_else(|| self.ops.derived_retry_hint_ms())
    }

    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Operational metrics (the acceptor and tests read/poke these too).
    pub fn ops(&self) -> &Ops {
        &self.ops
    }

    /// Has a `shutdown` request been served?
    pub fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Relaxed)
    }

    /// Route one request. Counts it (call count before the handler runs,
    /// latency + error count after), then dispatches by method name.
    /// Unrecognized names all share one bounded `unknown` metrics slot —
    /// cardinality must stay fixed no matter what clients send.
    pub fn dispatch(&self, method: &str, params: &Value) -> Result<Value, ServeError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let handler: Option<Handler> = match method {
            "submit_module" => Some(ServerState::submit_module),
            "static_analysis" => Some(ServerState::static_analysis),
            "taint_run" => Some(ServerState::taint_run),
            "analyze_batch" => Some(ServerState::analyze_batch),
            "fit_model" => Some(ServerState::fit_model),
            "trace" => Some(ServerState::trace_request),
            "stats" => Some(|state, _| state.stats()),
            "metrics" => Some(|state, _| state.metrics()),
            "shutdown" => Some(|state, _| state.shutdown()),
            _ => None,
        };
        debug_assert!(
            handler.is_none() || METHODS.contains(&method),
            "dispatch table and ops::METHODS must agree on '{method}'"
        );
        let slot = self
            .ops
            .method(if handler.is_some() { method } else { "unknown" });
        slot.calls.inc();
        let started = Instant::now();
        let outcome = match handler {
            Some(run) => run(self, params),
            None => Err(ServeError::BadRequest(format!("unknown method '{method}'"))),
        };
        slot.latency.record(started.elapsed());
        if outcome.is_err() {
            slot.errors.inc();
        }
        outcome
    }

    // ---- submit_module ---------------------------------------------------

    /// Parse, verify, and persist a module; the returned content hash is
    /// how every later request names it.
    fn submit_module(&self, params: &Value) -> Result<Value, ServeError> {
        let text = require_str(params, "text")?;
        // Protocol v1.4: an optional `policy` is validated and echoed, so
        // a client can probe support before running anything.
        let policy = policy_of(params)?;
        let module = parse_module(text).map_err(ServeError::from)?;
        if let Err(errors) = pt_ir::verify_module(&module) {
            let (func, err) = &errors[0];
            return Err(ServeError::Pt(PtError::Config(format!(
                "module failed verification: {func}: {err} ({} issue(s) total)",
                errors.len()
            ))));
        }
        let key = StoreKey::module(text);
        let known = self.store.contains(key.kind, &key.hash);
        if !known {
            self.store
                .put(key.kind, &key.hash, text)
                .map_err(|e| ServeError::Internal(format!("store write failed: {e}")))?;
        }
        let functions = module.functions.len();
        let name = module.name.clone();
        self.modules
            .lock()
            .unwrap()
            .insert(key.hash.clone(), Arc::new(module));
        Ok(Value::obj(vec![
            ("module", Value::str(&key.hash)),
            ("name", Value::str(name)),
            ("functions", Value::int(functions as i64)),
            ("known", Value::Bool(known)),
            ("policy", Value::str(policy.name())),
        ]))
    }

    /// Resolve a module hash: in-memory first, then the persistent store
    /// (how a restarted server recovers modules submitted to an earlier
    /// process).
    fn module_for(&self, key: &str) -> Result<Arc<Module>, ServeError> {
        if let Some(m) = self.modules.lock().unwrap().get(key) {
            return Ok(m.clone());
        }
        let k = StoreKey::module_by_hash(key);
        let text = self.store.get(k.kind, &k.hash).ok_or_else(|| {
            ServeError::BadRequest(format!("unknown module '{key}' (submit_module it first)"))
        })?;
        let module = Arc::new(parse_module(&text).map_err(|e| {
            ServeError::Internal(format!("stored module '{key}' no longer parses: {e}"))
        })?);
        self.modules
            .lock()
            .unwrap()
            .entry(key.to_string())
            .or_insert_with(|| module.clone());
        Ok(module)
    }

    // ---- static_analysis -------------------------------------------------

    fn static_analysis(&self, params: &Value) -> Result<Value, ServeError> {
        let module_key = require_str(params, "module")?;
        let entry = require_str(params, "entry")?;
        let policy = policy_of(params)?;
        // The static stage is entry-independent, so the artifact is keyed
        // by (module, config, policy) alone — every entry shares one
        // object. The entry is still validated on every request (the
        // module is memory-cached, so this is one map lookup on the warm
        // path).
        let module = self.module_for(module_key)?;
        if module.function_by_name(entry).is_none() {
            return Err(ServeError::Pt(PtError::EntryNotFound {
                entry: entry.to_string(),
            }));
        }
        let key = StoreKey::static_summary(module_key, policy.name());
        if let Some(value) = self.stored(&key) {
            return Ok(value);
        }
        let session = self
            .sessions
            .get_or_compute_with_policy(&module, entry, policy);
        let summary = static_summary(&session.static_analysis(), &module);
        self.persist(&key, &summary);
        Ok(summary)
    }

    // ---- taint_run -------------------------------------------------------

    fn taint_run(&self, params: &Value) -> Result<Value, ServeError> {
        let module_key = require_str(params, "module")?;
        let entry = require_str(params, "entry")?;
        let policy = policy_of(params)?;
        let run_params = param_pairs(params.get("params"))?;
        self.taint_run_inner(module_key, entry, &run_params, policy)
    }

    fn taint_run_inner(
        &self,
        module_key: &str,
        entry: &str,
        run_params: &[(String, i64)],
        policy: PolicyKind,
    ) -> Result<Value, ServeError> {
        let key = StoreKey::analysis(
            module_key,
            entry,
            &canonical_params(run_params),
            policy.name(),
        );
        if let Some(value) = self.stored(&key) {
            return Ok(value);
        }
        let module = self.module_for(module_key)?;
        let session = self
            .sessions
            .get_or_compute_with_policy(&module, entry, policy);
        let analysis = session
            .taint_run(run_params.to_vec())
            .map_err(ServeError::from)?;
        self.record_tier(&analysis);
        self.policy_runs.record(policy);
        let summary = analysis_summary(&analysis, &module);
        self.persist(&key, &summary);
        Ok(summary)
    }

    // ---- analyze_batch ---------------------------------------------------

    /// One taint run per parameter set, fanned across this server's worker
    /// budget. Each entry succeeds or fails independently, exactly like
    /// `Session::analyze_batch` — and each entry goes through the same
    /// persistent cache as a lone `taint_run`.
    fn analyze_batch(&self, params: &Value) -> Result<Value, ServeError> {
        let module_key = require_str(params, "module")?;
        let entry = require_str(params, "entry")?;
        let policy = policy_of(params)?;
        let sets = params
            .get("param_sets")
            .and_then(Value::as_arr)
            .ok_or_else(|| ServeError::BadRequest("missing array 'param_sets'".into()))?;
        let parsed: Vec<Result<Vec<(String, i64)>, ServeError>> =
            sets.iter().map(|s| param_pairs(Some(s))).collect();
        // Resolve the module once up front so a bad hash fails the whole
        // request instead of failing N times in parallel.
        self.module_for(module_key)?;
        // One batch fans out at a time; the lock is not poisoned in
        // practice (parallel_map catches worker panics), but recover
        // rather than unwrap to keep the no-panics-across-the-wire rule.
        let _fan_out = self
            .batch_gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let results: Vec<Value> = pt_util::parallel_map(&parsed, self.workers, |set| {
            let outcome = set
                .clone()
                .and_then(|run| self.taint_run_inner(module_key, entry, &run, policy));
            match outcome {
                Ok(result) => Value::obj(vec![("ok", Value::Bool(true)), ("result", result)]),
                Err(e) => Value::obj(vec![("ok", Value::Bool(false)), ("error", e.to_json())]),
            }
        });
        Ok(Value::obj(vec![
            ("entries", Value::int(results.len() as i64)),
            ("results", Value::Arr(results)),
        ]))
    }

    // ---- fit_model -------------------------------------------------------

    /// Fit an Extra-P model to measurements, under an optional taint-derived
    /// restriction (§4.5). Cached by the canonical request content.
    fn fit_model(&self, params: &Value) -> Result<Value, ServeError> {
        let key = StoreKey::model(&params.render());
        if let Some(value) = self.stored(&key) {
            return Ok(value);
        }

        let names: Vec<String> = params
            .get("param_names")
            .and_then(Value::as_arr)
            .ok_or_else(|| ServeError::BadRequest("missing array 'param_names'".into()))?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(String::from)
                    .ok_or_else(|| ServeError::BadRequest("'param_names' must be strings".into()))
            })
            .collect::<Result<_, _>>()?;
        if names.is_empty() {
            return Err(ServeError::BadRequest("'param_names' is empty".into()));
        }
        let points = params
            .get("points")
            .and_then(Value::as_arr)
            .ok_or_else(|| ServeError::BadRequest("missing array 'points'".into()))?;
        let mut ms = MeasurementSet::new(names.clone());
        for (i, point) in points.iter().enumerate() {
            let coords = f64_array(point.get("coords"), &format!("points[{i}].coords"))?;
            let reps = f64_array(point.get("reps"), &format!("points[{i}].reps"))?;
            if coords.len() != names.len() {
                return Err(ServeError::BadRequest(format!(
                    "points[{i}].coords has {} values for {} parameter(s)",
                    coords.len(),
                    names.len()
                )));
            }
            if reps.is_empty() {
                return Err(ServeError::BadRequest(format!("points[{i}].reps is empty")));
            }
            ms.push(coords, reps);
        }
        if ms.points.is_empty() {
            return Err(ServeError::BadRequest("'points' is empty".into()));
        }
        let restriction = match params.get("restriction") {
            None | Some(Value::Null) => None,
            Some(v) => {
                let masks = v.as_arr().ok_or_else(|| {
                    ServeError::BadRequest(
                        "'restriction' must be an array of monomial masks".into(),
                    )
                })?;
                let monomials = masks
                    .iter()
                    .map(|m| {
                        m.as_u64().ok_or_else(|| {
                            ServeError::BadRequest(
                                "'restriction' masks must be non-negative integers".into(),
                            )
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Some(Restriction::from_monomials(monomials))
            }
        };

        let fitted = fit_multi_param(&ms, &SearchSpace::small(), restriction.as_ref());
        let summary = Value::obj(vec![
            ("model", Value::str(fitted.model.render(&names))),
            ("cv_smape", Value::Num(fitted.quality.cv_smape)),
            ("smape", Value::Num(fitted.quality.smape)),
            ("r2", Value::Num(fitted.quality.r2)),
            ("hypotheses", Value::int(fitted.quality.hypotheses as i64)),
        ]);
        self.persist(&key, &summary);
        Ok(summary)
    }

    // ---- trace -----------------------------------------------------------

    /// Protocol v1.3: run any other method under a request-scoped tracer
    /// and return its structured span tree alongside the result. Params:
    /// `{"method": <inner method>, "params": <inner params>}`. The inner
    /// dispatch goes through the normal table, so it is counted in the
    /// per-method metrics exactly like an untraced call; `trace` itself is
    /// counted too (the cost of the wrapper is itself observable).
    ///
    /// Tracing is enabled only for the guard's lifetime (refcounted, so
    /// concurrent traced and untraced requests coexist; untraced requests
    /// running meanwhile pay one relaxed load per instrumentation point
    /// plus buffered span recording). The fresh trace id keeps this
    /// request's spans — including those from `analyze_batch` workers —
    /// separate from any concurrent traced request.
    fn trace_request(&self, params: &Value) -> Result<Value, ServeError> {
        let method = require_str(params, "method")?;
        if method == "trace" {
            return Err(ServeError::BadRequest("'trace' cannot wrap itself".into()));
        }
        let empty = Value::Obj(Vec::new());
        let inner = params.get("params").unwrap_or(&empty);
        if !matches!(inner, Value::Obj(_)) {
            return Err(ServeError::BadRequest("'params' must be an object".into()));
        }
        let _on = pt_util::trace::enable_scoped();
        let trace_id = pt_util::trace::next_trace_id();
        let started = Instant::now();
        let outcome = {
            let _bind = pt_util::trace::set_thread_trace(trace_id);
            let _root = pt_util::trace::span("server", "request");
            self.dispatch(method, inner)
        };
        let wall = started.elapsed();
        // The root guard dropped above, flushing this thread's buffer, and
        // `analyze_batch` workers flushed when their scope closed — the
        // sink now holds the complete trace.
        let events = pt_util::trace::take_trace(trace_id);
        let result = outcome?;
        let stages = pt_util::trace::stage_totals_ms(&events)
            .into_iter()
            .map(|(name, ms)| (name, Value::Num(ms)))
            .collect();
        Ok(Value::obj(vec![
            ("trace_id", Value::int(trace_id as i64)),
            ("method", Value::str(method)),
            ("wall_us", Value::Num(wall.as_secs_f64() * 1e6)),
            ("events", Value::int(events.len() as i64)),
            ("stages_ms", Value::Obj(stages)),
            ("spans", pt_util::trace::report(&events)),
            ("result", result),
        ]))
    }

    // ---- stats / metrics / shutdown --------------------------------------

    /// Protocol v1.2: the `functions` object reports the per-function
    /// static-stage ledger — of all function units the static stage has
    /// needed, how many were reused from memory, reused from the store, or
    /// recomputed. An edit loop is warm exactly when `recomputed` grows by
    /// the edited cone only.
    fn function_reuse_json(&self) -> Value {
        let reuse = self.sessions.unit_reuse();
        Value::obj(vec![
            ("total", Value::int(reuse.total as i64)),
            ("reused_memory", Value::int(reuse.reused_memory as i64)),
            ("reused_store", Value::int(reuse.reused_store as i64)),
            ("recomputed", Value::int(reuse.recomputed as i64)),
        ])
    }

    /// Fold one finished run's tiered-execution accounting into the
    /// process-lifetime totals.
    fn record_tier(&self, analysis: &Analysis) {
        let t = &self.tier;
        t.runs.fetch_add(1, Ordering::Relaxed);
        if analysis.tier_reused {
            t.runs_reusing_spec.fetch_add(1, Ordering::Relaxed);
        }
        t.specialized
            .fetch_add(analysis.tier.specialized, Ordering::Relaxed);
        t.respecialized
            .fetch_add(analysis.tier.respecialized, Ordering::Relaxed);
        t.threaded_insts
            .fetch_add(analysis.tier.threaded_insts, Ordering::Relaxed);
        t.fast_insts
            .fetch_add(analysis.tier.fast_insts, Ordering::Relaxed);
        t.fast_deopts
            .fetch_add(analysis.tier.fast_deopts, Ordering::Relaxed);
    }

    /// Protocol v1.3: tiered-execution totals — how many interpreter runs
    /// happened, how many reused a session-cached specialization, and the
    /// tier-1 activity they saw (instructions retired on the threaded /
    /// fast paths, mid-run respecializations, deopts).
    fn tier_json(&self) -> Value {
        let t = &self.tier;
        let int = |a: &AtomicU64| Value::int(a.load(Ordering::Relaxed) as i64);
        Value::obj(vec![
            ("runs", int(&t.runs)),
            ("runs_reusing_spec", int(&t.runs_reusing_spec)),
            ("specialized", int(&t.specialized)),
            ("respecialized", int(&t.respecialized)),
            ("threaded_insts", int(&t.threaded_insts)),
            ("fast_insts", int(&t.fast_insts)),
            ("fast_deopts", int(&t.fast_deopts)),
        ])
    }

    /// Protocol v1.3: the in-process session cache (module content →
    /// static stage) — occupancy, configured LRU bound, and evictions.
    fn session_cache_json(&self) -> Value {
        Value::obj(vec![
            ("entries", Value::int(self.sessions.len() as i64)),
            (
                "capacity",
                match self.sessions.capacity() {
                    Some(c) => Value::int(c as i64),
                    None => Value::Null,
                },
            ),
            ("evictions", Value::int(self.sessions.evictions() as i64)),
        ])
    }

    fn stats(&self) -> Result<Value, ServeError> {
        let store = self.store.stats();
        Ok(Value::obj(vec![
            ("protocol", Value::int(PROTOCOL_VERSION as i64)),
            ("protocol_minor", Value::int(PROTOCOL_MINOR as i64)),
            ("uptime_seconds", Value::Num(self.ops.uptime_seconds())),
            (
                "requests_total",
                Value::int(self.requests.load(Ordering::Relaxed) as i64),
            ),
            ("methods", Value::Obj(self.ops.method_counts())),
            (
                "served_from_store",
                Value::int(self.served_from_store.load(Ordering::Relaxed) as i64),
            ),
            (
                "store",
                Value::obj(vec![
                    ("hits", Value::int(store.hits as i64)),
                    ("misses", Value::int(store.misses as i64)),
                    ("writes", Value::int(store.writes as i64)),
                    ("evictions", Value::int(store.evictions as i64)),
                    ("objects", Value::int(self.store.total_objects() as i64)),
                ]),
            ),
            ("functions", self.function_reuse_json()),
            ("session_cache", self.session_cache_json()),
            ("tier", self.tier_json()),
            ("policies", self.policy_runs.to_json()),
            (
                "modules_in_memory",
                Value::int(self.modules.lock().unwrap().len() as i64),
            ),
            ("workers", Value::int(self.workers as i64)),
            ("queue_capacity", Value::int(self.queue_capacity as i64)),
            ("queue_depth", Value::int(self.ops.queue_depth.get().max(0))),
        ]))
    }

    /// The protocol-v1.1+ observability surface: everything `stats` knows
    /// is a counter; this adds uptime, queue occupancy, shed totals, store
    /// sizing (bytes / budget / evictions), per-method latency histograms
    /// (p50/p99/p999, milliseconds), and — since v1.2 — the per-function
    /// static-stage reuse ledger.
    fn metrics(&self) -> Result<Value, ServeError> {
        let store = self.store.stats();
        Ok(Value::obj(vec![
            ("protocol", Value::int(PROTOCOL_VERSION as i64)),
            ("protocol_minor", Value::int(PROTOCOL_MINOR as i64)),
            ("uptime_seconds", Value::Num(self.ops.uptime_seconds())),
            (
                "queue",
                Value::obj(vec![
                    ("depth", Value::int(self.ops.queue_depth.get().max(0))),
                    ("capacity", Value::int(self.queue_capacity as i64)),
                    ("shed_total", Value::int(self.ops.shed_total.get() as i64)),
                ]),
            ),
            ("methods", self.ops.methods_json()),
            (
                "store",
                Value::obj(vec![
                    ("hits", Value::int(store.hits as i64)),
                    ("misses", Value::int(store.misses as i64)),
                    ("writes", Value::int(store.writes as i64)),
                    ("evictions", Value::int(store.evictions as i64)),
                    ("objects", Value::int(self.store.total_objects() as i64)),
                    ("bytes", Value::int(self.store.total_bytes() as i64)),
                    (
                        "budget_bytes",
                        match self.store.budget_bytes() {
                            Some(b) => Value::int(b as i64),
                            None => Value::Null,
                        },
                    ),
                ]),
            ),
            (
                "served_from_store",
                Value::int(self.served_from_store.load(Ordering::Relaxed) as i64),
            ),
            ("functions", self.function_reuse_json()),
            ("session_cache", self.session_cache_json()),
            ("tier", self.tier_json()),
            ("policies", self.policy_runs.to_json()),
            (
                "sampled_profile",
                self.sampled.to_json(self.trace_sample_every),
            ),
            ("workers", Value::int(self.workers as i64)),
        ]))
    }

    fn shutdown(&self) -> Result<Value, ServeError> {
        self.stopping.store(true, Ordering::Relaxed);
        Ok(Value::obj(vec![("stopping", Value::Bool(true))]))
    }

    // ---- shared helpers --------------------------------------------------

    /// Fetch and parse a stored artifact. Our renderer and parser are
    /// mutually inverse on documents the renderer produced, so the served
    /// bytes equal the originally computed bytes. A missing *or corrupt*
    /// object is a miss, not an error — the pipeline is deterministic, so
    /// the caller recomputes and overwrites (mirroring the write side's
    /// "a broken store degrades to compute-always" stance). Only a
    /// successful parse counts as store-served.
    fn stored(&self, key: &StoreKey) -> Option<Value> {
        let text = self.store.get(key.kind, &key.hash)?;
        match Value::parse(&text) {
            Ok(value) => {
                self.served_from_store.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            Err(_) => None,
        }
    }

    /// Best-effort persist: a full disk degrades the service to
    /// compute-always, it does not fail requests.
    fn persist(&self, key: &StoreKey, doc: &Value) {
        let _ = self.store.put(key.kind, &key.hash, &doc.render());
    }
}

/// The optional `policy` request field (protocol v1.4): absent or `null`
/// means the default param-set policy; an unknown name is a `bad_request`
/// naming the known policies.
fn policy_of(params: &Value) -> Result<PolicyKind, ServeError> {
    match params.get("policy") {
        None | Some(Value::Null) => Ok(PolicyKind::ParamSet),
        Some(v) => {
            let s = v.as_str().ok_or_else(|| {
                ServeError::BadRequest("'policy' must be a string when present".into())
            })?;
            PolicyKind::parse(s).ok_or_else(|| {
                let known = PolicyKind::ALL
                    .iter()
                    .map(|p| p.name())
                    .collect::<Vec<_>>()
                    .join(", ");
                ServeError::BadRequest(format!("unknown policy '{s}' (known: {known})"))
            })
        }
    }
}

fn require_str<'v>(params: &'v Value, field: &str) -> Result<&'v str, ServeError> {
    params
        .get(field)
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::BadRequest(format!("missing string '{field}'")))
}

/// Parameter pairs from a JSON object, preserving the client's field order
/// (the order defines taint indices, exactly like the `Vec` the in-process
/// API takes).
fn param_pairs(v: Option<&Value>) -> Result<Vec<(String, i64)>, ServeError> {
    let fields = match v {
        None => return Ok(Vec::new()),
        Some(Value::Obj(fields)) => fields,
        Some(_) => {
            return Err(ServeError::BadRequest(
                "'params' must be an object of integer parameter values".into(),
            ))
        }
    };
    fields
        .iter()
        .map(|(name, value)| {
            value.as_i64().map(|n| (name.clone(), n)).ok_or_else(|| {
                ServeError::BadRequest(format!("parameter '{name}' must be an integer"))
            })
        })
        .collect()
}

/// Canonical text of a parameter list for key derivation.
fn canonical_params(params: &[(String, i64)]) -> String {
    Value::Obj(
        params
            .iter()
            .map(|(n, v)| (n.clone(), Value::int(*v)))
            .collect(),
    )
    .render()
}

fn f64_array(v: Option<&Value>, what: &str) -> Result<Vec<f64>, ServeError> {
    v.and_then(Value::as_arr)
        .ok_or_else(|| ServeError::BadRequest(format!("missing array '{what}'")))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| ServeError::BadRequest(format!("'{what}' must hold numbers")))
        })
        .collect()
}
