//! `pt-client` — drive a running pt-server from the command line.
//!
//! ```text
//! pt-client [--addr HOST:PORT] [--repeat N] [--concurrency K] <command>
//!
//! pt-client demo
//! pt-client submit <module.ptir | ->
//! pt-client static <module-hash> <entry>
//! pt-client run <module-hash> <entry> [name=value...]
//! pt-client batch <module-hash> <entry> <set> [set...]
//! pt-client fit <request.json | ->
//! pt-client trace <command> [args...]
//! pt-client stats
//! pt-client metrics
//! pt-client shutdown
//! ```
//!
//! `demo` needs no server: it prints the canonical demo module's IR text
//! (pipe it to a file, then `submit` it). A batch `set` is a comma-joined
//! parameter list (`n=8,p=4`). `fit` reads a JSON document with the
//! `fit_model` request parameters. `trace` wraps any other remote command
//! in the protocol v1.3 request tracer — `pt-client trace run <hash> main
//! n=8` prints the span tree alongside the run's result. Results print as
//! pretty JSON.
//!
//! `--repeat N` issues the same request N times; `--concurrency K` spreads
//! those requests over K connections on K threads (a minimal load
//! generator for saturation experiments). In load mode the output is a
//! JSON summary — ok/overloaded/error counts, wall time, and exact
//! p50/p99/p999 latency over the successful requests — instead of N
//! response bodies. `demo` and `shutdown` refuse load mode.

use pt_server::{Client, ClientError};
use serde::json::Value;
use std::io::Read;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const DEFAULT_ADDR: &str = "127.0.0.1:7421";

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(text)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

/// `name=value` pairs, order-preserving.
fn parse_params(args: &[String]) -> Result<Vec<(String, i64)>, String> {
    args.iter()
        .map(|pair| {
            let (name, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("'{pair}' is not name=value"))?;
            let value = value
                .parse()
                .map_err(|_| format!("'{pair}' has a non-integer value"))?;
            Ok((name.to_string(), value))
        })
        .collect()
}

/// Parameter pairs as an order-preserving JSON object.
fn params_object(params: &[(String, i64)]) -> Value {
    Value::Obj(
        params
            .iter()
            .map(|(n, v)| (n.clone(), Value::int(*v)))
            .collect(),
    )
}

/// Issue `(method, params)` `total` times over `concurrency` connections
/// and summarize. Overloaded sheds are first-class outcomes (counted, and
/// the hinted backoff is honored before the thread reconnects), not
/// failures of the harness.
fn run_load(
    addr: &str,
    method: &str,
    params: &Value,
    total: usize,
    concurrency: usize,
) -> Result<Value, String> {
    let next = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let overloaded = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(total));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1).min(total.max(1)) {
            scope.spawn(|| {
                let mut conn: Option<Client> = None;
                loop {
                    if next.fetch_add(1, Ordering::Relaxed) >= total {
                        break;
                    }
                    let client = match conn.take().map(Ok).unwrap_or_else(|| Client::connect(addr))
                    {
                        Ok(c) => conn.insert(c),
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    let t0 = Instant::now();
                    match client.request(method, params.clone()) {
                        Ok(_) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            latencies.lock().unwrap().push(t0.elapsed().as_secs_f64());
                        }
                        Err(e) if e.remote_kind() == Some("overloaded") => {
                            overloaded.fetch_add(1, Ordering::Relaxed);
                            // The server closed the shed connection; back
                            // off as hinted, then reconnect on next loop.
                            conn = None;
                            let backoff = e.retry_after_ms().unwrap_or(50).min(1_000);
                            std::thread::sleep(std::time::Duration::from_millis(backoff));
                        }
                        Err(ClientError::Remote { .. }) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Transport/protocol failure: the connection is
                            // suspect, rebuild it.
                            errors.fetch_add(1, Ordering::Relaxed);
                            conn = None;
                        }
                    }
                }
            });
        }
    });
    let wall = started.elapsed().as_secs_f64();
    let latencies = latencies.into_inner().unwrap();
    let q = |q: f64| pt_util::metrics::exact_quantile_seconds(&latencies, q) * 1e3;
    Ok(Value::obj(vec![
        ("method", Value::str(method)),
        ("requests", Value::int(total as i64)),
        ("ok", Value::int(ok.load(Ordering::Relaxed) as i64)),
        (
            "overloaded",
            Value::int(overloaded.load(Ordering::Relaxed) as i64),
        ),
        ("errors", Value::int(errors.load(Ordering::Relaxed) as i64)),
        ("wall_seconds", Value::Num(wall)),
        (
            "requests_per_second",
            Value::Num(if wall > 0.0 { total as f64 / wall } else { 0.0 }),
        ),
        ("p50_ms", Value::Num(q(0.50))),
        ("p99_ms", Value::Num(q(0.99))),
        ("p999_ms", Value::Num(q(0.999))),
    ]))
}

fn run() -> Result<(), String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut repeat: usize = 1;
    let mut concurrency: usize = 1;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().ok_or("--addr requires a value")?,
            "--repeat" => {
                repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--repeat requires a positive integer")?
            }
            "--concurrency" => {
                concurrency = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--concurrency requires a positive integer")?
            }
            "--help" | "-h" => {
                println!(
                    "pt-client [--addr HOST:PORT] [--repeat N] [--concurrency K] \
                     <demo|submit|static|run|batch|fit|trace|stats|metrics|shutdown> [args...]"
                );
                return Ok(());
            }
            _ => rest.push(arg),
        }
    }
    let Some((command, args)) = rest.split_first() else {
        return Err("no command (see --help)".into());
    };

    // `demo` is local — no connection needed.
    if command == "demo" {
        print!("{}", pt_server::demo_module_text());
        return Ok(());
    }

    let (method, params) = command_request(command, args)?;

    if repeat > 1 || concurrency > 1 {
        if method == "shutdown" {
            return Err("shutdown does not combine with --repeat/--concurrency".into());
        }
        let summary = run_load(&addr, &method, &params, repeat, concurrency)?;
        print!("{}", summary.render_pretty());
        return Ok(());
    }

    let mut client =
        Client::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let value = client.request(&method, params).map_err(|e| e.to_string())?;
    print!("{}", value.render_pretty());
    Ok(())
}

/// Reduce one remote command to its `(method, params)` pair — what makes
/// `--repeat`/`--concurrency` uniform across commands, and what lets
/// `trace` wrap any of them in the protocol v1.3 trace envelope.
fn command_request(command: &str, args: &[String]) -> Result<(String, Value), String> {
    let (method, params): (&str, Value) = match (command, args) {
        ("submit", [path]) => {
            let text = read_input(path)?;
            (
                "submit_module",
                Value::obj(vec![("text", Value::str(text))]),
            )
        }
        ("static", [module, entry]) => (
            "static_analysis",
            Value::obj(vec![
                ("module", Value::str(module)),
                ("entry", Value::str(entry)),
            ]),
        ),
        ("run", [module, entry, rest @ ..]) => {
            // `run <module> <entry> [--policy NAME] [name=value ...]` —
            // the optional policy selects the taint policy (protocol
            // v1.4); omitted means the server default (param-set).
            let (policy, params) = match rest {
                [flag, name, tail @ ..] if flag == "--policy" => (Some(name.as_str()), tail),
                _ => (None, rest),
            };
            let mut fields = vec![
                ("module", Value::str(module)),
                ("entry", Value::str(entry)),
                ("params", params_object(&parse_params(params)?)),
            ];
            if let Some(policy) = policy {
                fields.push(("policy", Value::str(policy)));
            }
            ("taint_run", Value::obj(fields))
        }
        ("batch", [module, entry, sets @ ..]) if !sets.is_empty() => {
            let param_sets = sets
                .iter()
                .map(|set| {
                    let parts: Vec<String> = set.split(',').map(|s| s.trim().to_string()).collect();
                    parse_params(&parts).map(|p| params_object(&p))
                })
                .collect::<Result<Vec<_>, _>>()?;
            (
                "analyze_batch",
                Value::obj(vec![
                    ("module", Value::str(module)),
                    ("entry", Value::str(entry)),
                    ("param_sets", Value::Arr(param_sets)),
                ]),
            )
        }
        ("fit", [path]) => {
            let text = read_input(path)?;
            let params =
                Value::parse(&text).map_err(|e| format!("fit request is not JSON: {e}"))?;
            ("fit_model", params)
        }
        ("stats", []) => ("stats", Value::Obj(Vec::new())),
        ("metrics", []) => ("metrics", Value::Obj(Vec::new())),
        ("shutdown", []) => ("shutdown", Value::Obj(Vec::new())),
        ("trace", [inner, rest @ ..]) => {
            if inner == "trace" || inner == "demo" {
                return Err(format!("'{inner}' cannot be traced"));
            }
            let (inner_method, inner_params) = command_request(inner, rest)?;
            return Ok((
                "trace".to_string(),
                Value::obj(vec![
                    ("method", Value::str(inner_method)),
                    ("params", inner_params),
                ]),
            ));
        }
        (other, _) => {
            return Err(format!(
                "unknown command or wrong arguments: '{other}' (see --help)"
            ))
        }
    };
    Ok((method.to_string(), params))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("pt-client: {message}");
            ExitCode::FAILURE
        }
    }
}
