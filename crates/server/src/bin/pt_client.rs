//! `pt-client` — drive a running pt-server from the command line.
//!
//! ```text
//! pt-client [--addr HOST:PORT] demo
//! pt-client [--addr HOST:PORT] submit <module.ptir | ->
//! pt-client [--addr HOST:PORT] static <module-hash> <entry>
//! pt-client [--addr HOST:PORT] run <module-hash> <entry> [name=value...]
//! pt-client [--addr HOST:PORT] batch <module-hash> <entry> <set> [set...]
//! pt-client [--addr HOST:PORT] fit <request.json | ->
//! pt-client [--addr HOST:PORT] stats
//! pt-client [--addr HOST:PORT] shutdown
//! ```
//!
//! `demo` needs no server: it prints the canonical demo module's IR text
//! (pipe it to a file, then `submit` it). A batch `set` is a comma-joined
//! parameter list (`n=8,p=4`). `fit` reads a JSON document with the
//! `fit_model` request parameters. Results print as pretty JSON.

use pt_server::{Client, ClientError};
use serde::json::Value;
use std::io::Read;
use std::process::ExitCode;

const DEFAULT_ADDR: &str = "127.0.0.1:7421";

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(text)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

/// `name=value` pairs, order-preserving.
fn parse_params(args: &[String]) -> Result<Vec<(String, i64)>, String> {
    args.iter()
        .map(|pair| {
            let (name, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("'{pair}' is not name=value"))?;
            let value = value
                .parse()
                .map_err(|_| format!("'{pair}' has a non-integer value"))?;
            Ok((name.to_string(), value))
        })
        .collect()
}

fn run() -> Result<(), String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().ok_or("--addr requires a value")?,
            "--help" | "-h" => {
                println!(
                    "pt-client [--addr HOST:PORT] \
                     <demo|submit|static|run|batch|fit|stats|shutdown> [args...]"
                );
                return Ok(());
            }
            _ => rest.push(arg),
        }
    }
    let Some((command, args)) = rest.split_first() else {
        return Err("no command (see --help)".into());
    };

    // `demo` is local — no connection needed.
    if command == "demo" {
        print!("{}", pt_server::demo_module_text());
        return Ok(());
    }

    let mut client =
        Client::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let show = |result: Result<Value, ClientError>| -> Result<(), String> {
        let value = result.map_err(|e| e.to_string())?;
        print!("{}", value.render_pretty());
        Ok(())
    };

    match (command.as_str(), args) {
        ("submit", [path]) => {
            let text = read_input(path)?;
            show(client.request(
                "submit_module",
                Value::obj(vec![("text", Value::str(text))]),
            ))
        }
        ("static", [module, entry]) => show(client.static_analysis(module, entry)),
        ("run", [module, entry, params @ ..]) => {
            show(client.taint_run(module, entry, &parse_params(params)?))
        }
        ("batch", [module, entry, sets @ ..]) if !sets.is_empty() => {
            let param_sets = sets
                .iter()
                .map(|set| {
                    let parts: Vec<String> = set.split(',').map(|s| s.trim().to_string()).collect();
                    parse_params(&parts)
                })
                .collect::<Result<Vec<_>, _>>()?;
            show(client.analyze_batch(module, entry, &param_sets))
        }
        ("fit", [path]) => {
            let text = read_input(path)?;
            let params =
                Value::parse(&text).map_err(|e| format!("fit request is not JSON: {e}"))?;
            show(client.request("fit_model", params))
        }
        ("stats", []) => show(client.stats()),
        ("shutdown", []) => show(client.shutdown()),
        (other, _) => Err(format!(
            "unknown command or wrong arguments: '{other}' (see --help)"
        )),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("pt-client: {message}");
            ExitCode::FAILURE
        }
    }
}
