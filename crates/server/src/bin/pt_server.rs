//! `pt-server` — stand the analysis service up.
//!
//! ```text
//! pt-server [--addr HOST:PORT] [--store DIR] [--workers N] [--queue N]
//!           [--idle-timeout SECS] [--max-requests N]
//!           [--shed] [--retry-after-ms N] [--store-budget-bytes N]
//!           [--session-cache-entries N] [--slow-request-ms N]
//!           [--trace-sample-every N] [--trace-out PATH]
//! ```
//!
//! `--max-queue` is an alias of `--queue` (the admission-control reading
//! of the same bound). `--shed` turns blocking backpressure into
//! shed-with-`overloaded`; without `--retry-after-ms`, shed envelopes
//! carry an adaptive hint derived from observed p99 service time.
//! `--store-budget-bytes` caps the artifact store with LRU eviction and
//! `--session-cache-entries` does the same for the in-process session
//! cache. `--slow-request-ms` logs one structured stderr line (with a
//! per-stage wall breakdown) for each request slower than the threshold.
//! `--trace-out` keeps pipeline tracing on for the whole process and
//! writes a Chrome `trace_event` JSON file on shutdown — load it in
//! `chrome://tracing` or Perfetto.
//!
//! Prints exactly one `pt-server listening on <addr>` line to stdout once
//! the socket is bound (scripts parse this to learn an ephemeral port),
//! then serves until a `shutdown` request arrives.

use pt_server::{Server, ServerConfig};
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7421".to_string(),
        store_dir: "pt-store".into(),
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16),
        queue_capacity: 64,
        idle_timeout: None,
        max_requests_per_connection: None,
        shed: false,
        retry_after_ms: None,
        store_budget_bytes: None,
        session_cache_entries: None,
        slow_request_ms: None,
        trace_sample_every: Some(64),
    };
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        let result = match arg.as_str() {
            "--addr" => take("--addr").map(|v| config.addr = v),
            "--store" => take("--store").map(|v| config.store_dir = v.into()),
            "--workers" => take("--workers").and_then(|v| {
                v.parse()
                    .map(|n: usize| config.workers = n.max(1))
                    .map_err(|_| "--workers requires an integer".to_string())
            }),
            "--queue" | "--max-queue" => take(&arg).and_then(|v| {
                v.parse()
                    .map(|n: usize| config.queue_capacity = n.max(1))
                    .map_err(|_| format!("{arg} requires an integer"))
            }),
            "--shed" => {
                config.shed = true;
                Ok(())
            }
            "--retry-after-ms" => take("--retry-after-ms").and_then(|v| {
                v.parse()
                    .map(|n: u64| config.retry_after_ms = Some(n))
                    .map_err(|_| "--retry-after-ms requires an integer".to_string())
            }),
            "--session-cache-entries" => take("--session-cache-entries").and_then(|v| {
                v.parse()
                    .map(|n: usize| config.session_cache_entries = Some(n))
                    .map_err(|_| "--session-cache-entries requires an integer".to_string())
            }),
            "--slow-request-ms" => take("--slow-request-ms").and_then(|v| {
                v.parse()
                    .map(|n: u64| config.slow_request_ms = Some(n))
                    .map_err(|_| "--slow-request-ms requires an integer".to_string())
            }),
            // Sampled always-on tracing: every Nth request feeds the
            // `sampled_profile` object in `metrics`. 0 disables it.
            "--trace-sample-every" => take("--trace-sample-every").and_then(|v| {
                v.parse()
                    .map(|n: u64| config.trace_sample_every = (n > 0).then_some(n))
                    .map_err(|_| "--trace-sample-every requires an integer".to_string())
            }),
            "--trace-out" => take("--trace-out").map(|v| trace_out = Some(v.into())),
            "--store-budget-bytes" => take("--store-budget-bytes").and_then(|v| {
                v.parse()
                    .map(|n: u64| config.store_budget_bytes = Some(n))
                    .map_err(|_| "--store-budget-bytes requires an integer".to_string())
            }),
            "--idle-timeout" => take("--idle-timeout").and_then(|v| {
                // try_from_secs_f64 also rejects NaN and values that
                // overflow Duration (e.g. 1e30) — no panic path.
                match v
                    .parse::<f64>()
                    .ok()
                    .filter(|&secs| secs > 0.0)
                    .and_then(|secs| std::time::Duration::try_from_secs_f64(secs).ok())
                {
                    Some(limit) => {
                        config.idle_timeout = Some(limit);
                        Ok(())
                    }
                    None => Err("--idle-timeout requires positive seconds".to_string()),
                }
            }),
            "--max-requests" => take("--max-requests").and_then(|v| match v.parse::<u64>() {
                Ok(n) if n > 0 => {
                    config.max_requests_per_connection = Some(n);
                    Ok(())
                }
                _ => Err("--max-requests requires a positive integer".to_string()),
            }),
            "--help" | "-h" => {
                println!(
                    "pt-server [--addr HOST:PORT] [--store DIR] [--workers N] [--queue N] \
                     [--idle-timeout SECS] [--max-requests N] [--shed] [--retry-after-ms N] \
                     [--store-budget-bytes N] [--session-cache-entries N] \
                     [--slow-request-ms N] [--trace-sample-every N] [--trace-out PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag '{other}' (see --help)")),
        };
        if let Err(message) = result {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    }

    if trace_out.is_some() {
        // Whole-process tracing: on before the first request, exported
        // after the serve loop drains.
        pt_util::trace::force_enable();
    }

    let server = match Server::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pt-server: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            println!("pt-server listening on {addr}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("pt-server: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "pt-server: store {}{}, {} worker(s), queue {}{}",
        config.store_dir.display(),
        match config.store_budget_bytes {
            Some(b) => format!(" (budget {b} B, LRU eviction)"),
            None => String::new(),
        },
        config.workers,
        config.queue_capacity,
        if config.shed {
            match config.retry_after_ms {
                Some(ms) => format!(" (shed, retry-after {ms} ms)"),
                None => " (shed, adaptive retry-after)".to_string(),
            }
        } else {
            String::new()
        }
    );
    if let Err(e) = server.run() {
        eprintln!("pt-server: serve loop failed: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = trace_out {
        let events = pt_util::trace::drain_all();
        let doc = pt_util::trace::chrome_trace(&events).render();
        match std::fs::write(&path, doc) {
            Ok(()) => eprintln!(
                "pt-server: wrote {} trace event(s) to {} ({} dropped)",
                events.len(),
                path.display(),
                pt_util::trace::dropped_total()
            ),
            Err(e) => {
                eprintln!("pt-server: cannot write trace to {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("pt-server: shutdown complete");
    ExitCode::SUCCESS
}
