//! A blocking client for the pt-serve wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues requests serially
//! (the protocol has no pipelining; ids exist so a future client could).
//! [`Client::request`] is the generic entry point; thin typed helpers
//! cover the common methods. `pt-client` (the binary) and the integration
//! tests are both built on this type.

use crate::protocol::{request_line, PROTOCOL_VERSION};
use serde::json::Value;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A failure of a client call.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connection refused, reset, ...).
    Io(io::Error),
    /// The server's bytes were not a valid response envelope.
    Protocol(String),
    /// The server answered with an error envelope. `retry_after_ms` is
    /// populated for `overloaded` envelopes (the server's backoff hint).
    Remote {
        kind: String,
        message: String,
        retry_after_ms: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote { kind, message, .. } => {
                write!(f, "server error [{kind}]: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The error-envelope kind, if this was a remote failure.
    pub fn remote_kind(&self) -> Option<&str> {
        match self {
            ClientError::Remote { kind, .. } => Some(kind),
            _ => None,
        }
    }

    /// The server's backoff hint, if this was an `overloaded` envelope.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ClientError::Remote { retry_after_ms, .. } => *retry_after_ms,
            _ => None,
        }
    }
}

/// One connection to a pt-server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
        })
    }

    /// Issue one request and wait for its response. Returns the `result`
    /// value of a success envelope.
    pub fn request(&mut self, method: &str, params: Value) -> Result<Value, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = request_line(id, method, params);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;

        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection before responding".into(),
            ));
        }
        let doc = Value::parse(response.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        match doc.get("v").and_then(Value::as_u64) {
            Some(v) if v == PROTOCOL_VERSION => {}
            other => {
                return Err(ClientError::Protocol(format!(
                    "response protocol version {other:?}, expected {PROTOCOL_VERSION}"
                )))
            }
        }
        let ok = doc.get("ok").and_then(Value::as_bool);
        if doc.get("id").and_then(Value::as_u64) != Some(id) {
            // A null-id error envelope is legitimate: the server answered
            // before reading a request (admission shed) or could not parse
            // one. Surface it as the remote error it is; any other id is a
            // protocol violation.
            let id_is_null = matches!(doc.get("id"), Some(Value::Null));
            if !(id_is_null && ok == Some(false)) {
                return Err(ClientError::Protocol("response id mismatch".into()));
            }
        }
        match ok {
            Some(true) => doc
                .get("result")
                .cloned()
                .ok_or_else(|| ClientError::Protocol("ok response without 'result'".into())),
            Some(false) => {
                let err = doc.get("error");
                Err(ClientError::Remote {
                    kind: err
                        .and_then(|e| e.get("kind"))
                        .and_then(Value::as_str)
                        .unwrap_or("unknown")
                        .to_string(),
                    message: err
                        .and_then(|e| e.get("message"))
                        .and_then(Value::as_str)
                        .unwrap_or("unknown error")
                        .to_string(),
                    retry_after_ms: err
                        .and_then(|e| e.get("retry_after_ms"))
                        .and_then(Value::as_u64),
                })
            }
            None => Err(ClientError::Protocol("response missing 'ok'".into())),
        }
    }

    /// Submit module IR text; returns the content hash that later requests
    /// name the module by.
    pub fn submit_module(&mut self, text: &str) -> Result<String, ClientError> {
        let result = self.request(
            "submit_module",
            Value::obj(vec![("text", Value::str(text))]),
        )?;
        result
            .get("module")
            .and_then(Value::as_str)
            .map(String::from)
            .ok_or_else(|| ClientError::Protocol("submit_module result missing 'module'".into()))
    }

    /// Run the static stage (§5.1) for `(module, entry)`.
    pub fn static_analysis(&mut self, module: &str, entry: &str) -> Result<Value, ClientError> {
        self.request(
            "static_analysis",
            Value::obj(vec![
                ("module", Value::str(module)),
                ("entry", Value::str(entry)),
            ]),
        )
    }

    /// Run (or fetch) one taint analysis at the given parameter values.
    /// Pair order defines taint indices, exactly like the in-process API.
    pub fn taint_run(
        &mut self,
        module: &str,
        entry: &str,
        params: &[(String, i64)],
    ) -> Result<Value, ClientError> {
        self.taint_run_with_policy(module, entry, params, None)
    }

    /// [`Client::taint_run`] under an explicit taint policy (protocol
    /// v1.4): `Some("security")` etc.; `None` omits the field, leaving
    /// the server's default (param-set).
    pub fn taint_run_with_policy(
        &mut self,
        module: &str,
        entry: &str,
        params: &[(String, i64)],
        policy: Option<&str>,
    ) -> Result<Value, ClientError> {
        let mut fields = vec![
            ("module", Value::str(module)),
            ("entry", Value::str(entry)),
            ("params", params_object(params)),
        ];
        if let Some(policy) = policy {
            fields.push(("policy", Value::str(policy)));
        }
        self.request("taint_run", Value::obj(fields))
    }

    /// One taint run per parameter set, fanned across the server's workers.
    pub fn analyze_batch(
        &mut self,
        module: &str,
        entry: &str,
        param_sets: &[Vec<(String, i64)>],
    ) -> Result<Value, ClientError> {
        self.analyze_batch_with_policy(module, entry, param_sets, None)
    }

    /// [`Client::analyze_batch`] under an explicit taint policy (protocol
    /// v1.4); `None` omits the field, leaving the server's default.
    pub fn analyze_batch_with_policy(
        &mut self,
        module: &str,
        entry: &str,
        param_sets: &[Vec<(String, i64)>],
        policy: Option<&str>,
    ) -> Result<Value, ClientError> {
        let mut fields = vec![
            ("module", Value::str(module)),
            ("entry", Value::str(entry)),
            (
                "param_sets",
                Value::Arr(param_sets.iter().map(|p| params_object(p)).collect()),
            ),
        ];
        if let Some(policy) = policy {
            fields.push(("policy", Value::str(policy)));
        }
        self.request("analyze_batch", Value::obj(fields))
    }

    /// Run `method` under the server's request tracer (protocol v1.3).
    /// The result carries `trace_id`, the nested `spans` tree, the
    /// per-stage `stages_ms` totals, and the inner method's `result`.
    pub fn trace(&mut self, method: &str, params: Value) -> Result<Value, ClientError> {
        self.request(
            "trace",
            Value::obj(vec![("method", Value::str(method)), ("params", params)]),
        )
    }

    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.request("stats", Value::Obj(Vec::new()))
    }

    /// The protocol-v1.1 observability readout (queue, methods, store).
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        self.request("metrics", Value::Obj(Vec::new()))
    }

    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.request("shutdown", Value::Obj(Vec::new()))
    }
}

/// Parameter pairs as an order-preserving JSON object.
fn params_object(params: &[(String, i64)]) -> Value {
    Value::Obj(
        params
            .iter()
            .map(|(n, v)| (n.clone(), Value::int(*v)))
            .collect(),
    )
}
