//! Store eviction under a size budget, end to end: a server capped at
//! 1 MiB keeps its on-disk store within budget no matter how many large
//! modules are submitted, and evicted artifacts degrade to cache misses —
//! recomputed byte-identically after a resubmission, including across a
//! server restart (the case where the in-memory module cache can't help).

use pt_server::{Client, Server, ServerConfig};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

const BUDGET: u64 = 1 << 20; // 1 MiB

fn fresh_store_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pt-serve-evict-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Total object bytes on disk (excluding the advisory sidecar and any
/// in-flight temp files) — the quantity the budget bounds.
fn object_bytes_on_disk(root: &Path) -> u64 {
    ["modules", "statics", "analyses", "models"]
        .iter()
        .filter_map(|ns| std::fs::read_dir(root.join(ns)).ok())
        .flatten()
        .filter_map(Result::ok)
        .filter(|e| !e.file_name().to_str().is_some_and(|n| n.contains(".tmp.")))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

/// A distinct ~60 KB module per index: the demo pipeline shape (marked
/// parameter, parametric kernel, MPI exchange) plus hundreds of filler
/// functions to give the stored object real size.
fn big_module_text(idx: usize) -> String {
    use pt_ir::{FunctionBuilder, Module, Type, Value as IrValue};
    let mut m = Module::new(format!("evict_demo_{idx}"));
    for j in 0..700 {
        let mut b = FunctionBuilder::new(
            format!("pad_{idx}_{j}"),
            vec![("x".into(), Type::I64)],
            Type::I64,
        );
        let doubled = b.add(b.param(0), b.param(0));
        let v = b.add(doubled, IrValue::int(j as i64));
        b.ret(Some(v));
        m.add_function(b.finish());
    }
    let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
    b.for_loop(0i64, b.param(0), 1i64, |b, _| {
        b.call_external("pt_work_flops", vec![IrValue::int(5)], Type::Void);
    });
    b.ret(None);
    let kernel = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = b.call_external("pt_param_i64", vec![IrValue::int(0)], Type::I64);
    b.call(kernel, vec![n], Type::Void);
    b.ret(None);
    m.add_function(b.finish());
    pt_ir::printer::print_module(&m)
}

#[test]
fn budget_is_never_exceeded_and_evicted_artifacts_recompute_identically() {
    let store_dir = fresh_store_dir("budget");
    let config = ServerConfig {
        store_budget_bytes: Some(BUDGET),
        ..ServerConfig::loopback(&store_dir, 2)
    };
    let server = Server::bind(&config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    let mut client = Client::connect(addr).expect("connect");

    // The artifact whose eviction we will prove recomputes identically.
    let first_text = big_module_text(0);
    assert!(
        first_text.len() > 30_000,
        "filler must give modules real size ({}B)",
        first_text.len()
    );
    let first_key = client.submit_module(&first_text).expect("submit first");
    let params = vec![("n".to_string(), 17i64)];
    let baseline = client
        .taint_run(&first_key, "main", &params)
        .expect("cold taint_run")
        .render();

    // Flood the store with several budgets' worth of distinct modules. The
    // invariant is continuous: after *every* submission the on-disk object
    // bytes fit the budget.
    let flood = (BUDGET as usize * 5 / 2) / first_text.len() + 2;
    for i in 1..=flood {
        client
            .submit_module(&big_module_text(i))
            .expect("submit flood module");
        let on_disk = object_bytes_on_disk(&store_dir);
        assert!(
            on_disk <= BUDGET,
            "store exceeded budget after submission {i}: {on_disk} > {BUDGET}"
        );
    }

    // The flood must actually have forced evictions, visible in metrics.
    let metrics = client.metrics().expect("metrics");
    let evictions = metrics
        .get("store")
        .and_then(|s| s.get("evictions"))
        .and_then(serde::json::Value::as_u64)
        .unwrap();
    assert!(evictions > 0, "flood of {flood} modules never evicted");
    assert_eq!(
        metrics
            .get("store")
            .and_then(|s| s.get("budget_bytes"))
            .and_then(serde::json::Value::as_u64),
        Some(BUDGET)
    );
    let bytes = metrics
        .get("store")
        .and_then(|s| s.get("bytes"))
        .and_then(serde::json::Value::as_u64)
        .unwrap();
    assert!(bytes <= BUDGET, "indexed bytes {bytes} over budget");

    // Same process: the first module's store objects are long evicted
    // (coldest), but the request must still answer — byte-identical — via
    // the in-memory module cache and recomputation.
    let warm = client
        .taint_run(&first_key, "main", &params)
        .expect("post-eviction taint_run")
        .render();
    assert_eq!(warm, baseline, "recomputed result must be byte-identical");

    // That recomputation re-warmed the first module's *analysis* object in
    // the store. Flood again so the analysis is evicted too — the restart
    // below must find nothing of module 0 on disk.
    for i in flood + 1..=2 * flood {
        client
            .submit_module(&big_module_text(i))
            .expect("submit second flood module");
    }
    assert!(object_bytes_on_disk(&store_dir) <= BUDGET);

    client.shutdown().expect("shutdown");
    handle.join().expect("serve loop exits");

    // --- restart: eviction is visible, resubmission heals ----------------
    let server = Server::bind(&config).expect("rebind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    let mut client = Client::connect(addr).expect("reconnect");

    // The evicted module is genuinely gone: a fresh process can't know it.
    let err = client
        .taint_run(&first_key, "main", &params)
        .expect_err("evicted module is unknown to a fresh process");
    assert_eq!(err.remote_kind(), Some("bad_request"));

    // Resubmitting the same text yields the same content key, and the
    // recomputed analysis is byte-identical to the original cold run.
    let resubmitted = client.submit_module(&first_text).expect("resubmit");
    assert_eq!(resubmitted, first_key, "content addressing is stable");
    let healed = client
        .taint_run(&first_key, "main", &params)
        .expect("healed taint_run")
        .render();
    assert_eq!(healed, baseline, "healed result must be byte-identical");
    assert!(object_bytes_on_disk(&store_dir) <= BUDGET);

    client.shutdown().expect("shutdown");
    handle.join().expect("serve loop exits");
    let _ = std::fs::remove_dir_all(&store_dir);
}
