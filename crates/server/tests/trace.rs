//! The protocol v1.3 `trace` method, end to end: a traced `taint_run`
//! served over TCP must return a span tree whose root `request` span
//! encloses nonzero decode / passes / classify / exec stages — the
//! pipeline's own per-stage attribution, fetched by a client — and the
//! tracer must stay out of the way otherwise (warm requests trace thin,
//! `trace` cannot wrap itself, untraced requests are unaffected).

use pt_server::{Client, Server, ServerConfig};
use serde::json::Value;
use std::sync::atomic::{AtomicUsize, Ordering};

fn fresh_store_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pt-serve-trace-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sum of `dur_us` over every node (at any depth) with the given name.
fn total_dur_us(node: &Value, name: &str) -> f64 {
    let own = match node.get("name").and_then(Value::as_str) {
        Some(n) if n == name => node.get("dur_us").and_then(Value::as_f64).unwrap_or(0.0),
        _ => 0.0,
    };
    let children = node
        .get("children")
        .and_then(Value::as_arr)
        .map(|kids| kids.iter().map(|k| total_dur_us(k, name)).sum::<f64>())
        .unwrap_or(0.0);
    own + children
}

#[test]
fn traced_taint_run_returns_a_nested_stage_tree() {
    let store_dir = fresh_store_dir("tree");
    let server = Server::bind(&ServerConfig::loopback(&store_dir, 2)).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));

    let mut client = Client::connect(addr).expect("connect");
    let module_key = client
        .submit_module(&pt_server::demo_module_text())
        .expect("submit");

    // Cold traced run: the full pipeline executes under the tracer.
    let traced = client
        .trace(
            "taint_run",
            Value::obj(vec![
                ("module", Value::str(&module_key)),
                ("entry", Value::str("main")),
                ("params", Value::obj(vec![("n", Value::int(2_048))])),
            ]),
        )
        .expect("traced taint_run");

    assert!(traced.get("trace_id").and_then(Value::as_u64).unwrap() > 0);
    assert_eq!(
        traced.get("method").and_then(Value::as_str),
        Some("taint_run")
    );
    // The inner result is the ordinary taint_run summary.
    let result = traced.get("result").expect("inner result");
    assert!(
        result.get("classifications").is_some() || result.get("functions").is_some(),
        "inner result should be the analysis summary: {}",
        result.render()
    );

    let spans = traced.get("spans").and_then(Value::as_arr).expect("spans");
    assert_eq!(spans.len(), 1, "one request root: {}", traced.render());
    let root = &spans[0];
    assert_eq!(root.get("name").and_then(Value::as_str), Some("request"));
    assert_eq!(root.get("cat").and_then(Value::as_str), Some("server"));
    let root_dur = root.get("dur_us").and_then(Value::as_f64).unwrap();
    let wall_us = traced.get("wall_us").and_then(Value::as_f64).unwrap();
    assert!(root_dur > 0.0 && root_dur <= wall_us * 1.001);

    // Every pipeline stage appears, with nonzero duration, nested under
    // the request root — and no stage outlasts the request.
    for stage in ["static_stage", "decode", "passes", "classify", "exec"] {
        let child_total: f64 = root
            .get("children")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|k| total_dur_us(k, stage))
            .sum();
        assert!(
            child_total > 0.0,
            "stage '{stage}' missing under the request root: {}",
            traced.render()
        );
        assert!(
            child_total <= root_dur * 1.001,
            "stage '{stage}' ({child_total} us) outlasts the request ({root_dur} us)"
        );
    }
    // The stage totals echo the tree.
    let stages = traced.get("stages_ms").expect("stages_ms");
    assert!(stages.get("decode").and_then(Value::as_f64).unwrap() > 0.0);
    assert!(stages.get("exec").and_then(Value::as_f64).unwrap() > 0.0);

    // Warm traced run: served from the store, so the tree is just the
    // request root — tracing shows the cache hit as the absence of work.
    let warm = client
        .trace(
            "taint_run",
            Value::obj(vec![
                ("module", Value::str(&module_key)),
                ("entry", Value::str("main")),
                ("params", Value::obj(vec![("n", Value::int(2_048))])),
            ]),
        )
        .expect("warm traced taint_run");
    let warm_spans = warm.get("spans").and_then(Value::as_arr).unwrap();
    assert_eq!(warm_spans.len(), 1);
    assert_eq!(
        total_dur_us(&warm_spans[0], "decode"),
        0.0,
        "warm run decodes nothing"
    );

    // Untraced requests still work while nothing is traced.
    assert!(client.stats().is_ok());

    // trace cannot wrap itself.
    let err = client
        .trace("trace", Value::obj(vec![("method", Value::str("stats"))]))
        .expect_err("trace of trace");
    assert_eq!(err.remote_kind(), Some("bad_request"));

    client.shutdown().expect("shutdown");
    handle.join().expect("serve loop exits");
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn traced_batch_keeps_worker_spans_in_the_request_trace() {
    // `analyze_batch` fans out over `parallel_map` workers; their spans
    // must land in the traced request's tree (context propagation), not
    // vanish into trace id 0.
    let store_dir = fresh_store_dir("batch");
    let server = Server::bind(&ServerConfig::loopback(&store_dir, 4)).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));

    let mut client = Client::connect(addr).expect("connect");
    let module_key = client
        .submit_module(&pt_server::demo_module_text())
        .expect("submit");

    let sets: Vec<Value> = (0..4)
        .map(|i| Value::obj(vec![("n", Value::int(512 + i))]))
        .collect();
    let traced = client
        .trace(
            "analyze_batch",
            Value::obj(vec![
                ("module", Value::str(&module_key)),
                ("entry", Value::str("main")),
                ("param_sets", Value::Arr(sets)),
            ]),
        )
        .expect("traced analyze_batch");

    let spans = traced.get("spans").and_then(Value::as_arr).expect("spans");
    assert_eq!(spans.len(), 1, "all worker spans nest under the one root");
    // Four distinct parameter sets → four exec spans somewhere in the tree.
    let execs = count_named(&spans[0], "exec");
    assert_eq!(execs, 4, "one exec per batch entry: {}", traced.render());

    client.shutdown().expect("shutdown");
    handle.join().expect("serve loop exits");
    let _ = std::fs::remove_dir_all(&store_dir);
}

fn count_named(node: &Value, name: &str) -> usize {
    let own = usize::from(node.get("name").and_then(Value::as_str) == Some(name));
    let children = node
        .get("children")
        .and_then(Value::as_arr)
        .map(|kids| kids.iter().map(|k| count_named(k, name)).sum::<usize>())
        .unwrap_or(0);
    own + children
}
