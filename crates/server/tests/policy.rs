//! Protocol v1.4: the `policy` field end to end — a security-policy
//! module served over the wire, with per-policy run counters and
//! policy-salted store keys.

use pt_server::{Client, Server, ServerConfig};
use serde::json::Value;
use std::net::SocketAddr;
use std::path::PathBuf;

fn fresh_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pt-serve-policy-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(store_dir: &PathBuf) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig::loopback(store_dir, 4)).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle)
}

fn get<'v>(v: &'v Value, path: &[&str]) -> &'v Value {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing field {key} in {}", v.render()));
    }
    cur
}

/// A module with the three security intrinsics: every request payload is
/// marked at source 1, alternately sanitized, and checked at sink 1.
fn security_module_text() -> String {
    use pt_ir::{BinOp, CmpPred, FunctionBuilder, Module, Type, Value as IrValue};
    let mut m = Module::new("policy_demo");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = b.call_external("pt_param_i64", vec![IrValue::int(0)], Type::I64);
    let pslot = b.alloca(1i64);
    b.call_external("MPI_Comm_size", vec![pslot], Type::Void);
    b.for_loop(0i64, n, 1i64, |b, i| {
        let scaled = b.bin(BinOp::Mul, i, 3i64);
        let raw = b.add(scaled, 1i64);
        let v = b.call_external("pt_taint_source", vec![raw, IrValue::int(1)], Type::I64);
        let clean = b.call_external("pt_sanitize", vec![v], Type::I64);
        let parity = b.bin(BinOp::Rem, i, 2i64);
        let even = b.cmp(CmpPred::Eq, parity, 0i64);
        let picked = b.select(even, clean, v);
        b.call_external("pt_sink_check", vec![picked, IrValue::int(1)], Type::I64);
        b.call_external("pt_work_flops", vec![IrValue::int(5)], Type::Void);
    });
    b.call_external("MPI_Allreduce", vec![n], Type::Void);
    b.ret(None);
    m.add_function(b.finish());
    pt_ir::printer::print_module(&m)
}

#[test]
fn security_policy_roundtrip() {
    let store_dir = fresh_store_dir("roundtrip");
    let (addr, handle) = start_server(&store_dir);
    let mut client = Client::connect(addr).expect("connect");

    let module_key = client
        .submit_module(&security_module_text())
        .expect("submit");
    let params = vec![("n".to_string(), 6), ("p".to_string(), 4)];

    // --- the same module under both policies -----------------------------
    let default_run = client
        .taint_run(&module_key, "main", &params)
        .expect("param-set run");
    assert!(
        default_run.get("sink_checks").is_none(),
        "the default policy must record no sink activity: {}",
        default_run.render()
    );

    let security_run = client
        .taint_run_with_policy(&module_key, "main", &params, Some("security"))
        .expect("security run");
    let sink = get(&security_run, &["sink_checks", "1"]);
    assert_eq!(
        get(sink, &["checks"]).as_u64(),
        Some(6),
        "every request reaches the audit sink: {}",
        security_run.render()
    );
    assert!(
        get(sink, &["violations"]).as_u64().unwrap() >= 3,
        "the unsanitized half must violate: {}",
        security_run.render()
    );

    // Everything outside the sink ledger is policy-independent (the
    // security policy is a strict superset of param-set).
    for field in ["functions", "table2", "taint_run_time"] {
        assert_eq!(
            get(&default_run, &[field]).render(),
            get(&security_run, &[field]).render(),
            "field {field} must not depend on the policy"
        );
    }

    // --- store keys are policy-salted: warm repeats stay byte-identical
    // per policy and never bleed across policies.
    let warm_security = client
        .taint_run_with_policy(&module_key, "main", &params, Some("security"))
        .expect("warm security");
    assert_eq!(warm_security.render(), security_run.render());
    let warm_default = client
        .taint_run(&module_key, "main", &params)
        .expect("warm param-set");
    assert_eq!(warm_default.render(), default_run.render());
    let stats = client.stats().expect("stats");
    assert!(
        get(&stats, &["served_from_store"]).as_u64().unwrap() >= 2,
        "both warm repeats come from the store: {}",
        stats.render()
    );

    // --- per-policy run counters (cold computes only) --------------------
    assert_eq!(get(&stats, &["policies", "param-set"]).as_u64(), Some(1));
    assert_eq!(get(&stats, &["policies", "security"]).as_u64(), Some(1));

    // --- analyze_batch carries the policy to every entry ------------------
    let batch = client
        .analyze_batch_with_policy(
            &module_key,
            "main",
            &[
                vec![("n".to_string(), 6), ("p".to_string(), 4)], // warm
                vec![("n".to_string(), 8), ("p".to_string(), 4)], // cold
            ],
            Some("security"),
        )
        .expect("security batch");
    let results = get(&batch, &["results"]).as_arr().unwrap();
    assert_eq!(
        get(&results[0], &["result"]).render(),
        security_run.render()
    );
    let cold = get(&results[1], &["result", "sink_checks", "1"]);
    assert_eq!(get(cold, &["checks"]).as_u64(), Some(8));

    // --- explicit "param-set" equals the omitted default ------------------
    let explicit = client
        .taint_run_with_policy(&module_key, "main", &params, Some("param-set"))
        .expect("explicit param-set");
    assert_eq!(explicit.render(), default_run.render());

    // --- unknown policy is a bad_request, not a crash ---------------------
    let err = client
        .taint_run_with_policy(&module_key, "main", &params, Some("strict"))
        .expect_err("unknown policy");
    assert_eq!(err.remote_kind(), Some("bad_request"));

    // --- sampled always-on profile shows up in metrics --------------------
    // loopback() samples every 64th request starting with the first, so at
    // least one request of this test is profiled.
    let metrics = client.metrics().expect("metrics");
    let profile = get(&metrics, &["sampled_profile"]);
    assert_eq!(get(profile, &["sample_every"]).as_u64(), Some(64));
    assert!(get(profile, &["requests_sampled"]).as_u64().unwrap() >= 1);
    assert!(
        get(profile, &["stages", "request", "count"])
            .as_u64()
            .unwrap()
            >= 1,
        "sampled profile must carry the synthetic request stage: {}",
        profile.render()
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("server exits");
    let _ = std::fs::remove_dir_all(&store_dir);
}
