//! Admission control under saturation: a deliberately tiny server (one
//! worker, one queue slot, shedding on) driven at far more than 2× its
//! capacity must (a) answer the overflow *immediately* with `overloaded`
//! envelopes carrying the configured `retry_after_ms`, (b) keep serving
//! the admitted requests to completion with bounded latency, and (c)
//! account for every event in the v1.1 `metrics` readout — histogram
//! counts matching the requests actually dispatched, shed totals matching
//! the `overloaded` replies observed client-side.

use pt_server::{Client, ClientError, Server, ServerConfig};
use serde::json::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const RETRY_AFTER_MS: u64 = 25;

fn fresh_store_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pt-serve-ovl-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn get<'v>(v: &'v Value, path: &[&str]) -> &'v Value {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing field {key} in {}", v.render()));
    }
    cur
}

#[test]
fn saturating_load_sheds_with_retry_hint_while_admitted_requests_complete() {
    let store_dir = fresh_store_dir("saturate");
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        shed: true,
        retry_after_ms: Some(RETRY_AFTER_MS),
        ..ServerConfig::loopback(&store_dir, 1)
    };
    let server = Server::bind(&config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));

    // Stage the module over a quiet connection before the storm.
    let text = pt_server::demo_module_text();
    let module_key = {
        let mut client = Client::connect(addr).expect("connect");
        client.submit_module(&text).expect("submit")
    };

    // Offered load: 12 connection-per-request threads against a capacity
    // of 2 (1 worker + 1 queue slot) — ≥ 6× capacity. Every taint_run uses
    // a unique `n`, so each admitted request pays a real (cold) pipeline
    // computation and the worker stays busy.
    const THREADS: usize = 12;
    const PER_THREAD: usize = 4;
    let ok = AtomicUsize::new(0);
    let overloaded = AtomicUsize::new(0);
    let gave_up = AtomicUsize::new(0);
    let bad = Mutex::new(Vec::<String>::new());
    let latencies = Mutex::new(Vec::<f64>::new());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (module_key, ok, overloaded, gave_up, bad, latencies) =
                (&module_key, &ok, &overloaded, &gave_up, &bad, &latencies);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let n = 5_000 + (t * PER_THREAD + i) as i64;
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        if attempts > 100 {
                            gave_up.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        // Connection-per-request: each attempt arrives at
                        // the admission queue fresh, like a new client.
                        let Ok(mut client) = Client::connect(addr) else {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            continue;
                        };
                        let t0 = Instant::now();
                        match client.taint_run(module_key, "main", &[("n".into(), n)]) {
                            Ok(_) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                                latencies.lock().unwrap().push(t0.elapsed().as_secs_f64());
                                break;
                            }
                            Err(e) if e.remote_kind() == Some("overloaded") => {
                                overloaded.fetch_add(1, Ordering::Relaxed);
                                // The backoff hint must be the configured
                                // value, machine-readable.
                                assert_eq!(
                                    e.retry_after_ms(),
                                    Some(RETRY_AFTER_MS),
                                    "overloaded envelope must carry retry_after_ms"
                                );
                                std::thread::sleep(std::time::Duration::from_millis(
                                    RETRY_AFTER_MS,
                                ));
                            }
                            Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {
                                // Raced the shed write/close; treat like a
                                // shed without a hint.
                                std::thread::sleep(std::time::Duration::from_millis(
                                    RETRY_AFTER_MS,
                                ));
                            }
                            Err(e) => bad.lock().unwrap().push(e.to_string()),
                        }
                    }
                }
            });
        }
    });

    let ok = ok.load(Ordering::Relaxed);
    let overloaded = overloaded.load(Ordering::Relaxed);
    assert!(bad.lock().unwrap().is_empty(), "{:?}", bad.lock().unwrap());
    assert_eq!(gave_up.load(Ordering::Relaxed), 0, "requests starved out");
    assert_eq!(ok, THREADS * PER_THREAD, "every request eventually lands");
    assert!(
        overloaded > 0,
        "≥6× offered load over a 2-slot server must shed"
    );
    // Graceful degradation: admitted requests are bounded by the short
    // queue (at most ~2 cold computations ahead of any admitted request),
    // not by the offered load. The generous ceiling guards against
    // pathological blocking (e.g. the acceptor waiting on the queue),
    // which would show up as multi-second waits under this storm.
    let latencies = latencies.lock().unwrap();
    let p99 = pt_util::metrics::exact_quantile_seconds(&latencies, 0.99);
    assert!(p99 < 30.0, "admitted p99 unbounded: {p99}s");

    // --- the metrics method accounts for everything ----------------------
    let mut client = Client::connect(addr).expect("connect for metrics");
    let metrics = client.metrics().expect("metrics");
    assert_eq!(get(&metrics, &["protocol"]).as_u64(), Some(1));
    assert_eq!(get(&metrics, &["protocol_minor"]).as_u64(), Some(4));
    assert!(get(&metrics, &["uptime_seconds"]).as_f64().unwrap() > 0.0);
    // Shed requests never reach dispatch, so the taint_run histogram holds
    // exactly the requests that were admitted and served.
    assert_eq!(
        get(&metrics, &["methods", "taint_run", "count"]).as_u64(),
        Some(ok as u64),
        "histogram count must match served requests: {}",
        metrics.render()
    );
    assert_eq!(
        get(&metrics, &["methods", "taint_run", "errors"]).as_u64(),
        Some(0)
    );
    assert!(
        get(&metrics, &["methods", "taint_run", "p99_ms"])
            .as_f64()
            .unwrap()
            > 0.0
    );
    // Every overloaded reply the clients saw is a shed the server counted
    // (the server may additionally have shed raced connections whose
    // envelope write failed, so ≥).
    let shed_total = get(&metrics, &["queue", "shed_total"]).as_u64().unwrap();
    assert!(
        shed_total >= overloaded as u64,
        "server counted {shed_total} sheds, clients saw {overloaded}"
    );
    assert_eq!(get(&metrics, &["queue", "capacity"]).as_u64(), Some(1));

    // --- stats satellite: uptime + live queue depth ----------------------
    let stats = client.stats().expect("stats");
    assert!(get(&stats, &["uptime_seconds"]).as_f64().unwrap() > 0.0);
    assert!(get(&stats, &["queue_depth"]).as_i64().unwrap() >= 0);
    assert_eq!(get(&stats, &["protocol_minor"]).as_u64(), Some(4));

    client.shutdown().expect("shutdown");
    handle.join().expect("serve loop exits");
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn adaptive_retry_hint_derives_from_observed_service_time() {
    // Protocol v1.3: with no fixed --retry-after-ms, shed envelopes carry
    // a hint derived from the worst observed per-method p99 — bounded to
    // [25, 5000] ms — instead of a hardcoded constant.
    let store_dir = fresh_store_dir("adaptive");
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        shed: true,
        retry_after_ms: None,
        ..ServerConfig::loopback(&store_dir, 1)
    };
    let server = Server::bind(&config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));

    // Seed the histograms with real service time (a cold taint_run), then
    // release the worker.
    let text = pt_server::demo_module_text();
    {
        let mut client = Client::connect(addr).expect("connect");
        let module_key = client.submit_module(&text).expect("submit");
        client
            .taint_run(&module_key, "main", &[("n".into(), 4_096)])
            .expect("taint_run");
    }

    // Capture the worker with an idle connection, park a second connection
    // in the single queue slot, and let further arrivals hit the shed path.
    let hold_worker = std::net::TcpStream::connect(addr).expect("hold worker");
    std::thread::sleep(std::time::Duration::from_millis(200));
    let hold_queue = std::net::TcpStream::connect(addr).expect("hold queue");
    std::thread::sleep(std::time::Duration::from_millis(200));

    let mut hint = None;
    for _ in 0..50 {
        let Ok(mut probe) = Client::connect(addr) else {
            std::thread::sleep(std::time::Duration::from_millis(10));
            continue;
        };
        match probe.stats() {
            Err(e) if e.remote_kind() == Some("overloaded") => {
                hint = Some(e.retry_after_ms().expect("shed envelope carries a hint"));
                break;
            }
            // Raced the queue (or the shed write); try again.
            _ => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    let hint = hint.expect("a shed with an adaptive hint");
    assert!(
        (25..=5_000).contains(&hint),
        "adaptive hint {hint} ms outside its clamp bounds"
    );

    drop(hold_worker);
    drop(hold_queue);
    // The released worker may take one idle-poll tick to notice the EOFs;
    // retry the shutdown through any residual sheds.
    let mut shut = false;
    for _ in 0..100 {
        if Client::connect(addr)
            .ok()
            .and_then(|mut c| c.shutdown().ok())
            .is_some()
        {
            shut = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(shut, "shutdown never admitted");
    handle.join().expect("serve loop exits");
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn default_config_still_blocks_instead_of_shedding() {
    // The pre-v1.1 stance is preserved: without --shed, a full queue makes
    // arrivals wait; nobody is answered `overloaded`.
    let store_dir = fresh_store_dir("blocking");
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::loopback(&store_dir, 1)
    };
    assert!(!config.shed, "blocking backpressure is the default");
    let server = Server::bind(&config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));

    let text = pt_server::demo_module_text();
    let module_key = {
        let mut client = Client::connect(addr).expect("connect");
        client.submit_module(&text).expect("submit")
    };
    let overloaded = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let (module_key, ok, overloaded) = (&module_key, &ok, &overloaded);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                match client.taint_run(module_key, "main", &[("n".into(), 900 + t as i64)]) {
                    Ok(_) => {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) if e.remote_kind() == Some("overloaded") => {
                        overloaded.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("unexpected failure: {e}"),
                }
            });
        }
    });
    assert_eq!(overloaded.load(Ordering::Relaxed), 0);
    assert_eq!(ok.load(Ordering::Relaxed), 8);

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("serve loop exits");
    let _ = std::fs::remove_dir_all(&store_dir);
}
