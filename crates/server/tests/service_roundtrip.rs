//! The acceptance round trip: a live server over a loopback socket, driven
//! by the real [`pt_server::Client`].
//!
//! Proves the PR's contract end to end: `submit_module` → `taint_run`
//! twice gives byte-identical results, equal to the in-process
//! [`perf_taint::Session`] path; the second request is served from the
//! persistent store (observable via `stats`) — including from a *fresh
//! server process-equivalent* (new `Server`, same store directory) that
//! never saw the submission.

use pt_server::{Client, Server, ServerConfig};
use serde::json::Value;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique store directory per test (tests in one binary share a pid).
fn fresh_store_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pt-serve-it-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bind a server on an ephemeral loopback port and run it on a background
/// thread. Returns the address and the join handle (joined after
/// `shutdown` to prove the serve loop actually exits).
fn start_server(store_dir: &PathBuf) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig::loopback(store_dir, 4)).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle)
}

fn get<'v>(v: &'v Value, path: &[&str]) -> &'v Value {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing field {key} in {}", v.render()));
    }
    cur
}

#[test]
fn full_roundtrip_with_store_hits_and_restart() {
    let store_dir = fresh_store_dir("roundtrip");
    let (addr, handle) = start_server(&store_dir);
    let mut client = Client::connect(addr).expect("connect");

    // --- submit_module ---------------------------------------------------
    let text = pt_server::demo_module_text();
    let module_key = client.submit_module(&text).expect("submit");
    assert_eq!(module_key.len(), 32);

    // --- static_analysis -------------------------------------------------
    let statics = client.static_analysis(&module_key, "main").expect("static");
    assert_eq!(
        get(&statics, &["functions_total"]).as_u64(),
        Some(4),
        "{}",
        statics.render()
    );

    // --- taint_run twice: byte-identical, second from the store ----------
    let params = vec![("n".to_string(), 6), ("p".to_string(), 4)];
    let r1 = client
        .taint_run(&module_key, "main", &params)
        .expect("cold run");
    let r2 = client
        .taint_run(&module_key, "main", &params)
        .expect("warm run");
    assert_eq!(
        r1.render(),
        r2.render(),
        "warm result must be byte-identical"
    );

    // ...and byte-identical to the in-process Session path.
    let module = perf_taint::parse_module(&text).unwrap();
    let session = perf_taint::SessionBuilder::new(&module, "main").build();
    let analysis = session.taint_run(params.clone()).unwrap();
    let local = perf_taint::analysis_summary(&analysis, &module).render();
    assert_eq!(
        r1.render(),
        local,
        "served result must match the library path"
    );

    // The warm run is observable in stats: at least one response served
    // from the persistent store.
    let stats = client.stats().expect("stats");
    let served = get(&stats, &["served_from_store"]).as_u64().unwrap();
    assert!(
        served >= 1,
        "expected a store-served response: {}",
        stats.render()
    );
    assert!(get(&stats, &["store", "objects"]).as_u64().unwrap() >= 3);

    // --- analyze_batch: mixed success/failure, per-entry envelopes --------
    let batch = client
        .analyze_batch(
            &module_key,
            "main",
            &[
                vec![("n".to_string(), 6), ("p".to_string(), 4)], // warm
                vec![("n".to_string(), 12), ("p".to_string(), 8)], // cold
                vec![("n".to_string(), 6), ("p".to_string(), 0)], // invalid ranks
            ],
        )
        .expect("batch");
    let results = get(&batch, &["results"]).as_arr().unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(get(&results[0], &["ok"]).as_bool(), Some(true));
    // The warm batch entry equals the direct run byte for byte.
    assert_eq!(get(&results[0], &["result"]).render(), r1.render());
    assert_eq!(get(&results[1], &["ok"]).as_bool(), Some(true));
    assert_eq!(get(&results[2], &["ok"]).as_bool(), Some(false));
    assert_eq!(
        get(&results[2], &["error", "kind"]).as_str(),
        Some("config")
    );

    // --- fit_model: cold then warm ----------------------------------------
    let fit_params = Value::parse(
        r#"{"param_names":["p","n"],"points":[
            {"coords":[4,8],"reps":[8.1,8.0]},
            {"coords":[4,16],"reps":[16.2,15.9]},
            {"coords":[4,32],"reps":[32.1,32.0]},
            {"coords":[8,8],"reps":[8.2]},
            {"coords":[8,16],"reps":[16.1]},
            {"coords":[8,32],"reps":[31.9]}],
           "restriction":[2]}"#,
    )
    .unwrap();
    let fit1 = client
        .request("fit_model", fit_params.clone())
        .expect("fit cold");
    let fit2 = client.request("fit_model", fit_params).expect("fit warm");
    assert_eq!(fit1.render(), fit2.render());
    assert!(get(&fit1, &["model"]).as_str().is_some());

    // --- error mapping across the wire ------------------------------------
    let err = client
        .taint_run("feedfacefeedfacefeedfacefeedface", "main", &[])
        .expect_err("unknown module");
    assert_eq!(err.remote_kind(), Some("bad_request"));
    let err = client
        .taint_run(&module_key, "nope", &[])
        .expect_err("unknown entry");
    assert_eq!(err.remote_kind(), Some("entry_not_found"));

    // --- shutdown: the serve loop exits ------------------------------------
    client.shutdown().expect("shutdown ack");
    handle.join().expect("server thread exits cleanly");

    // --- restart: same store, fresh process-equivalent ---------------------
    // No resubmission: the second server must serve the module hash and the
    // warm analysis straight from the persistent store.
    let (addr, handle) = start_server(&store_dir);
    let mut client = Client::connect(addr).expect("reconnect");
    let r3 = client
        .taint_run(&module_key, "main", &params)
        .expect("warm after restart");
    assert_eq!(
        r3.render(),
        r1.render(),
        "restart must not change served bytes"
    );
    let stats = client.stats().expect("stats after restart");
    assert!(
        get(&stats, &["served_from_store"]).as_u64().unwrap() >= 1,
        "restarted server must serve from the store: {}",
        stats.render()
    );
    // static_analysis is warm from disk too, and submit_module reports the
    // module as already known.
    let statics2 = client
        .static_analysis(&module_key, "main")
        .expect("static warm");
    assert_eq!(statics2.render(), statics.render());
    let resubmit = client
        .request(
            "submit_module",
            Value::obj(vec![("text", Value::str(&text))]),
        )
        .expect("resubmit");
    assert_eq!(get(&resubmit, &["known"]).as_bool(), Some(true));
    assert_eq!(
        get(&resubmit, &["module"]).as_str(),
        Some(module_key.as_str())
    );

    client.shutdown().expect("shutdown 2");
    handle.join().expect("server 2 exits");
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn corrupt_store_objects_fall_back_to_recompute() {
    let store_dir = fresh_store_dir("corrupt");
    let (addr, handle) = start_server(&store_dir);
    let mut client = Client::connect(addr).expect("connect");
    let module_key = client
        .submit_module(&pt_server::demo_module_text())
        .expect("submit");
    let params = vec![("n".to_string(), 4), ("p".to_string(), 2)];
    let r1 = client
        .taint_run(&module_key, "main", &params)
        .expect("cold");

    // Corrupt every stored analysis object on disk.
    for entry in std::fs::read_dir(store_dir.join("analyses")).expect("analyses dir") {
        std::fs::write(entry.expect("entry").path(), "{truncated").expect("corrupt");
    }

    // The pipeline is deterministic: a corrupt object is a miss, the run
    // recomputes, answers identically, and heals the store.
    let r2 = client
        .taint_run(&module_key, "main", &params)
        .expect("recompute");
    assert_eq!(r2.render(), r1.render());
    let r3 = client
        .taint_run(&module_key, "main", &params)
        .expect("healed warm");
    assert_eq!(r3.render(), r1.render());
    let stats = client.stats().expect("stats");
    assert!(
        get(&stats, &["served_from_store"]).as_u64().unwrap() >= 1,
        "healed object serves warm again: {}",
        stats.render()
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("server exits");
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn shutdown_completes_while_another_client_idles() {
    let store_dir = fresh_store_dir("idle-shutdown");
    let (addr, handle) = start_server(&store_dir);
    // An idle client parks a worker in a blocking read...
    let _idle = Client::connect(addr).expect("idle client");
    // ...but shutdown must still complete: reads poll the stop flag.
    let mut client = Client::connect(addr).expect("active client");
    client.shutdown().expect("shutdown ack");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(handle.join());
    });
    rx.recv_timeout(std::time::Duration::from_secs(10))
        .expect("server must exit despite the idle connection")
        .expect("serve loop exits cleanly");
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn concurrent_clients_share_one_static_stage() {
    let store_dir = fresh_store_dir("concurrent");
    let (addr, handle) = start_server(&store_dir);

    let text = pt_server::demo_module_text();
    let module_key = Client::connect(addr)
        .expect("connect")
        .submit_module(&text)
        .expect("submit");

    // Eight clients race distinct cold taint runs; every one must succeed
    // and the server must stay consistent under the contention.
    let runs: Vec<i64> = (1..=8).collect();
    let renders = pt_util::parallel_map(&runs, 8, |&n| {
        let mut client = Client::connect(addr).expect("connect worker");
        client
            .taint_run(
                &module_key,
                "main",
                &[("n".to_string(), n), ("p".to_string(), 4)],
            )
            .expect("worker run")
            .render()
    });
    assert_eq!(renders.len(), 8);
    // Distinct parameters give distinct analyses...
    let unique: std::collections::BTreeSet<&String> = renders.iter().collect();
    assert_eq!(unique.len(), 8);

    // ...all eight analyses landed in the store...
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    let objects = get(&stats, &["store", "objects"]).as_u64().unwrap();
    assert!(objects >= 9, "8 analyses + module, saw {objects}");

    // ...and a repeat of any of them is served from the store.
    let warm = client
        .taint_run(
            &module_key,
            "main",
            &[("n".to_string(), 3), ("p".to_string(), 4)],
        )
        .expect("warm");
    assert_eq!(&warm.render(), &renders[2]);

    client.shutdown().expect("shutdown");
    handle.join().expect("server exits");
    let _ = std::fs::remove_dir_all(&store_dir);
}
