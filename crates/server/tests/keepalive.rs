//! Keep-alive limit regression tests: an idle connection is disconnected
//! after `idle_timeout`, a connection is closed after
//! `max_requests_per_connection` served requests, and in both cases a
//! fresh connection keeps working — limits recycle workers, they never
//! take the service down.

use pt_server::{Client, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn fresh_store_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pt-serve-ka-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_limited(
    store_dir: &PathBuf,
    idle: Option<Duration>,
    max_requests: Option<u64>,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let mut config = ServerConfig::loopback(store_dir, 2);
    config.idle_timeout = idle;
    config.max_requests_per_connection = max_requests;
    let server = Server::bind(&config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    Client::connect(addr)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown");
    handle.join().expect("server thread exits");
}

#[test]
fn idle_connection_is_disconnected_and_fresh_ones_work() {
    let store_dir = fresh_store_dir("idle");
    // Idle limit of 400ms; the poll granularity is 200ms, so an idle
    // client is dropped well within the 1.5s we wait.
    let (addr, handle) = start_limited(&store_dir, Some(Duration::from_millis(400)), None);

    let mut idler = Client::connect(addr).expect("connect");
    idler.stats().expect("first request on a live connection");

    std::thread::sleep(Duration::from_millis(1500));

    // The server hung up while we sat idle: the next request fails on the
    // old connection...
    assert!(
        idler.stats().is_err(),
        "idle connection must be disconnected"
    );

    // ...but the service is healthy: a fresh connection works.
    let mut fresh = Client::connect(addr).expect("reconnect");
    fresh.stats().expect("fresh connection serves requests");

    // Activity resets the idle clock: a client that keeps talking at a
    // pace faster than the limit stays connected across several limits'
    // worth of wall time.
    let mut chatty = Client::connect(addr).expect("connect chatty");
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(150));
        chatty.stats().expect("active connection stays alive");
    }

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn connection_closes_after_max_requests_but_service_continues() {
    let store_dir = fresh_store_dir("maxreq");
    let (addr, handle) = start_limited(&store_dir, None, Some(3));

    let mut client = Client::connect(addr).expect("connect");
    for i in 0..3 {
        client
            .stats()
            .unwrap_or_else(|e| panic!("request {i} within the budget failed: {e}"));
    }
    // The 4th request on the same connection hits the closed socket.
    assert!(
        client.stats().is_err(),
        "connection must close after its request budget"
    );

    // Reconnecting restores a full budget.
    let mut again = Client::connect(addr).expect("reconnect");
    for i in 0..3 {
        again
            .stats()
            .unwrap_or_else(|e| panic!("request {i} after reconnect failed: {e}"));
    }

    shutdown(addr, handle);
    let _ = std::fs::remove_dir_all(&store_dir);
}
