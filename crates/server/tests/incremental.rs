//! Function-granular incremental analysis through the server: editing one
//! function of a 20-function module recomputes only that function's cone
//! (the function plus its callers), both within one process and across a
//! server restart on the same store — and the served static summary is
//! byte-identical to a cold recompute every time.

use pt_server::{ServerState, Store};
use serde::json::Value;

/// The editable app: `KERNELS` loop kernels plus `main` (20 functions).
/// `edited` replaces one kernel's work constant — the smallest edit, whose
/// cone is exactly {kernel, main}.
const KERNELS: usize = 19;

fn module_text(edited: Option<(usize, i64)>) -> String {
    use pt_ir::{FunctionBuilder, Module, Type, Value as IrValue};
    let mut m = Module::new("edit_app");
    let mut ids = Vec::new();
    for i in 0..KERNELS {
        let flops = match edited {
            Some((j, v)) if j == i => v,
            _ => 2 + (i as i64 % 5),
        };
        let mut b = FunctionBuilder::new(
            format!("work_{i:02}"),
            vec![("n".into(), Type::I64)],
            Type::Void,
        );
        b.for_loop(0i64, b.param(0), 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![IrValue::int(flops)], Type::Void);
        });
        b.ret(None);
        ids.push(m.add_function(b.finish()));
    }
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = b.call_external("pt_param_i64", vec![IrValue::int(0)], Type::I64);
    for &f in &ids {
        b.call(f, vec![n], Type::Void);
    }
    b.ret(None);
    m.add_function(b.finish());
    pt_ir::printer::print_module(&m)
}

fn fresh_store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pt-serve-incr-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn state_on(dir: &std::path::Path) -> ServerState {
    ServerState::new(Store::open(dir).expect("store opens"), 2, 4)
}

/// Submit `text` and return (module hash, rendered static summary).
fn submit_and_static(state: &ServerState, text: &str) -> (String, String) {
    let params = Value::obj(vec![("text", Value::str(text))]);
    let resp = state.dispatch("submit_module", &params).expect("submit");
    let hash = resp
        .get("module")
        .and_then(Value::as_str)
        .expect("module hash")
        .to_string();
    let params = Value::obj(vec![
        ("module", Value::str(&hash)),
        ("entry", Value::str("main")),
    ]);
    let summary = state
        .dispatch("static_analysis", &params)
        .expect("static_analysis");
    (hash, summary.render())
}

/// The `functions` reuse ledger from `stats`, as (total, memory, store,
/// recomputed).
fn ledger(state: &ServerState) -> (u64, u64, u64, u64) {
    let stats = state.dispatch("stats", &Value::Null).expect("stats");
    let f = stats.get("functions").expect("v1.2 functions object");
    let field = |name: &str| f.get(name).and_then(Value::as_u64).expect(name);
    (
        field("total"),
        field("reused_memory"),
        field("reused_store"),
        field("recomputed"),
    )
}

/// What a process that has never seen any of this would serve: a fresh
/// state over a fresh store. The incremental answers must match its bytes.
fn cold_bytes(text: &str, tag: &str) -> String {
    let dir = fresh_store_dir(tag);
    let (_, summary) = submit_and_static(&state_on(&dir), text);
    let _ = std::fs::remove_dir_all(&dir);
    summary
}

#[test]
fn editing_one_function_recomputes_only_its_cone_in_process() {
    let dir = fresh_store_dir("inproc");
    let state = state_on(&dir);
    let n = KERNELS + 1;

    // Cold submission: every function is computed once.
    let base = module_text(None);
    let (base_hash, base_summary) = submit_and_static(&state, &base);
    assert_eq!(ledger(&state), (n as u64, 0, 0, n as u64));
    assert_eq!(base_summary, cold_bytes(&base, "inproc-cold0"));

    // Edit one kernel: a new module hash, but only {kernel, main} is
    // recomputed — the other 18 functions come from the in-memory cache.
    let edited = module_text(Some((7, 1234)));
    let (edit_hash, edit_summary) = submit_and_static(&state, &edited);
    assert_ne!(edit_hash, base_hash, "an edit is a new module identity");
    let (total, mem, store, recomputed) = ledger(&state);
    assert_eq!(total, 2 * n as u64);
    assert_eq!(recomputed, n as u64 + 2, "edited kernel + its caller only");
    assert_eq!(mem, n as u64 - 2, "all untouched functions reused");
    assert_eq!(store, 0, "same process: memory wins before the store");

    // Incrementality must be invisible in the output.
    assert_eq!(edit_summary, cold_bytes(&edited, "inproc-cold1"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn function_units_survive_a_server_restart() {
    let dir = fresh_store_dir("restart");
    let n = KERNELS + 1;

    // First process: compute and persist the base module's units.
    let base = module_text(None);
    {
        let state = state_on(&dir);
        submit_and_static(&state, &base);
        assert_eq!(ledger(&state), (n as u64, 0, 0, n as u64));
    }

    // Second process, same store, an edit it has never analyzed: the
    // untouched functions load from disk; only the cone is recomputed.
    let edited = module_text(Some((3, 4321)));
    let restarted = state_on(&dir);
    let (_, edit_summary) = submit_and_static(&restarted, &edited);
    let (total, mem, store, recomputed) = ledger(&restarted);
    assert_eq!(total, n as u64);
    assert_eq!(store, n as u64 - 2, "untouched units reused from the store");
    assert_eq!(recomputed, 2, "edited kernel + its caller only");
    assert_eq!(mem, 0);

    // Byte-identical to what a never-cached process would serve.
    assert_eq!(edit_summary, cold_bytes(&edited, "restart-cold"));

    // Resubmitting the *base* module costs nothing at all: process one
    // persisted its whole static summary, so the response-granular store
    // answers before the per-function cache is even consulted — the
    // ledger does not move, and the bytes still match a cold process.
    let (_, base_summary) = submit_and_static(&restarted, &base);
    assert_eq!(ledger(&restarted), (total, mem, store, recomputed));
    assert_eq!(base_summary, cold_bytes(&base, "restart-cold2"));
    let _ = std::fs::remove_dir_all(&dir);
}
