//! # pt-extrap — empirical performance modeling (Extra-P reimplementation)
//!
//! The black-box half of the Perf-Taint pipeline: given measurements of a
//! quantity across a parameter sweep, find the performance-model normal form
//! (PMNF, Eq. 1 of the paper) hypothesis that best explains them.
//!
//! * [`measurement`] — coordinates, repetitions, means, the CV ≤ 0.1
//!   reliability filter of §B1.
//! * [`term`] — PMNF terms `∏ x^i·log2(x)^j` and models `c₀ + Σ cₖ·termₖ`.
//! * [`linalg`] — the tiny OLS machinery (hypotheses are linear in their
//!   coefficients).
//! * [`search`] — hypothesis enumeration over the paper's `I × J` exponent
//!   sets, leave-one-out cross-validated selection, the fast
//!   multi-parameter heuristic, and the taint-derived [`Restriction`]
//!   that turns the black-box modeler into the hybrid one (§4.5).
//!
//! Used standalone this crate reproduces black-box Extra-P behavior —
//! including its tendency to overfit constant functions under noise, which
//! is precisely the failure mode the taint prior eliminates (§B1).

pub mod linalg;
pub mod measurement;
pub mod search;
pub mod segmented;
pub mod term;

pub use measurement::{MeasurePoint, MeasurementSet};
pub use search::{
    fit_multi_param, fit_single_param, FittedModel, Quality, Restriction, SearchSpace,
};
pub use segmented::{fit_segmented, SegmentedModel};
pub use term::{Factor, Model, Term};
