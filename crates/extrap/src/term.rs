//! PMNF terms and models (Equation 1 of the paper).
//!
//! A *term* is a product `∏_l x_l^{i_l} · log2(x_l)^{j_l}` over the model
//! parameters; a *model* is `c_0 + Σ_k c_k · term_k`. The exponents come
//! from the fixed sets `I` and `J` (§4.5), which makes every hypothesis
//! linear in its coefficients.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One parameter's contribution to a term: `x^exp · log2(x)^log_exp`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Factor {
    /// Index of the parameter.
    pub param: usize,
    /// Polynomial exponent (a value from the `I` set).
    pub exp: f64,
    /// Logarithm exponent (a value from the `J` set).
    pub log_exp: u32,
}

impl Factor {
    pub fn eval(&self, x: f64) -> f64 {
        let x = x.max(f64::MIN_POSITIVE);
        let poly = x.powf(self.exp);
        let log = if self.log_exp == 0 {
            1.0
        } else {
            x.log2().powi(self.log_exp as i32)
        };
        poly * log
    }

    /// Is this the trivial factor `x^0 · log^0 = 1`?
    pub fn is_one(&self) -> bool {
        self.exp == 0.0 && self.log_exp == 0
    }
}

/// A PMNF term: product of factors over distinct parameters.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Term {
    pub factors: Vec<Factor>,
}

impl Term {
    pub fn single(param: usize, exp: f64, log_exp: u32) -> Term {
        Term {
            factors: vec![Factor {
                param,
                exp,
                log_exp,
            }],
        }
    }

    /// Product of two terms; factors for the same parameter merge by adding
    /// exponents.
    pub fn product(&self, other: &Term) -> Term {
        let mut factors = self.factors.clone();
        for f in &other.factors {
            match factors.iter_mut().find(|g| g.param == f.param) {
                Some(g) => {
                    g.exp += f.exp;
                    g.log_exp += f.log_exp;
                }
                None => factors.push(*f),
            }
        }
        factors.retain(|f| !f.is_one());
        factors.sort_by_key(|f| f.param);
        Term { factors }
    }

    /// Evaluate at a coordinate (indexed by parameter).
    pub fn eval(&self, coords: &[f64]) -> f64 {
        self.factors
            .iter()
            .map(|f| f.eval(coords[f.param]))
            .product()
    }

    /// Parameters used by this term, as a bitmask.
    pub fn param_mask(&self) -> u64 {
        self.factors
            .iter()
            .filter(|f| !f.is_one())
            .fold(0u64, |m, f| m | (1u64 << f.param))
    }

    /// Total "complexity" used to break selection ties (smaller = simpler).
    pub fn complexity(&self) -> f64 {
        self.factors
            .iter()
            .map(|f| f.exp.abs() + f.log_exp as f64 * 0.5)
            .sum()
    }

    pub fn is_constant(&self) -> bool {
        self.factors.iter().all(|f| f.is_one())
    }

    /// Render with parameter names.
    pub fn render(&self, names: &[String]) -> String {
        if self.is_constant() {
            return "1".into();
        }
        let mut parts = Vec::new();
        for f in &self.factors {
            if f.is_one() {
                continue;
            }
            let name = names
                .get(f.param)
                .cloned()
                .unwrap_or_else(|| format!("x{}", f.param));
            if f.exp != 0.0 {
                if (f.exp - 1.0).abs() < 1e-12 {
                    parts.push(name.clone());
                } else {
                    parts.push(format!("{name}^{}", trim_float(f.exp)));
                }
            }
            if f.log_exp == 1 {
                parts.push(format!("log2({name})"));
            } else if f.log_exp > 1 {
                parts.push(format!("log2({name})^{}", f.log_exp));
            }
        }
        parts.join("·")
    }
}

fn trim_float(v: f64) -> String {
    if (v - v.round()).abs() < 1e-12 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

/// A fitted PMNF model: `constant + Σ coef_k · term_k`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Model {
    pub constant: f64,
    pub terms: Vec<(f64, Term)>,
}

impl Model {
    pub fn constant(c: f64) -> Model {
        Model {
            constant: c,
            terms: Vec::new(),
        }
    }

    pub fn eval(&self, coords: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(c, t)| c * t.eval(coords))
                .sum::<f64>()
    }

    /// Whether the model (beyond its constant) depends on parameter `k`.
    /// Terms with negligible coefficients are ignored: a dependency exists
    /// only if the term contributes meaningfully somewhere.
    pub fn uses_param(&self, k: usize) -> bool {
        self.terms
            .iter()
            .any(|(c, t)| *c != 0.0 && t.param_mask() & (1u64 << k) != 0)
    }

    /// Bitmask of all parameters used.
    pub fn param_mask(&self) -> u64 {
        self.terms
            .iter()
            .filter(|(c, _)| *c != 0.0)
            .fold(0u64, |m, (_, t)| m | t.param_mask())
    }

    pub fn is_constant(&self) -> bool {
        self.param_mask() == 0
    }

    /// Whether any term multiplies two or more distinct parameters.
    pub fn has_multiplicative_term(&self) -> bool {
        self.terms
            .iter()
            .any(|(c, t)| *c != 0.0 && t.param_mask().count_ones() >= 2)
    }

    /// Render with parameter names, e.g. `2.4e-8·p^0.25·size^3 + 1.3e-2`.
    pub fn render(&self, names: &[String]) -> String {
        let mut parts = Vec::new();
        if self.constant != 0.0 || self.terms.is_empty() {
            parts.push(format!("{:.3e}", self.constant));
        }
        for (c, t) in &self.terms {
            parts.push(format!("{:.3e}·{}", c, t.render(names)));
        }
        parts.join(" + ")
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_eval() {
        let f = Factor {
            param: 0,
            exp: 2.0,
            log_exp: 0,
        };
        assert!((f.eval(3.0) - 9.0).abs() < 1e-12);
        let g = Factor {
            param: 0,
            exp: 0.0,
            log_exp: 2,
        };
        assert!((g.eval(8.0) - 9.0).abs() < 1e-12); // log2(8)^2 = 9
        let h = Factor {
            param: 0,
            exp: 0.5,
            log_exp: 1,
        };
        assert!((h.eval(4.0) - 4.0).abs() < 1e-12); // 2 * 2
    }

    #[test]
    fn term_eval_multi_param() {
        // p^0.25 * size^3
        let t = Term {
            factors: vec![
                Factor {
                    param: 0,
                    exp: 0.25,
                    log_exp: 0,
                },
                Factor {
                    param: 1,
                    exp: 3.0,
                    log_exp: 0,
                },
            ],
        };
        let v = t.eval(&[16.0, 2.0]);
        assert!((v - 2.0 * 8.0).abs() < 1e-12);
        assert_eq!(t.param_mask(), 0b11);
    }

    #[test]
    fn term_product_merges_exponents() {
        let a = Term::single(0, 1.0, 0);
        let b = Term::single(0, 1.0, 1);
        let ab = a.product(&b);
        assert_eq!(ab.factors.len(), 1);
        assert!((ab.factors[0].exp - 2.0).abs() < 1e-12);
        assert_eq!(ab.factors[0].log_exp, 1);

        let c = Term::single(1, 0.5, 0);
        let ac = a.product(&c);
        assert_eq!(ac.factors.len(), 2);
        assert_eq!(ac.param_mask(), 0b11);
    }

    #[test]
    fn model_eval_and_deps() {
        // 3 + 2·x^2 + 0·y
        let m = Model {
            constant: 3.0,
            terms: vec![
                (2.0, Term::single(0, 2.0, 0)),
                (0.0, Term::single(1, 1.0, 0)),
            ],
        };
        assert!((m.eval(&[4.0, 100.0]) - 35.0).abs() < 1e-12);
        assert!(m.uses_param(0));
        assert!(!m.uses_param(1), "zero-coefficient term is no dependency");
        assert!(!m.is_constant());
        assert!(Model::constant(5.0).is_constant());
    }

    #[test]
    fn multiplicative_detection() {
        let additive = Model {
            constant: 0.0,
            terms: vec![
                (1.0, Term::single(0, 1.0, 0)),
                (1.0, Term::single(1, 3.0, 0)),
            ],
        };
        assert!(!additive.has_multiplicative_term());
        let multiplicative = Model {
            constant: 0.0,
            terms: vec![(
                1.0,
                Term::single(0, 0.25, 0).product(&Term::single(1, 3.0, 0)),
            )],
        };
        assert!(multiplicative.has_multiplicative_term());
    }

    #[test]
    fn rendering() {
        let names = vec!["p".to_string(), "size".to_string()];
        let t = Term::single(0, 0.5, 0).product(&Term::single(1, 3.0, 0));
        assert_eq!(t.render(&names), "p^0.5·size^3");
        let t2 = Term::single(0, 0.0, 2);
        assert_eq!(t2.render(&names), "log2(p)^2");
        let t3 = Term::single(1, 1.0, 1);
        assert_eq!(t3.render(&names), "size·log2(size)");
        let m = Model {
            constant: 1.5,
            terms: vec![(2e-8, t)],
        };
        assert!(m.render(&names).contains("2.000e-8·p^0.5·size^3"));
    }
}
