//! The PMNF model search: single-parameter hypotheses over `I × J`, the
//! multi-parameter heuristic of Calotoiu et al. (reused by the paper, §4.5),
//! leave-one-out cross-validated selection, and the white-box *search-space
//! restriction* that Perf-Taint derives from the taint analysis.
//!
//! The restriction is the heart of the hybrid modeler (§4.5 "Hybrid
//! modeler"): a set of *monomials* — parameter combinations proven possible
//! by the loop-nest composition — filters the candidate terms. A function
//! whose taint shows only `{p} + {size}` (additive) never receives a
//! `p·size` cross term; a function with no tainted loops is forced to a
//! constant model. This is what removes the false dependencies that noise
//! induces in black-box Extra-P (§B1).

use crate::linalg::{least_squares, r_squared, smape};
use crate::measurement::MeasurementSet;
use crate::term::{Model, Term};
use serde::{Deserialize, Serialize};

/// The hypothesis search space (defaults follow §4.5 of the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Polynomial exponents `I` (0 is implied via pure-log terms).
    pub i_exps: Vec<f64>,
    /// Logarithm exponents `J`.
    pub j_exps: Vec<u32>,
    /// Maximum number of non-constant terms per hypothesis (`n` in PMNF).
    pub max_terms: usize,
    /// How many best single-parameter terms feed the multi-parameter
    /// heuristic per parameter.
    pub per_param_candidates: usize,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            // The paper's I set: {0/4 .. 12/4} ∪ thirds.
            i_exps: vec![
                0.0,
                1.0 / 4.0,
                1.0 / 3.0,
                2.0 / 4.0,
                2.0 / 3.0,
                3.0 / 4.0,
                1.0,
                5.0 / 4.0,
                4.0 / 3.0,
                6.0 / 4.0,
                5.0 / 3.0,
                7.0 / 4.0,
                2.0,
                9.0 / 4.0,
                10.0 / 4.0,
                8.0 / 3.0,
                11.0 / 4.0,
                3.0,
            ],
            j_exps: vec![0, 1, 2],
            max_terms: 2,
            per_param_candidates: 3,
        }
    }
}

impl SearchSpace {
    /// A smaller space for unit tests (faster, still expressive).
    pub fn small() -> SearchSpace {
        SearchSpace {
            i_exps: vec![0.0, 0.5, 1.0, 1.5, 2.0, 3.0],
            j_exps: vec![0, 1, 2],
            max_terms: 2,
            per_param_candidates: 3,
        }
    }

    /// All single-parameter candidate terms for parameter `param`.
    pub fn single_param_terms(&self, param: usize) -> Vec<Term> {
        let mut out = Vec::new();
        for &i in &self.i_exps {
            for &j in &self.j_exps {
                if i == 0.0 && j == 0 {
                    continue; // the constant is handled separately
                }
                out.push(Term::single(param, i, j));
            }
        }
        out
    }
}

/// White-box restriction derived from the taint analysis: the set of
/// parameter-combination monomials a function's compute volume can contain.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Restriction {
    /// Each entry is a bitmask of parameter indices that may appear
    /// *multiplied together* in one term.
    pub monomials: Vec<u64>,
}

impl Restriction {
    /// A restriction that forbids every parameter (constant function).
    pub fn constant() -> Restriction {
        Restriction {
            monomials: Vec::new(),
        }
    }

    pub fn from_monomials(monomials: Vec<u64>) -> Restriction {
        Restriction { monomials }
    }

    /// May a term using exactly `mask` appear in the model?
    pub fn allows_mask(&self, mask: u64) -> bool {
        mask == 0 || self.monomials.iter().any(|m| m & mask == mask)
    }

    /// Union of all allowed parameters.
    pub fn allowed_params(&self) -> u64 {
        self.monomials.iter().fold(0, |a, m| a | m)
    }

    pub fn forbids_everything(&self) -> bool {
        self.allowed_params() == 0
    }
}

/// Fit quality of a selected model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Quality {
    /// Leave-one-out cross-validated SMAPE (selection criterion).
    pub cv_smape: f64,
    /// SMAPE of the final fit on all points.
    pub smape: f64,
    pub r2: f64,
    pub rss: f64,
    /// Number of hypotheses evaluated.
    pub hypotheses: usize,
}

/// A selected model plus its quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedModel {
    pub model: Model,
    pub quality: Quality,
}

/// Evaluate candidate terms into a design matrix: `[1, t1(x), t2(x), ...]`.
fn design_matrix(terms: &[&Term], coords: &[Vec<f64>]) -> Vec<Vec<f64>> {
    coords
        .iter()
        .map(|c| {
            let mut row = Vec::with_capacity(terms.len() + 1);
            row.push(1.0);
            for t in terms {
                row.push(t.eval(c));
            }
            row
        })
        .collect()
}

/// Leave-one-out cross-validated SMAPE of a hypothesis. Returns `None` when
/// a fold is unfittable (singular design).
fn loo_cv_smape(design: &[Vec<f64>], ys: &[f64]) -> Option<f64> {
    let n = ys.len();
    let ncoef = design.first().map(|r| r.len()).unwrap_or(1);
    if n <= ncoef {
        // Not enough points to cross-validate; fall back to the training
        // error (slightly optimistic, but keeps tiny sweeps usable).
        let coef = least_squares(design, ys)?;
        let pred: Vec<f64> = design
            .iter()
            .map(|r| r.iter().zip(&coef).map(|(d, c)| d * c).sum())
            .collect();
        return Some(smape(&pred, ys));
    }
    let mut held_pred = Vec::with_capacity(n);
    let mut held_act = Vec::with_capacity(n);
    for k in 0..n {
        let mut d: Vec<Vec<f64>> = Vec::with_capacity(n - 1);
        let mut y: Vec<f64> = Vec::with_capacity(n - 1);
        for i in 0..n {
            if i != k {
                d.push(design[i].clone());
                y.push(ys[i]);
            }
        }
        let coef = least_squares(&d, &y)?;
        let pred: f64 = design[k].iter().zip(&coef).map(|(d, c)| d * c).sum();
        held_pred.push(pred);
        held_act.push(ys[k]);
    }
    Some(smape(&held_pred, &held_act))
}

/// Fit one hypothesis (set of terms) and score it.
fn fit_hypothesis(terms: &[&Term], coords: &[Vec<f64>], ys: &[f64]) -> Option<(Model, f64)> {
    let design = design_matrix(terms, coords);
    let cv = loo_cv_smape(&design, ys)?;
    let coef = least_squares(&design, ys)?;
    let model = Model {
        constant: coef[0],
        terms: terms
            .iter()
            .zip(coef.iter().skip(1))
            .map(|(t, &c)| (c, (*t).clone()))
            .collect(),
    };
    Some((model, cv))
}

fn finalize(
    model: Model,
    cv: f64,
    coords: &[Vec<f64>],
    ys: &[f64],
    hypotheses: usize,
) -> FittedModel {
    let pred: Vec<f64> = coords.iter().map(|c| model.eval(c)).collect();
    let design: Vec<Vec<f64>> = coords.iter().map(|_| vec![1.0]).collect();
    let _ = &design;
    let quality = Quality {
        cv_smape: cv,
        smape: smape(&pred, ys),
        r2: r_squared(&pred, ys),
        rss: pred.iter().zip(ys).map(|(p, a)| (p - a) * (p - a)).sum(),
        hypotheses,
    };
    FittedModel { model, quality }
}

/// Complexity of a hypothesis (tie-breaking: prefer simpler models).
fn hypothesis_complexity(model: &Model) -> f64 {
    model.terms.len() as f64 * 10.0 + model.terms.iter().map(|(_, t)| t.complexity()).sum::<f64>()
}

/// Search the best single-parameter model for data `(xs, ys)`, where `xs`
/// are values of parameter `param`.
pub fn fit_single_param(xs: &[f64], ys: &[f64], param: usize, space: &SearchSpace) -> FittedModel {
    let coords: Vec<Vec<f64>> = xs
        .iter()
        .map(|&x| {
            let mut c = vec![1.0; param + 1];
            c[param] = x;
            c
        })
        .collect();
    let mut best: Option<(Model, f64)> = None;
    let mut count = 0usize;

    // Constant hypothesis.
    if let Some((m, cv)) = fit_hypothesis(&[], &coords, ys) {
        best = Some((m, cv));
        count += 1;
    }
    for term in space.single_param_terms(param) {
        count += 1;
        if let Some((m, cv)) = fit_hypothesis(&[&term], &coords, ys) {
            let better = match &best {
                None => true,
                Some((bm, bcv)) => {
                    cv < *bcv - 1e-12
                        || (cv < *bcv + 1e-12
                            && hypothesis_complexity(&m) < hypothesis_complexity(bm))
                }
            };
            if better {
                best = Some((m, cv));
            }
        }
    }
    let (model, cv) = best.unwrap_or((Model::constant(0.0), 0.0));
    finalize(model, cv, &coords, ys, count)
}

/// Ranked single-parameter terms (best CV first) — feeds the
/// multi-parameter heuristic.
fn rank_single_terms(
    xs: &[f64],
    ys: &[f64],
    param: usize,
    space: &SearchSpace,
) -> Vec<(Term, f64)> {
    let coords: Vec<Vec<f64>> = xs
        .iter()
        .map(|&x| {
            let mut c = vec![1.0; param + 1];
            c[param] = x;
            c
        })
        .collect();
    let mut ranked: Vec<(Term, f64)> = Vec::new();
    for term in space.single_param_terms(param) {
        if let Some((_, cv)) = fit_hypothesis(&[&term], &coords, ys) {
            ranked.push((term, cv));
        }
    }
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    ranked.truncate(space.per_param_candidates);
    ranked
}

/// Search the best multi-parameter model over a measurement set.
///
/// `restriction` is the taint-derived prior: `None` reproduces black-box
/// Extra-P; `Some` prunes parameters and term structures (§4.5). The
/// heuristic mirrors Extra-P's fast multi-parameter modeling: best
/// single-parameter sub-models are combined additively and multiplicatively
/// instead of searching the full cross-product space.
pub fn fit_multi_param(
    ms: &MeasurementSet,
    space: &SearchSpace,
    restriction: Option<&Restriction>,
) -> FittedModel {
    let _span = pt_util::trace::span("extrap", "fit");
    let nparams = ms.num_params();
    let coords: Vec<Vec<f64>> = ms.points.iter().map(|p| p.coords.clone()).collect();
    let ys = ms.means();
    if coords.is_empty() {
        return FittedModel {
            model: Model::constant(0.0),
            quality: Quality::default(),
        };
    }

    // Forced-constant shortcut: nothing is allowed to vary.
    if matches!(restriction, Some(r) if r.forbids_everything()) {
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let (model, cv) = fit_hypothesis(&[], &coords, &ys).unwrap_or((Model::constant(mean), 0.0));
        return finalize(model, cv, &coords, &ys, 1);
    }

    let allowed = |mask: u64| -> bool {
        match restriction {
            None => true,
            Some(r) => r.allows_mask(mask),
        }
    };

    // Step 1: best single-parameter terms per allowed parameter.
    let mut per_param: Vec<Vec<Term>> = Vec::with_capacity(nparams);
    for k in 0..nparams {
        if !allowed(1u64 << k) {
            per_param.push(Vec::new());
            continue;
        }
        let slice = ms.slice_along(k);
        if slice.len() < 2 {
            per_param.push(Vec::new());
            continue;
        }
        let xs: Vec<f64> = slice.iter().map(|(x, _)| *x).collect();
        let vals: Vec<f64> = slice.iter().map(|(_, v)| *v).collect();
        per_param.push(
            rank_single_terms(&xs, &vals, k, space)
                .into_iter()
                .map(|(t, _)| t)
                .collect(),
        );
    }

    // Step 2: candidate term pool — singles plus cross-parameter products.
    let mut pool: Vec<Term> = Vec::new();
    for terms in &per_param {
        for t in terms {
            if allowed(t.param_mask()) {
                pool.push(t.clone());
            }
        }
    }
    // Products over every subset of parameters of size ≥ 2.
    let param_ids: Vec<usize> = (0..nparams).filter(|k| !per_param[*k].is_empty()).collect();
    let nsubsets = 1usize << param_ids.len();
    for subset in 1..nsubsets {
        let members: Vec<usize> = param_ids
            .iter()
            .enumerate()
            .filter(|(i, _)| subset >> i & 1 == 1)
            .map(|(_, &k)| k)
            .collect();
        if members.len() < 2 {
            continue;
        }
        let mask = members.iter().fold(0u64, |m, &k| m | 1u64 << k);
        if !allowed(mask) {
            continue;
        }
        // All combinations of one candidate term per member parameter.
        let mut combos: Vec<Term> = vec![Term::default()];
        for &k in &members {
            let mut next = Vec::new();
            for c in &combos {
                for t in &per_param[k] {
                    next.push(c.product(t));
                }
            }
            combos = next;
        }
        pool.extend(combos);
    }
    pool.dedup();

    // Step 3: hypotheses = constant + subsets of the pool of size ≤ max_terms.
    let mut best: Option<(Model, f64)> = None;
    let mut count = 0usize;
    let consider = |m: Model, cv: f64, best: &mut Option<(Model, f64)>| {
        let better = match best {
            None => true,
            Some((bm, bcv)) => {
                cv < *bcv - 1e-12
                    || (cv < *bcv + 1e-12 && hypothesis_complexity(&m) < hypothesis_complexity(bm))
            }
        };
        if better {
            *best = Some((m, cv));
        }
    };
    if let Some((m, cv)) = fit_hypothesis(&[], &coords, &ys) {
        count += 1;
        consider(m, cv, &mut best);
    }
    for (i, t1) in pool.iter().enumerate() {
        count += 1;
        if let Some((m, cv)) = fit_hypothesis(&[t1], &coords, &ys) {
            consider(m, cv, &mut best);
        }
        if space.max_terms >= 2 {
            for t2 in pool.iter().skip(i + 1) {
                count += 1;
                if let Some((m, cv)) = fit_hypothesis(&[t1, t2], &coords, &ys) {
                    consider(m, cv, &mut best);
                }
            }
        }
    }
    let (model, cv) = best.unwrap_or((Model::constant(0.0), 0.0));
    finalize(model, cv, &coords, &ys, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set1(xs: &[f64], f: impl Fn(f64) -> f64) -> (Vec<f64>, Vec<f64>) {
        (xs.to_vec(), xs.iter().map(|&x| f(x)).collect())
    }

    #[test]
    fn recovers_quadratic() {
        let (xs, ys) = set1(&[4.0, 8.0, 16.0, 32.0, 64.0], |x| 3.0 + 0.5 * x * x);
        let fit = fit_single_param(&xs, &ys, 0, &SearchSpace::default());
        assert!(fit.quality.smape < 1.0, "smape={}", fit.quality.smape);
        let m = &fit.model;
        assert!(m.uses_param(0));
        // The chosen exponent must be exactly 2 with no log factor.
        assert_eq!(m.terms.len(), 1);
        assert!((m.terms[0].1.factors[0].exp - 2.0).abs() < 1e-9);
        assert_eq!(m.terms[0].1.factors[0].log_exp, 0);
        assert!((m.terms[0].0 - 0.5).abs() < 0.01);
        assert!((m.constant - 3.0).abs() < 0.5);
    }

    #[test]
    fn recovers_log_model() {
        let (xs, ys) = set1(&[4.0, 8.0, 16.0, 32.0, 64.0], |x| 10.0 + 2.0 * x.log2());
        let fit = fit_single_param(&xs, &ys, 0, &SearchSpace::default());
        assert!(fit.quality.smape < 0.5);
        assert_eq!(fit.model.terms.len(), 1);
        let t = &fit.model.terms[0].1.factors[0];
        assert_eq!((t.exp, t.log_exp), (0.0, 1));
    }

    #[test]
    fn recovers_n_log_n() {
        let (xs, ys) = set1(&[8.0, 16.0, 32.0, 64.0, 128.0], |x| 1e-3 * x * x.log2());
        let fit = fit_single_param(&xs, &ys, 0, &SearchSpace::default());
        assert!(fit.quality.smape < 0.5, "smape={}", fit.quality.smape);
        let t = &fit.model.terms[0].1.factors[0];
        assert_eq!((t.exp, t.log_exp), (1.0, 1));
    }

    #[test]
    fn constant_data_gives_constant_model() {
        let (xs, ys) = set1(&[4.0, 8.0, 16.0, 32.0, 64.0], |_| 7.5);
        let fit = fit_single_param(&xs, &ys, 0, &SearchSpace::default());
        assert!(fit.model.is_constant(), "model: {}", fit.model);
        assert!((fit.model.constant - 7.5).abs() < 1e-9);
    }

    #[test]
    fn sqrt_exponent_found() {
        let (xs, ys) = set1(&[4.0, 16.0, 64.0, 256.0, 1024.0], |x| 2.0 * x.sqrt());
        let fit = fit_single_param(&xs, &ys, 0, &SearchSpace::default());
        let t = &fit.model.terms[0].1.factors[0];
        assert!((t.exp - 0.5).abs() < 1e-9);
    }

    fn grid2(xs: &[f64], ys: &[f64], f: impl Fn(f64, f64) -> f64) -> MeasurementSet {
        let mut s = MeasurementSet::new(vec!["p".into(), "size".into()]);
        for &x in xs {
            for &y in ys {
                s.push(vec![x, y], vec![f(x, y)]);
            }
        }
        s
    }

    #[test]
    fn multi_param_additive_recovered() {
        let ms = grid2(
            &[4.0, 8.0, 16.0, 32.0, 64.0],
            &[25.0, 30.0, 35.0, 40.0, 45.0],
            |p, s| 1.0 + 0.1 * p + 1e-4 * s * s * s,
        );
        let fit = fit_multi_param(&ms, &SearchSpace::default(), None);
        assert!(fit.quality.smape < 2.0, "smape={}", fit.quality.smape);
        assert!(fit.model.uses_param(0));
        assert!(fit.model.uses_param(1));
        assert!(!fit.model.has_multiplicative_term(), "model: {}", fit.model);
    }

    #[test]
    fn multi_param_multiplicative_recovered() {
        // The paper's CalcQForElems ground truth: c · p^0.25 · size^3 (§B2).
        let ms = grid2(
            &[4.0, 8.0, 16.0, 32.0, 64.0],
            &[25.0, 30.0, 35.0, 40.0, 45.0],
            |p, s| 2.4e-8 * p.powf(0.25) * s * s * s,
        );
        let fit = fit_multi_param(&ms, &SearchSpace::default(), None);
        assert!(fit.quality.smape < 2.0, "smape={}", fit.quality.smape);
        assert!(fit.model.has_multiplicative_term(), "model: {}", fit.model);
    }

    #[test]
    fn restriction_forces_constant() {
        let ms = grid2(&[4.0, 8.0, 16.0], &[1.0, 2.0, 3.0], |p, _| 5.0 + 0.01 * p);
        let fit = fit_multi_param(&ms, &SearchSpace::default(), Some(&Restriction::constant()));
        assert!(fit.model.is_constant());
    }

    #[test]
    fn restriction_prunes_parameter() {
        // Data has a slight correlation with p by construction (noise), but
        // the restriction only allows size.
        let ms = grid2(
            &[4.0, 8.0, 16.0, 32.0, 64.0],
            &[25.0, 30.0, 35.0, 40.0, 45.0],
            |p, s| 1e-4 * s * s + 1e-6 * p,
        );
        let r = Restriction::from_monomials(vec![0b10]); // size only
        let fit = fit_multi_param(&ms, &SearchSpace::default(), Some(&r));
        assert!(!fit.model.uses_param(0), "p pruned: {}", fit.model);
        assert!(fit.model.uses_param(1));
    }

    #[test]
    fn restriction_forbids_cross_terms() {
        // Truly multiplicative data, but the taint says additive-only:
        // the model must not contain a p·size term.
        let ms = grid2(
            &[4.0, 8.0, 16.0, 32.0],
            &[16.0, 32.0, 64.0, 128.0],
            |p, s| 1e-3 * p * s,
        );
        let r = Restriction::from_monomials(vec![0b01, 0b10]);
        let fit = fit_multi_param(&ms, &SearchSpace::default(), Some(&r));
        assert!(!fit.model.has_multiplicative_term(), "model: {}", fit.model);
    }

    #[test]
    fn quality_reports_hypothesis_count() {
        let (xs, ys) = set1(&[4.0, 8.0, 16.0, 32.0], |x| x);
        let fit = fit_single_param(&xs, &ys, 0, &SearchSpace::small());
        assert!(fit.quality.hypotheses > 10);
        assert!(fit.quality.r2 > 0.99);
    }
}
