//! Segmented single-parameter modeling — the remedy for the §C2 situation.
//!
//! When tainted-branch coverage shows a qualitative behavior change inside
//! the modeling domain (e.g. MILC's gather switching algorithm at p ≈ 8),
//! one PMNF cannot represent the data; the paper points to segmented
//! modeling (Ilyas, Calotoiu & Wolf, Euro-Par'17) as the remedy. This
//! module fits a two-segment model: it searches every admissible split
//! point, fits each side independently, and keeps the split only when it
//! beats the single model by a meaningful margin.

use crate::search::{fit_single_param, FittedModel, SearchSpace};
use serde::{Deserialize, Serialize};

/// A single- or two-segment model over one parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SegmentedModel {
    /// One PMNF model covers the whole domain.
    Single(FittedModel),
    /// Two regimes meeting between `boundary.0` and `boundary.1`.
    Split {
        /// Last x of the left regime and first x of the right regime.
        boundary: (f64, f64),
        left: FittedModel,
        right: FittedModel,
    },
}

impl SegmentedModel {
    /// Evaluate at `x` (the boundary midpoint assigns sides).
    pub fn eval(&self, x: f64) -> f64 {
        match self {
            SegmentedModel::Single(m) => m.model.eval(&[x]),
            SegmentedModel::Split {
                boundary,
                left,
                right,
            } => {
                if x <= (boundary.0 + boundary.1) / 2.0 {
                    left.model.eval(&[x])
                } else {
                    right.model.eval(&[x])
                }
            }
        }
    }

    pub fn is_split(&self) -> bool {
        matches!(self, SegmentedModel::Split { .. })
    }

    /// The worse of the segment SMAPEs (or the single model's SMAPE).
    pub fn worst_smape(&self) -> f64 {
        match self {
            SegmentedModel::Single(m) => m.quality.smape,
            SegmentedModel::Split { left, right, .. } => {
                left.quality.smape.max(right.quality.smape)
            }
        }
    }

    pub fn render(&self, name: &str) -> String {
        let names = vec![name.to_string()];
        match self {
            SegmentedModel::Single(m) => m.model.render(&names),
            SegmentedModel::Split {
                boundary,
                left,
                right,
            } => format!(
                "{name}≤{}: {}   |   {name}≥{}: {}",
                boundary.0,
                left.model.render(&names),
                boundary.1,
                right.model.render(&names)
            ),
        }
    }
}

/// Fit a segmented model. `min_points` is the minimum sweep points per
/// segment (≥ 3 so each side can still cross-validate); `improvement`
/// is the factor by which the split's SMAPE must beat the single model's
/// (e.g. 0.5 = half the error) to be accepted.
pub fn fit_segmented(
    xs: &[f64],
    ys: &[f64],
    param: usize,
    space: &SearchSpace,
    min_points: usize,
    improvement: f64,
) -> SegmentedModel {
    assert_eq!(xs.len(), ys.len());
    let min_points = min_points.max(2);
    let single = fit_single_param(xs, ys, param, space);
    let n = xs.len();
    if n < 2 * min_points {
        return SegmentedModel::Single(single);
    }

    // Points must be sorted by x for contiguous segments.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let sx: Vec<f64> = order.iter().map(|&i| xs[i]).collect();
    let sy: Vec<f64> = order.iter().map(|&i| ys[i]).collect();

    let mut best: Option<(usize, FittedModel, FittedModel, f64)> = None;
    for split in min_points..=(n - min_points) {
        let left = fit_single_param(&sx[..split], &sy[..split], param, space);
        let right = fit_single_param(&sx[split..], &sy[split..], param, space);
        let score = left.quality.smape.max(right.quality.smape);
        if best.as_ref().is_none_or(|(_, _, _, s)| score < *s) {
            best = Some((split, left, right, score));
        }
    }
    match best {
        Some((split, left, right, score)) if score < single.quality.smape * improvement => {
            SegmentedModel::Split {
                boundary: (sx[split - 1], sx[split]),
                left,
                right,
            }
        }
        _ => SegmentedModel::Single(single),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piecewise_data_is_split_at_the_right_boundary() {
        // The paper's §C2 sketch: f(a) = a for a < 4, log2(a) for a ≥ 8.
        let xs: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x <= 4.0 { 10.0 * x } else { 3.0 * x.log2() })
            .collect();
        let m = fit_segmented(&xs, &ys, 0, &SearchSpace::default(), 3, 0.8);
        assert!(m.is_split(), "piecewise data must split: {}", m.render("a"));
        if let SegmentedModel::Split { boundary, .. } = &m {
            assert!(
                boundary.0 <= 8.0 && boundary.1 >= 4.0,
                "boundary {boundary:?} must bracket the regime change"
            );
        }
        // Each side predicts its regime well.
        assert!((m.eval(2.0) - 20.0).abs() / 20.0 < 0.2);
        assert!((m.eval(128.0) - 21.0).abs() / 21.0 < 0.2);
        assert!(m.worst_smape() < 10.0);
    }

    #[test]
    fn smooth_data_stays_single() {
        let xs: Vec<f64> = vec![4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 + 0.5 * x).collect();
        let m = fit_segmented(&xs, &ys, 0, &SearchSpace::default(), 3, 0.5);
        assert!(
            !m.is_split(),
            "smooth data must not split: {}",
            m.render("x")
        );
    }

    #[test]
    fn too_few_points_stays_single() {
        let xs = vec![2.0, 4.0, 8.0, 16.0];
        let ys = vec![1.0, 100.0, 2.0, 3.0];
        let m = fit_segmented(&xs, &ys, 0, &SearchSpace::small(), 3, 0.5);
        assert!(!m.is_split());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let xs: Vec<f64> = vec![256.0, 2.0, 64.0, 4.0, 16.0, 1.0, 8.0, 128.0, 3.0, 32.0];
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x <= 4.0 { 10.0 * x } else { 3.0 * x.log2() })
            .collect();
        let m = fit_segmented(&xs, &ys, 0, &SearchSpace::default(), 3, 0.8);
        assert!(m.is_split(), "{}", m.render("a"));
    }

    #[test]
    fn rendering_shows_both_regimes() {
        let xs: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 8.0, 16.0, 32.0, 64.0];
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x <= 4.0 { x } else { x.log2() })
            .collect();
        let m = fit_segmented(&xs, &ys, 0, &SearchSpace::default(), 3, 0.9);
        let s = m.render("p");
        if m.is_split() {
            assert!(s.contains("p≤") && s.contains("p≥"), "{s}");
        }
    }
}
