//! Measurement containers: coordinates, repetitions, means, and the
//! coefficient-of-variation filter (§B1 of the paper: functions whose data
//! has CV > 0.1 are considered too noisy to model reliably).

use serde::{Deserialize, Serialize};

/// Repeated measurements at one parameter coordinate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurePoint {
    /// Parameter values, indexed consistently with
    /// [`MeasurementSet::param_names`].
    pub coords: Vec<f64>,
    /// Repetition values (e.g. seconds of exclusive time).
    pub reps: Vec<f64>,
}

impl MeasurePoint {
    pub fn mean(&self) -> f64 {
        if self.reps.is_empty() {
            return 0.0;
        }
        self.reps.iter().sum::<f64>() / self.reps.len() as f64
    }

    pub fn std_dev(&self) -> f64 {
        let n = self.reps.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .reps
            .iter()
            .map(|r| (r - mean) * (r - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Coefficient of variation (σ/µ); 0 for a zero mean.
    pub fn cv(&self) -> f64 {
        let mean = self.mean();
        if mean.abs() < 1e-300 {
            0.0
        } else {
            self.std_dev() / mean.abs()
        }
    }
}

/// A set of measurements of one quantity (one function's exclusive time,
/// say) across a parameter sweep.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MeasurementSet {
    pub param_names: Vec<String>,
    pub points: Vec<MeasurePoint>,
}

impl MeasurementSet {
    pub fn new(param_names: Vec<String>) -> MeasurementSet {
        MeasurementSet {
            param_names,
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, coords: Vec<f64>, reps: Vec<f64>) {
        debug_assert_eq!(coords.len(), self.param_names.len());
        // Merge repetitions into an existing point at the same coordinate.
        if let Some(p) = self.points.iter_mut().find(|p| p.coords == coords) {
            p.reps.extend(reps);
        } else {
            self.points.push(MeasurePoint { coords, reps });
        }
    }

    pub fn num_params(&self) -> usize {
        self.param_names.len()
    }

    /// Mean value per point, in point order.
    pub fn means(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.mean()).collect()
    }

    /// The largest CV across points — the §B1 reliability gate.
    pub fn max_cv(&self) -> f64 {
        self.points.iter().map(|p| p.cv()).fold(0.0, f64::max)
    }

    /// Whether the set passes the CV ≤ threshold filter (paper uses 0.1).
    pub fn is_reliable(&self, threshold: f64) -> bool {
        self.max_cv() <= threshold
    }

    /// Distinct sorted values of parameter `k` across points.
    pub fn values_of(&self, k: usize) -> Vec<f64> {
        let mut vals: Vec<f64> = self.points.iter().map(|p| p.coords[k]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        vals
    }

    /// The single-parameter slice used by the multi-parameter heuristic:
    /// points where every parameter except `k` sits at its minimum value.
    /// Returns `(x_k, mean)` pairs sorted by `x_k`.
    pub fn slice_along(&self, k: usize) -> Vec<(f64, f64)> {
        let mins: Vec<f64> = (0..self.num_params())
            .map(|j| {
                self.points
                    .iter()
                    .map(|p| p.coords[j])
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let mut out: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|p| {
                p.coords
                    .iter()
                    .enumerate()
                    .all(|(j, &v)| j == k || (v - mins[j]).abs() < 1e-9)
            })
            .map(|p| (p.coords[k], p.mean()))
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// Total number of individual measurements (points × repetitions).
    pub fn total_measurements(&self) -> usize {
        self.points.iter().map(|p| p.reps.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_statistics() {
        let p = MeasurePoint {
            coords: vec![1.0],
            reps: vec![10.0, 12.0, 8.0],
        };
        assert!((p.mean() - 10.0).abs() < 1e-12);
        assert!((p.std_dev() - 2.0).abs() < 1e-12);
        assert!((p.cv() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn push_merges_same_coordinate() {
        let mut s = MeasurementSet::new(vec!["p".into()]);
        s.push(vec![4.0], vec![1.0]);
        s.push(vec![4.0], vec![3.0]);
        s.push(vec![8.0], vec![2.0]);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].reps.len(), 2);
        assert_eq!(s.total_measurements(), 3);
    }

    #[test]
    fn reliability_filter() {
        let mut s = MeasurementSet::new(vec!["p".into()]);
        s.push(vec![1.0], vec![10.0, 10.1, 9.9]);
        assert!(s.is_reliable(0.1));
        s.push(vec![2.0], vec![1.0, 3.0]); // wild noise
        assert!(!s.is_reliable(0.1));
    }

    #[test]
    fn slice_isolates_one_parameter() {
        // Grid {1,2} x {10,20}, value = x + 100*y.
        let mut s = MeasurementSet::new(vec!["x".into(), "y".into()]);
        for &x in &[1.0, 2.0] {
            for &y in &[10.0, 20.0] {
                s.push(vec![x, y], vec![x + 100.0 * y]);
            }
        }
        let sx = s.slice_along(0);
        assert_eq!(sx, vec![(1.0, 1001.0), (2.0, 1002.0)]);
        let sy = s.slice_along(1);
        assert_eq!(sy, vec![(10.0, 1001.0), (20.0, 2001.0)]);
        assert_eq!(s.values_of(0), vec![1.0, 2.0]);
    }
}
