//! Minimal dense linear algebra: ordinary least squares via normal
//! equations and Gaussian elimination with partial pivoting.
//!
//! PMNF hypotheses are linear in their coefficients (the nonlinearity lives
//! in the fixed exponents), so fitting a hypothesis is a tiny OLS problem —
//! at most `1 + n_terms ≤ 3` unknowns in the paper's configuration (§4.5).

// In-place elimination and symmetric fill-in read clearest with explicit
// indices.
#![allow(clippy::needless_range_loop)]

/// Solve `A x = b` in place for a small dense system. Returns `None` when
/// the matrix is (numerically) singular.
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    debug_assert!(a.len() == n && a.iter().all(|r| r.len() == n));
    for col in 0..n {
        // Partial pivoting.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        let d = a[col][col];
        for row in 0..n {
            if row == col {
                continue;
            }
            let f = a[row][col] / d;
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    Some((0..n).map(|i| b[i] / a[i][i]).collect())
}

/// Ordinary least squares: find `c` minimizing `‖D c − y‖²` where `D` is the
/// design matrix (rows = observations). Returns `None` if the normal
/// equations are singular (e.g. collinear columns).
pub fn least_squares(design: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    let rows = design.len();
    if rows == 0 {
        return None;
    }
    let cols = design[0].len();
    if rows < cols {
        return None;
    }
    // Normal equations: (Dᵀ D) c = Dᵀ y.
    let mut ata = vec![vec![0.0; cols]; cols];
    let mut atb = vec![0.0; cols];
    for (r, row) in design.iter().enumerate() {
        debug_assert_eq!(row.len(), cols);
        for i in 0..cols {
            atb[i] += row[i] * y[r];
            for j in i..cols {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..cols {
        for j in 0..i {
            ata[i][j] = ata[j][i];
        }
    }
    // Tikhonov nudge for near-singular systems keeps the search robust when
    // two candidate terms are nearly collinear on the sampled grid.
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += 1e-12;
    }
    solve(ata, atb)
}

/// Residual sum of squares of a fitted linear model.
pub fn rss(design: &[Vec<f64>], y: &[f64], coef: &[f64]) -> f64 {
    design
        .iter()
        .zip(y)
        .map(|(row, &yi)| {
            let pred: f64 = row.iter().zip(coef).map(|(d, c)| d * c).sum();
            (pred - yi) * (pred - yi)
        })
        .sum()
}

/// Symmetric mean absolute percentage error (in percent), the robust score
/// Extra-P uses for model selection across magnitudes.
pub fn smape(pred: &[f64], actual: &[f64]) -> f64 {
    debug_assert_eq!(pred.len(), actual.len());
    if pred.is_empty() {
        return 0.0;
    }
    let total: f64 = pred
        .iter()
        .zip(actual)
        .map(|(&p, &a)| {
            let denom = p.abs() + a.abs();
            if denom < 1e-300 {
                0.0
            } else {
                2.0 * (p - a).abs() / denom
            }
        })
        .sum();
    100.0 * total / pred.len() as f64
}

/// Coefficient of determination R².
pub fn r_squared(pred: &[f64], actual: &[f64]) -> f64 {
    let n = actual.len() as f64;
    if actual.is_empty() {
        return 1.0;
    }
    let mean = actual.iter().sum::<f64>() / n;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = pred
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum();
    if ss_tot < 1e-300 {
        if ss_res < 1e-300 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, 4.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solve_general_3x3() {
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let x = solve(a, vec![8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn ols_recovers_exact_line() {
        // y = 3 + 2x sampled exactly.
        let design: Vec<Vec<f64>> = (1..=5).map(|x| vec![1.0, x as f64]).collect();
        let y: Vec<f64> = (1..=5).map(|x| 3.0 + 2.0 * x as f64).collect();
        let c = least_squares(&design, &y).unwrap();
        assert!((c[0] - 3.0).abs() < 1e-6);
        assert!((c[1] - 2.0).abs() < 1e-6);
        assert!(rss(&design, &y, &c) < 1e-9);
    }

    #[test]
    fn ols_minimizes_noisy_fit() {
        let design: Vec<Vec<f64>> = (1..=10).map(|x| vec![1.0, x as f64]).collect();
        let y: Vec<f64> = (1..=10)
            .map(|x| 1.0 + 0.5 * x as f64 + if x % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let c = least_squares(&design, &y).unwrap();
        // Perturbing the coefficients must not reduce the RSS.
        let base = rss(&design, &y, &c);
        for delta in [-0.05, 0.05] {
            let worse = rss(&design, &y, &[c[0] + delta, c[1]]);
            assert!(worse >= base - 1e-12);
            let worse = rss(&design, &y, &[c[0], c[1] + delta]);
            assert!(worse >= base - 1e-12);
        }
    }

    #[test]
    fn smape_basics() {
        assert_eq!(smape(&[], &[]), 0.0);
        assert!((smape(&[1.0], &[1.0])).abs() < 1e-12);
        // 100% off: |2-1|*2/(3) = 2/3 -> ~66.7%
        assert!((smape(&[2.0], &[1.0]) - 200.0 / 3.0).abs() < 1e-9);
        // Symmetric.
        assert!((smape(&[1.0], &[2.0]) - smape(&[2.0], &[1.0])).abs() < 1e-12);
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let actual = vec![1.0, 2.0, 3.0];
        assert!((r_squared(&actual, &actual) - 1.0).abs() < 1e-12);
        let mean = vec![2.0, 2.0, 2.0];
        assert!(r_squared(&mean, &actual).abs() < 1e-12);
    }
}
