//! Call graph, SCCs (recursion detection), and topological ordering.

use pt_ir::{FunctionId, Module};

/// The static call graph of a module (direct internal calls only; external
/// symbols are not nodes — they are handled by the library database, §5.3).
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Adjacency: callees per function.
    pub callees: Vec<Vec<FunctionId>>,
    /// Reverse adjacency: callers per function.
    pub callers: Vec<Vec<FunctionId>>,
    /// SCC index per function (Tarjan); SCC indices are in reverse
    /// topological order (callees' SCCs have *lower* indices than callers').
    pub scc_of: Vec<usize>,
    /// Members of each SCC.
    pub sccs: Vec<Vec<FunctionId>>,
}

impl CallGraph {
    pub fn build(module: &Module) -> CallGraph {
        let n = module.functions.len();
        let mut callees = vec![Vec::new(); n];
        let mut callers = vec![Vec::new(); n];
        for f in module.function_ids() {
            for c in module.callees(f) {
                callees[f.index()].push(c);
                callers[c.index()].push(f);
            }
        }
        let (scc_of, sccs) = tarjan(n, &callees);
        CallGraph {
            callees,
            callers,
            scc_of,
            sccs,
        }
    }

    /// Whether `f` participates in recursion (its SCC has >1 member, or it
    /// calls itself directly).
    pub fn is_recursive(&self, f: FunctionId) -> bool {
        let scc = self.scc_of[f.index()];
        self.sccs[scc].len() > 1 || self.callees[f.index()].contains(&f)
    }

    /// Any recursive function in the module? (The paper warns on recursion —
    /// the volume composition of §4.2 requires its absence.)
    pub fn has_recursion(&self) -> bool {
        (0..self.callees.len()).any(|i| self.is_recursive(FunctionId(i as u32)))
    }

    /// Functions in bottom-up order: every function appears after all of its
    /// callees (valid only when there is no recursion across SCCs — within an
    /// SCC the order is arbitrary).
    pub fn bottom_up_order(&self) -> Vec<FunctionId> {
        // Tarjan emits SCCs in reverse topological order of the condensation
        // (callees first), so concatenating SCC members in SCC order works.
        let mut out = Vec::with_capacity(self.callees.len());
        for scc in &self.sccs {
            out.extend_from_slice(scc);
        }
        out
    }

    /// Functions reachable from `roots` (inclusive).
    pub fn reachable_from(&self, roots: &[FunctionId]) -> Vec<FunctionId> {
        let n = self.callees.len();
        let mut seen = vec![false; n];
        let mut stack: Vec<FunctionId> = roots.to_vec();
        let mut out = Vec::new();
        while let Some(f) = stack.pop() {
            if seen[f.index()] {
                continue;
            }
            seen[f.index()] = true;
            out.push(f);
            for &c in &self.callees[f.index()] {
                if !seen[c.index()] {
                    stack.push(c);
                }
            }
        }
        out
    }
}

/// Iterative Tarjan SCC. Returns (scc index per node, SCC member lists);
/// SCC indices are assigned in completion order, which is reverse
/// topological order of the condensation.
fn tarjan(n: usize, adj: &[Vec<FunctionId>]) -> (Vec<usize>, Vec<Vec<FunctionId>>) {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![0usize; n];
    let mut sccs: Vec<Vec<FunctionId>> = Vec::new();
    let mut counter = 0usize;

    // Explicit DFS stack: (node, child cursor).
    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
        index[start] = counter;
        lowlink[start] = counter;
        counter += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
            if *cursor < adj[v].len() {
                let w = adj[v][*cursor].index();
                *cursor += 1;
                if index[w] == UNVISITED {
                    index[w] = counter;
                    lowlink[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_of[w] = sccs.len();
                        members.push(FunctionId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    members.reverse();
                    sccs.push(members);
                }
            }
        }
    }
    (scc_of, sccs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{FunctionBuilder, Type};

    fn leaf(name: &str) -> pt_ir::Function {
        let mut b = FunctionBuilder::new(name, vec![], Type::Void);
        b.ret(None);
        b.finish()
    }

    fn caller(name: &str, callees: &[FunctionId]) -> pt_ir::Function {
        let mut b = FunctionBuilder::new(name, vec![], Type::Void);
        for &c in callees {
            b.call(c, vec![], Type::Void);
        }
        b.ret(None);
        b.finish()
    }

    #[test]
    fn chain_bottom_up() {
        let mut m = Module::new("m");
        let a = m.add_function(leaf("a"));
        let b = m.add_function(caller("b", &[a]));
        let c = m.add_function(caller("c", &[b]));
        let cg = CallGraph::build(&m);
        assert!(!cg.has_recursion());
        let order = cg.bottom_up_order();
        let pos = |f: FunctionId| order.iter().position(|&x| x == f).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn mutual_recursion_detected() {
        let mut m = Module::new("m");
        // Build placeholders first so ids exist, then rebuild with calls.
        let a_id = FunctionId(0);
        let b_id = FunctionId(1);
        m.add_function(caller("a", &[b_id]));
        m.add_function(caller("b", &[a_id]));
        let cg = CallGraph::build(&m);
        assert!(cg.has_recursion());
        assert!(cg.is_recursive(a_id));
        assert!(cg.is_recursive(b_id));
        assert_eq!(cg.scc_of[0], cg.scc_of[1]);
    }

    #[test]
    fn self_recursion_detected() {
        let mut m = Module::new("m");
        let a_id = FunctionId(0);
        m.add_function(caller("a", &[a_id]));
        let cg = CallGraph::build(&m);
        assert!(cg.is_recursive(a_id));
    }

    #[test]
    fn diamond_call_graph() {
        let mut m = Module::new("m");
        let d = m.add_function(leaf("d"));
        let b = m.add_function(caller("b", &[d]));
        let c = m.add_function(caller("c", &[d]));
        let a = m.add_function(caller("a", &[b, c]));
        let cg = CallGraph::build(&m);
        assert!(!cg.has_recursion());
        assert_eq!(cg.callers[d.index()].len(), 2);
        let order = cg.bottom_up_order();
        let pos = |f: FunctionId| order.iter().position(|&x| x == f).unwrap();
        assert!(pos(d) < pos(b));
        assert!(pos(d) < pos(c));
        assert!(pos(b) < pos(a));
        assert!(pos(c) < pos(a));
        let reach = cg.reachable_from(&[b]);
        assert_eq!(reach.len(), 2);
    }
}
