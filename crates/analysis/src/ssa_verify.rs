//! Semantic SSA verification: definitions dominate uses.
//!
//! Complements the structural checks in `pt_ir::verify`. For a normal use in
//! block `B` at position `i`, the defining instruction must either be in a
//! strictly dominating block, or earlier in `B`. For a phi incoming value
//! `(P, v)`, the definition of `v` must dominate the *end* of predecessor
//! `P`.

use crate::dom::DomTree;
use pt_ir::{BlockId, Function, InstId, InstKind, Terminator, Value};

/// An SSA dominance violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsaViolation {
    pub func: String,
    pub inst: Option<InstId>,
    pub message: String,
}

/// Check that all uses are dominated by their definitions.
pub fn verify_ssa(func: &Function) -> Result<(), Vec<SsaViolation>> {
    let dt = DomTree::dominators(func);
    // Position of each instruction within its block.
    let mut pos_in_block = vec![usize::MAX; func.insts.len()];
    for bid in func.block_ids() {
        for (i, &iid) in func.block(bid).insts.iter().enumerate() {
            pos_in_block[iid.index()] = i;
        }
    }
    let mut violations = Vec::new();

    let check_use = |def: InstId,
                     use_block: BlockId,
                     use_pos: usize,
                     user: Option<InstId>,
                     violations: &mut Vec<SsaViolation>| {
        let def_block = func.inst(def).block;
        let ok = if def_block == use_block {
            pos_in_block[def.index()] < use_pos
        } else {
            dt.dominates(def_block, use_block)
        };
        if !ok {
            violations.push(SsaViolation {
                func: func.name.clone(),
                inst: user,
                message: format!(
                    "use of %{} in {use_block} not dominated by its definition in {def_block}",
                    def.0
                ),
            });
        }
    };

    for bid in func.block_ids() {
        if !dt.is_reachable(bid) {
            continue; // dead code is structurally checked only
        }
        let block = func.block(bid);
        for (i, &iid) in block.insts.iter().enumerate() {
            let inst = func.inst(iid);
            if let InstKind::Phi { incomings, .. } = &inst.kind {
                for (pred, v) in incomings {
                    if let Value::Inst(def) = v {
                        // Must dominate the end of the predecessor: position
                        // beyond any instruction index in that block.
                        check_use(*def, *pred, usize::MAX, Some(iid), &mut violations);
                    }
                }
            } else {
                inst.for_each_operand(|v| {
                    if let Value::Inst(def) = v {
                        check_use(def, bid, i, Some(iid), &mut violations);
                    }
                });
            }
        }
        if let Some(term) = &block.term {
            let use_pos = block.insts.len();
            match term {
                Terminator::CondBr {
                    cond: Value::Inst(def),
                    ..
                } => {
                    check_use(*def, bid, use_pos, None, &mut violations);
                }
                Terminator::Ret(Some(Value::Inst(def))) => {
                    check_use(*def, bid, use_pos, None, &mut violations);
                }
                _ => {}
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{BinOp, CmpPred, FunctionBuilder, Inst, Type, Value};

    #[test]
    fn builder_loops_are_ssa_clean() {
        let mut b = FunctionBuilder::new("l", vec![("n".into(), Type::I64)], Type::I64);
        let acc = b.alloca(1i64);
        b.store(acc, Value::int(0));
        b.for_loop(0i64, b.param(0), 1i64, |b, iv| {
            let cur = b.load(acc, Type::I64);
            let nxt = b.add(cur, iv);
            b.store(acc, nxt);
        });
        let out = b.load(acc, Type::I64);
        b.ret(Some(out));
        assert!(verify_ssa(&b.finish()).is_ok());
    }

    #[test]
    fn sibling_branch_use_rejected() {
        // Value defined in the then-branch used in the else-branch.
        let mut b = FunctionBuilder::new("bad", vec![("a".into(), Type::I64)], Type::I64);
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        let c = b.cmp(CmpPred::Lt, b.param(0), 0i64);
        b.cond_br(c, then_bb, else_bb);
        b.switch_to(then_bb);
        let x = b.add(b.param(0), 1i64);
        b.ret(Some(x));
        b.switch_to(else_bb);
        let y = b.add(x, 1i64); // uses value from a non-dominating block
        b.ret(Some(y));
        let f = b.finish_unchecked();
        assert!(pt_ir::verify_function(&f).is_ok(), "structurally fine");
        assert!(verify_ssa(&f).is_err(), "semantically broken");
    }

    #[test]
    fn use_before_def_in_same_block_rejected() {
        let mut b = FunctionBuilder::new("bad", vec![], Type::Void);
        b.ret(None);
        let mut f = b.finish_unchecked();
        // %0 = add %1, 1 ; %1 = add 0, 0  (reverse order)
        f.insts.push(Inst {
            kind: pt_ir::InstKind::Bin {
                op: BinOp::Add,
                lhs: Value::Inst(pt_ir::InstId(1)),
                rhs: Value::int(1),
            },
            block: pt_ir::BlockId(0),
        });
        f.insts.push(Inst {
            kind: pt_ir::InstKind::Bin {
                op: BinOp::Add,
                lhs: Value::int(0),
                rhs: Value::int(0),
            },
            block: pt_ir::BlockId(0),
        });
        f.blocks[0].insts = vec![pt_ir::InstId(0), pt_ir::InstId(1)];
        assert!(verify_ssa(&f).is_err());
    }

    #[test]
    fn phi_incoming_checked_against_pred_end() {
        // Loop phi referencing the increment defined in the latch is valid.
        let mut b = FunctionBuilder::new("l", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |_, _| {});
        b.ret(None);
        assert!(verify_ssa(&b.finish()).is_ok());
    }
}
