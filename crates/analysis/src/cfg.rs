//! Control-flow-graph orderings and reachability.

use pt_ir::{BlockId, Function};

/// Blocks reachable from the entry, in depth-first preorder.
pub fn reachable_blocks(func: &Function) -> Vec<BlockId> {
    let n = func.blocks.len();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![func.entry];
    while let Some(b) = stack.pop() {
        if seen[b.index()] {
            continue;
        }
        seen[b.index()] = true;
        order.push(b);
        for s in func.successors(b) {
            if !seen[s.index()] {
                stack.push(s);
            }
        }
    }
    order
}

/// Reverse postorder of the reachable blocks (the iteration order used by
/// the dominator computation).
pub fn reverse_postorder(func: &Function) -> Vec<BlockId> {
    let n = func.blocks.len();
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with explicit successor cursors to obtain postorder.
    let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
    state[func.entry.index()] = 1;
    while let Some((b, cursor)) = stack.pop() {
        let succs = func.successors(b);
        if cursor < succs.len() {
            stack.push((b, cursor + 1));
            let s = succs[cursor];
            if state[s.index()] == 0 {
                state[s.index()] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b.index()] = 2;
            post.push(b);
        }
    }
    post.reverse();
    post
}

/// A mapping from block to its position in reverse postorder (`usize::MAX`
/// for unreachable blocks).
pub fn rpo_positions(func: &Function, rpo: &[BlockId]) -> Vec<usize> {
    let mut pos = vec![usize::MAX; func.blocks.len()];
    for (i, b) in rpo.iter().enumerate() {
        pos[b.index()] = i;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{CmpPred, FunctionBuilder, Type, Value};

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", vec![("a".into(), Type::I64)], Type::Void);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.cmp(CmpPred::Lt, b.param(0), Value::int(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn rpo_entry_first_join_last() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo[3], BlockId(3));
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let mut b = FunctionBuilder::new("u", vec![], Type::Void);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        assert_eq!(reachable_blocks(&f).len(), 1);
        assert_eq!(reverse_postorder(&f).len(), 1);
        let rpo = reverse_postorder(&f);
        let pos = rpo_positions(&f, &rpo);
        assert_eq!(pos[dead.index()], usize::MAX);
    }

    #[test]
    fn rpo_respects_loop_order() {
        let mut b = FunctionBuilder::new("l", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |_, _| {});
        b.ret(None);
        let f = b.finish();
        let rpo = reverse_postorder(&f);
        let pos = rpo_positions(&f, &rpo);
        // header (bb1) precedes body (bb2); body precedes nothing else wrong.
        assert!(pos[1] < pos[2]);
        assert!(pos[0] < pos[1]);
    }
}
