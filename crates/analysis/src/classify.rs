//! Static function classification (§5.1 of the paper).
//!
//! At compile time Perf-Taint identifies all functions whose performance
//! model is *known* to be independent of any program parameter: functions
//! that contain no loops, or only loops with constant, statically resolvable
//! trip counts — unless they (transitively) call library routines known to be
//! performance-relevant (e.g. MPI), in which case they must stay.
//!
//! The classification is interprocedural: it runs bottom-up over the call
//! graph, so a loop-free getter that calls a parametric kernel is *not*
//! pruned. Recursive functions are conservatively kept and flagged (the
//! volume composition of §4.2 requires recursion-freedom).

use crate::callgraph::CallGraph;
use crate::dom::DomTree;
use crate::loops::LoopForest;
use crate::scev::{all_trip_counts, TripCount};
use pt_ir::{Callee, Function, FunctionId, InstKind, Module};
use std::collections::HashSet;

/// Why a function was kept (not statically pruned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeepReason {
    /// Contains a loop whose trip count is not a compile-time constant.
    NonConstantLoop,
    /// Calls a performance-relevant external (library database hit).
    RelevantExternal(String),
    /// Calls a function that is itself kept.
    ParametricCallee(String),
    /// Participates in recursion (analysis over-approximates; warn).
    Recursive,
    /// Contains irreducible control flow (analysis over-approximates; warn).
    Irreducible,
}

/// Classification of one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FunctionClass {
    /// Provably parameter-independent: prune from instrumentation, model as
    /// constant.
    StaticallyConstant,
    /// Potentially parameter-dependent: keep for the dynamic analysis.
    PotentiallyParametric(Vec<KeepReason>),
}

impl FunctionClass {
    pub fn is_constant(&self) -> bool {
        matches!(self, FunctionClass::StaticallyConstant)
    }
}

/// Per-function loop statistics feeding Table 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopStats {
    pub total: usize,
    pub constant_trip: usize,
}

/// Result of classifying a whole module.
#[derive(Debug, Clone)]
pub struct StaticClassification {
    pub classes: Vec<FunctionClass>,
    pub loop_stats: Vec<LoopStats>,
    /// Functions flagged because of recursion.
    pub recursion_warnings: Vec<FunctionId>,
    /// Functions flagged because of irreducible control flow.
    pub irreducible_warnings: Vec<FunctionId>,
}

impl StaticClassification {
    pub fn class(&self, f: FunctionId) -> &FunctionClass {
        &self.classes[f.index()]
    }

    /// Number of statically pruned (constant) functions.
    pub fn pruned_count(&self) -> usize {
        self.classes.iter().filter(|c| c.is_constant()).count()
    }

    /// Total and constant-trip loop counts over the whole module.
    pub fn module_loop_totals(&self) -> (usize, usize) {
        self.loop_stats
            .iter()
            .fold((0, 0), |(t, c), s| (t + s.total, c + s.constant_trip))
    }
}

/// Function-local classification facts: every [`KeepReason`] except
/// `ParametricCallee` (which needs resolved callee classes — see
/// [`resolve_class`]), plus the loop statistics.
///
/// This is the per-unit half of [`classify_module`], split out so the
/// incremental static stage can classify one function at a time against
/// cached callee classes and still produce bit-identical results.
#[derive(Debug, Clone)]
pub struct LocalClassification {
    /// Local reasons in canonical order: `NonConstantLoop`, `Irreducible`,
    /// `Recursive`, then `RelevantExternal` in instruction order (deduped).
    pub reasons: Vec<KeepReason>,
    pub loop_stats: LoopStats,
}

impl LocalClassification {
    pub fn irreducible(&self) -> bool {
        self.reasons.contains(&KeepReason::Irreducible)
    }

    pub fn recursive(&self) -> bool {
        self.reasons.contains(&KeepReason::Recursive)
    }
}

/// Local classification of one function, given its precomputed loop forest
/// and trip counts (the same values `PreparedFunction` derives, so the
/// incremental path computes them once).
pub fn classify_function_local(
    func: &Function,
    forest: &LoopForest,
    trips: &[TripCount],
    recursive: bool,
    relevant_externals: &HashSet<String>,
) -> LocalClassification {
    let mut reasons = Vec::new();
    let loop_stats = LoopStats {
        total: forest.len(),
        constant_trip: trips.iter().filter(|t| t.is_constant()).count(),
    };
    if trips.contains(&TripCount::Unknown) {
        reasons.push(KeepReason::NonConstantLoop);
    }
    if !forest.irreducible.is_empty() {
        reasons.push(KeepReason::Irreducible);
    }
    if recursive {
        reasons.push(KeepReason::Recursive);
    }
    for inst in &func.insts {
        if let InstKind::Call {
            callee: Callee::External(name),
            ..
        } = &inst.kind
        {
            if relevant_externals.contains(name) {
                let reason = KeepReason::RelevantExternal(name.clone());
                if !reasons.contains(&reason) {
                    reasons.push(reason);
                }
            }
        }
    }
    LocalClassification {
        reasons,
        loop_stats,
    }
}

/// Final class of a function from its local reasons plus its resolved
/// callees, visited in call-site order. `callees` yields `(name,
/// is_parametric)` for every *resolved* non-self callee (callers skip self
/// edges and still-unresolved in-SCC members, exactly as
/// [`classify_module`]'s bottom-up pass does).
pub fn resolve_class<'a>(
    local_reasons: &[KeepReason],
    callees: impl Iterator<Item = (&'a str, bool)>,
) -> FunctionClass {
    let mut reasons = local_reasons.to_vec();
    for (name, parametric) in callees {
        if parametric {
            let reason = KeepReason::ParametricCallee(name.to_string());
            if !reasons.contains(&reason) {
                reasons.push(reason);
            }
        }
    }
    if reasons.is_empty() {
        FunctionClass::StaticallyConstant
    } else {
        FunctionClass::PotentiallyParametric(reasons)
    }
}

/// Classify every function of `module`. `relevant_externals` is the library
/// database's set of performance-relevant external symbols (§5.3) — e.g.
/// every `MPI_*` routine and the work-charging intrinsics.
pub fn classify_module(
    module: &Module,
    relevant_externals: &HashSet<String>,
) -> StaticClassification {
    let _span = pt_util::trace::span("analysis", "classify");
    let n = module.functions.len();
    let cg = CallGraph::build(module);

    let mut classes: Vec<Option<FunctionClass>> = vec![None; n];
    let mut loop_stats = vec![LoopStats::default(); n];
    let mut recursion_warnings = Vec::new();
    let mut irreducible_warnings = Vec::new();

    // Per-function local facts.
    let mut local_reasons: Vec<Vec<KeepReason>> = vec![Vec::new(); n];
    for fid in module.function_ids() {
        let func = module.function(fid);
        let dt = DomTree::dominators(func);
        let forest = LoopForest::compute(func, &dt);
        let trips = all_trip_counts(func, &forest);
        let local = classify_function_local(
            func,
            &forest,
            &trips,
            cg.is_recursive(fid),
            relevant_externals,
        );
        loop_stats[fid.index()] = local.loop_stats;
        if local.irreducible() {
            irreducible_warnings.push(fid);
        }
        if local.recursive() {
            recursion_warnings.push(fid);
        }
        local_reasons[fid.index()] = local.reasons;
    }

    // Bottom-up propagation: a caller of a parametric function is parametric.
    // Within an SCC the callee may be unresolved; recursion reasons already
    // keep both sides.
    for fid in cg.bottom_up_order() {
        let resolved = cg.callees[fid.index()]
            .iter()
            .filter(|&&callee| callee != fid) // self edge already flagged as recursion
            .filter_map(|&callee| {
                classes[callee.index()].as_ref().map(|c| {
                    (
                        module.function(callee).name.as_str(),
                        matches!(c, FunctionClass::PotentiallyParametric(_)),
                    )
                })
            })
            .collect::<Vec<_>>();
        classes[fid.index()] = Some(resolve_class(
            &local_reasons[fid.index()],
            resolved.into_iter(),
        ));
    }

    StaticClassification {
        classes: classes.into_iter().map(|c| c.unwrap()).collect(),
        loop_stats,
        recursion_warnings,
        irreducible_warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{FunctionBuilder, Type, Value};

    fn relevant() -> HashSet<String> {
        ["MPI_Allreduce", "pt_work_flops"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn loop_free_function_is_constant() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("getter", vec![("d".into(), Type::Ptr)], Type::I64);
        let v = b.load(b.param(0), Type::I64);
        b.ret(Some(v));
        m.add_function(b.finish());
        let c = classify_module(&m, &relevant());
        assert!(c.classes[0].is_constant());
        assert_eq!(c.pruned_count(), 1);
    }

    #[test]
    fn constant_trip_loop_is_constant() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("unrolled", vec![], Type::Void);
        b.for_loop(0i64, 8i64, 1i64, |_, _| {});
        b.ret(None);
        m.add_function(b.finish());
        let c = classify_module(&m, &relevant());
        assert!(c.classes[0].is_constant());
        let (total, konst) = c.module_loop_totals();
        assert_eq!((total, konst), (1, 1));
    }

    #[test]
    fn parametric_loop_is_kept() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |_, _| {});
        b.ret(None);
        m.add_function(b.finish());
        let c = classify_module(&m, &relevant());
        match &c.classes[0] {
            FunctionClass::PotentiallyParametric(rs) => {
                assert!(rs.contains(&KeepReason::NonConstantLoop));
            }
            _ => panic!("kernel must be kept"),
        }
    }

    #[test]
    fn mpi_caller_is_kept_even_without_loops() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("comm", vec![], Type::Void);
        b.call_external(
            "MPI_Allreduce",
            vec![Value::int(0), Value::int(0), Value::int(1)],
            Type::Void,
        );
        b.ret(None);
        m.add_function(b.finish());
        let c = classify_module(&m, &relevant());
        match &c.classes[0] {
            FunctionClass::PotentiallyParametric(rs) => {
                assert!(rs
                    .iter()
                    .any(|r| matches!(r, KeepReason::RelevantExternal(n) if n == "MPI_Allreduce")));
            }
            _ => panic!("comm must be kept"),
        }
    }

    #[test]
    fn irrelevant_external_does_not_keep() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("logger", vec![], Type::Void);
        b.call_external("print_banner", vec![], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        let c = classify_module(&m, &relevant());
        assert!(c.classes[0].is_constant());
    }

    #[test]
    fn parametric_callee_propagates_to_caller() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |_, _| {});
        b.ret(None);
        let kernel = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("wrapper", vec![("n".into(), Type::I64)], Type::Void);
        b.call(kernel, vec![b.param(0)], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        let c = classify_module(&m, &relevant());
        assert!(!c.classes[0].is_constant());
        match &c.classes[1] {
            FunctionClass::PotentiallyParametric(rs) => {
                assert!(rs
                    .iter()
                    .any(|r| matches!(r, KeepReason::ParametricCallee(n) if n == "kernel")));
            }
            _ => panic!("wrapper must be kept"),
        }
    }

    #[test]
    fn recursion_is_flagged() {
        let mut m = Module::new("m");
        let self_id = pt_ir::FunctionId(0);
        let mut b = FunctionBuilder::new("rec", vec![("n".into(), Type::I64)], Type::Void);
        b.call(self_id, vec![b.param(0)], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        let c = classify_module(&m, &relevant());
        assert!(!c.classes[0].is_constant());
        assert_eq!(c.recursion_warnings.len(), 1);
    }

    #[test]
    fn deep_call_chain_propagation() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |_, _| {});
        b.ret(None);
        let kernel = m.add_function(b.finish());
        let mut prev = kernel;
        for i in 0..5 {
            let mut b =
                FunctionBuilder::new(format!("w{i}"), vec![("n".into(), Type::I64)], Type::Void);
            b.call(prev, vec![b.param(0)], Type::Void);
            b.ret(None);
            prev = m.add_function(b.finish());
        }
        let c = classify_module(&m, &relevant());
        assert_eq!(c.pruned_count(), 0);
    }
}
