//! Dominator and postdominator trees.
//!
//! Implementation of Cooper, Harvey & Kennedy, *A Simple, Fast Dominance
//! Algorithm* — the same algorithm LLVM used for years. It runs on an
//! abstract graph so the forward CFG (dominators) and the reversed CFG with
//! a virtual exit (postdominators) share the code.

use crate::cfg;
use pt_ir::{BlockId, Function, Terminator};

/// A dominator tree over the blocks of one function.
///
/// Unreachable blocks have no entry (`idom` = `None`, and `dominates`
/// returns `false` for them except against themselves).
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block index; entry maps to itself.
    idom: Vec<Option<BlockId>>,
    /// Depth in the tree (entry = 0).
    depth: Vec<u32>,
    root: BlockId,
}

impl DomTree {
    /// Dominator tree of `func`'s CFG.
    pub fn dominators(func: &Function) -> DomTree {
        let rpo = cfg::reverse_postorder(func);
        let preds = func.predecessors();
        let preds_fn = |b: BlockId| -> Vec<BlockId> { preds[b.index()].clone() };
        Self::compute(func.blocks.len(), func.entry, &rpo, preds_fn)
    }

    /// Postdominator tree. Multiple exits are handled through a virtual exit
    /// node appended after the real blocks; blocks whose immediate
    /// postdominator is the virtual exit report `None` from
    /// [`DomTree::ipostdom_of`] wrappers below.
    pub fn postdominators(func: &Function) -> PostDomTree {
        let n = func.blocks.len();
        let virtual_exit = BlockId(n as u32);
        // Successors in the reversed graph = predecessors in the original,
        // with exit blocks gaining an edge to the virtual exit.
        let mut rev_succs: Vec<Vec<BlockId>> = vec![Vec::new(); n + 1];
        let mut rev_preds: Vec<Vec<BlockId>> = vec![Vec::new(); n + 1];
        for b in func.block_ids() {
            for s in func.successors(b) {
                // Original edge b -> s; reversed edge s -> b.
                rev_succs[s.index()].push(b);
                rev_preds[b.index()].push(s);
            }
            let is_exit = matches!(
                func.block(b).term,
                Some(Terminator::Ret(_)) | Some(Terminator::Unreachable)
            );
            if is_exit {
                rev_succs[virtual_exit.index()].push(b);
                rev_preds[b.index()].push(virtual_exit);
            }
        }
        // RPO over the reversed graph starting at the virtual exit.
        let mut state = vec![0u8; n + 1];
        let mut post = Vec::with_capacity(n + 1);
        let mut stack: Vec<(BlockId, usize)> = vec![(virtual_exit, 0)];
        state[virtual_exit.index()] = 1;
        while let Some((b, cursor)) = stack.pop() {
            let succs = &rev_succs[b.index()];
            if cursor < succs.len() {
                stack.push((b, cursor + 1));
                let s = succs[cursor];
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
            }
        }
        post.reverse();
        let preds_fn = |b: BlockId| -> Vec<BlockId> { rev_preds[b.index()].clone() };
        let tree = Self::compute(n + 1, virtual_exit, &post, preds_fn);
        PostDomTree { tree, virtual_exit }
    }

    fn compute(
        nblocks: usize,
        entry: BlockId,
        rpo: &[BlockId],
        preds: impl Fn(BlockId) -> Vec<BlockId>,
    ) -> DomTree {
        let mut pos = vec![usize::MAX; nblocks];
        for (i, b) in rpo.iter().enumerate() {
            pos[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; nblocks];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while pos[a.index()] > pos[b.index()] {
                    a = idom[a.index()].expect("intersect: unprocessed node");
                }
                while pos[b.index()] > pos[a.index()] {
                    b = idom[b.index()].expect("intersect: unprocessed node");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for p in preds(b) {
                    if pos[p.index()] == usize::MAX {
                        continue; // unreachable predecessor
                    }
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        // Depths.
        let mut depth = vec![0u32; nblocks];
        for &b in rpo {
            if b == entry {
                continue;
            }
            if let Some(p) = idom[b.index()] {
                depth[b.index()] = depth[p.index()] + 1;
            }
        }
        DomTree {
            idom,
            depth,
            root: entry,
        }
    }

    /// Immediate dominator of `b` (`None` for the root and unreachable blocks).
    pub fn idom_of(&self, b: BlockId) -> Option<BlockId> {
        if b == self.root {
            return None;
        }
        self.idom[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        let mut cur = b;
        loop {
            match self.idom_of(cur) {
                Some(p) => {
                    if p == a {
                        return true;
                    }
                    cur = p;
                }
                None => return false,
            }
        }
    }

    /// Whether `b` is reachable (has a tree entry).
    pub fn is_reachable(&self, b: BlockId) -> bool {
        b == self.root || self.idom[b.index()].is_some()
    }

    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    pub fn root(&self) -> BlockId {
        self.root
    }
}

/// Postdominator tree wrapper hiding the virtual exit node.
#[derive(Debug, Clone)]
pub struct PostDomTree {
    tree: DomTree,
    virtual_exit: BlockId,
}

impl PostDomTree {
    /// Immediate postdominator of `b`, or `None` if it is the virtual exit
    /// (i.e. control can leave the function without passing a unique block).
    pub fn ipostdom_of(&self, b: BlockId) -> Option<BlockId> {
        match self.tree.idom_of(b) {
            Some(p) if p != self.virtual_exit => Some(p),
            _ => None,
        }
    }

    /// Whether `a` postdominates `b` (reflexive).
    pub fn postdominates(&self, a: BlockId, b: BlockId) -> bool {
        self.tree.dominates(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{CmpPred, FunctionBuilder, Type, Value};

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", vec![("a".into(), Type::I64)], Type::Void);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.cmp(CmpPred::Lt, b.param(0), Value::int(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let dt = DomTree::dominators(&f);
        assert_eq!(dt.idom_of(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom_of(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dt.idom_of(BlockId(3)), Some(BlockId(0)));
        assert!(dt.dominates(BlockId(0), BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
        assert!(dt.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn diamond_postdominators() {
        let f = diamond();
        let pdt = DomTree::postdominators(&f);
        // The join block postdominates the branch block.
        assert_eq!(pdt.ipostdom_of(BlockId(0)), Some(BlockId(3)));
        assert_eq!(pdt.ipostdom_of(BlockId(1)), Some(BlockId(3)));
        assert!(pdt.postdominates(BlockId(3), BlockId(0)));
        assert!(!pdt.postdominates(BlockId(1), BlockId(0)));
        // The exit block's ipostdom is the virtual exit → None.
        assert_eq!(pdt.ipostdom_of(BlockId(3)), None);
    }

    #[test]
    fn loop_dominators() {
        let mut b = FunctionBuilder::new("l", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |_, _| {});
        b.ret(None);
        let f = b.finish();
        let dt = DomTree::dominators(&f);
        // entry=bb0, header=bb1, body=bb2, exit=bb3
        assert_eq!(dt.idom_of(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom_of(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dt.idom_of(BlockId(3)), Some(BlockId(1)));
        assert!(dt.dominates(BlockId(1), BlockId(2)));
        assert_eq!(dt.depth_of(BlockId(2)), 2);
    }

    #[test]
    fn loop_postdominators_branch_scope() {
        // The loop header's branch is "closed" at the loop exit: the exit
        // block postdominates the header.
        let mut b = FunctionBuilder::new("l", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |_, _| {});
        b.ret(None);
        let f = b.finish();
        let pdt = DomTree::postdominators(&f);
        assert_eq!(pdt.ipostdom_of(BlockId(1)), Some(BlockId(3)));
        assert_eq!(pdt.ipostdom_of(BlockId(2)), Some(BlockId(1)));
    }

    #[test]
    fn unreachable_blocks_not_dominated() {
        let mut b = FunctionBuilder::new("u", vec![], Type::Void);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let dt = DomTree::dominators(&f);
        assert!(!dt.is_reachable(dead));
        assert!(!dt.dominates(BlockId(0), dead));
    }
}
