//! # pt-analysis — static analyses over `pt-ir`
//!
//! This crate supplies the compile-time half of Perf-Taint (§5.1 of the
//! paper): the structural facts the dynamic taint analysis and the hybrid
//! modeler need about a program *before* it runs.
//!
//! * [`cfg`] — reverse postorder and reachability over a function's CFG.
//! * [`dom`] — dominator and postdominator trees (Cooper-Harvey-Kennedy).
//!   Postdominators drive the control-flow taint scope in `pt-taint`: a
//!   tainted branch taints everything up to its immediate postdominator.
//! * [`loops`] — natural-loop detection and the loop-nesting forest
//!   (§4.1: the analysis targets natural loops; irreducible control flow is
//!   detected and reported, not silently mishandled).
//! * [`scev`] — a small scalar-evolution analysis that recognizes the
//!   canonical `phi/add/icmp` induction pattern and computes compile-time
//!   constant trip counts, enabling the static pruning of functions whose
//!   cost cannot depend on any parameter (§5.1).
//! * [`callgraph`] — call graph construction, Tarjan SCCs (recursion
//!   detection; the paper's analysis warns on recursion), topological order.
//! * [`classify`] — the interprocedural static classification: a function is
//!   *statically constant* if it contains no loops (or only constant-trip
//!   loops), calls no performance-relevant externals, and all its callees are
//!   statically constant.
//! * [`ssa_verify`] — semantic SSA checking (definitions dominate uses),
//!   complementing the structural verifier in `pt-ir`.

pub mod callgraph;
pub mod cfg;
pub mod classify;
pub mod dom;
pub mod loops;
pub mod scev;
pub mod ssa_verify;
pub mod unitkey;

pub use callgraph::CallGraph;
pub use classify::{classify_module, FunctionClass, StaticClassification};
pub use dom::DomTree;
pub use loops::{LoopForest, LoopId, LoopInfo};
pub use scev::{loop_trip_count, TripCount};
