//! Content-addressed keys for per-function static artifacts.
//!
//! The incremental static stage caches one artifact per function (loop
//! facts, classification, decoded+optimized bytecode). A cached artifact is
//! valid exactly when *everything that influenced it* is unchanged, so each
//! function's key must close over:
//!
//! * the **environment**: the module's function-name table (which binds
//!   `@name` call sites to numeric ids) and its external-symbol table
//!   (which binds library calls and host primitives to slots), plus a
//!   caller-provided salt for configuration (the relevant-externals set);
//! * its **own printed body** ([`pt_ir::fingerprint`]);
//! * its **strongly connected component**: any recursive cycle through a
//!   function lies entirely inside its SCC, so all members share a joint
//!   digest over their bodies in member order — an edit to any member
//!   invalidates the whole component, and the `Recursive` classification
//!   fact is covered;
//! * the **keys of its out-of-component callees**, in call-site order —
//!   this transitively reaches everything interprocedural (leaf-call
//!   inline specs, `ParametricCallee` classification).
//!
//! Keys are computed bottom-up over the call-graph condensation (Tarjan
//! emits SCCs callees-first), so callee keys always exist when a component
//! is processed. Editing one function therefore invalidates exactly that
//! function, its SCC co-members, and its transitive callers — everything
//! else keeps its key and its cached artifact.

use crate::callgraph::CallGraph;
use pt_ir::fingerprint::{digest_parts, function_digest};
use pt_ir::Module;

/// Per-function artifact keys for one module (index = function index).
#[derive(Debug, Clone)]
pub struct UnitKeys {
    /// Environment digest shared by every key (function names in order,
    /// external symbols, salt).
    pub env: String,
    /// Artifact key per function.
    pub keys: Vec<String>,
}

/// Compute the per-function artifact keys of `module`. `salt` folds in any
/// configuration the artifacts depend on beyond the module text (e.g. the
/// relevant-externals set and an artifact schema version).
pub fn unit_keys(module: &Module, cg: &CallGraph, salt: &str) -> UnitKeys {
    let n = module.functions.len();
    let bodies: Vec<String> = module
        .function_ids()
        .map(|fid| function_digest(module, fid))
        .collect();

    let mut env_parts: Vec<&str> = vec!["env", salt];
    for f in &module.functions {
        env_parts.push(&f.name);
    }
    env_parts.push("externals");
    let externals = module.used_externals();
    env_parts.extend(externals.iter().copied());
    let env = digest_parts(&env_parts);

    let mut keys = vec![String::new(); n];
    // Tarjan emits SCCs in reverse topological order: every out-of-component
    // callee's key is already computed when its caller's SCC is reached.
    for (si, scc) in cg.sccs.iter().enumerate() {
        let mut parts: Vec<&str> = vec!["scc", &env];
        for &m in scc {
            parts.push(&bodies[m.index()]);
        }
        for &m in scc {
            for &c in &cg.callees[m.index()] {
                if cg.scc_of[c.index()] != si {
                    parts.push(&keys[c.index()]);
                }
            }
        }
        let joint = digest_parts(&parts);
        for (pos, &m) in scc.iter().enumerate() {
            let pos = pos.to_string();
            keys[m.index()] = digest_parts(&["unit", &joint, &pos]);
        }
    }
    UnitKeys { env, keys }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{FunctionBuilder, FunctionId, Type};

    /// kernel(n) loops; wrapper calls kernel; free stands alone.
    fn module(kernel_bound: i64) -> Module {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(kernel_bound, b.param(0), 1i64, |_, _| {});
        b.ret(None);
        let kernel = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("wrapper", vec![("n".into(), Type::I64)], Type::Void);
        b.call(kernel, vec![b.param(0)], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        let mut b = FunctionBuilder::new("free", vec![], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    fn keys(m: &Module) -> Vec<String> {
        unit_keys(m, &CallGraph::build(m), "salt").keys
    }

    #[test]
    fn editing_a_callee_invalidates_its_callers_only() {
        let before = keys(&module(0));
        let after = keys(&module(1));
        assert_ne!(before[0], after[0], "edited kernel must re-key");
        assert_ne!(before[1], after[1], "caller of edited kernel must re-key");
        assert_eq!(before[2], after[2], "unrelated function keeps its key");
    }

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let a = keys(&module(0));
        let b = keys(&module(0));
        assert_eq!(a, b);
        assert_eq!(a.iter().collect::<std::collections::HashSet<_>>().len(), 3);
    }

    #[test]
    fn salt_and_environment_invalidate_everything() {
        let m = module(0);
        let cg = CallGraph::build(&m);
        let a = unit_keys(&m, &cg, "salt-a");
        let b = unit_keys(&m, &cg, "salt-b");
        for i in 0..3 {
            assert_ne!(a.keys[i], b.keys[i]);
        }
    }

    #[test]
    fn scc_members_share_fate() {
        // mutually recursive pair: ping <-> pong
        let mk = |ret_const: i64| {
            let mut m = Module::new("m");
            let pong_id = FunctionId(1);
            let mut b = FunctionBuilder::new("ping", vec![("n".into(), Type::I64)], Type::Void);
            b.call(pong_id, vec![b.param(0)], Type::Void);
            b.ret(None);
            let ping = m.add_function(b.finish());
            let mut b = FunctionBuilder::new("pong", vec![("n".into(), Type::I64)], Type::Void);
            let v = b.add(b.param(0), ret_const);
            b.call(ping, vec![v], Type::Void);
            b.ret(None);
            m.add_function(b.finish());
            m
        };
        let before = keys(&mk(1));
        let after = keys(&mk(2));
        // Editing pong must re-key ping too (same SCC).
        assert_ne!(before[0], after[0]);
        assert_ne!(before[1], after[1]);
        // And within one module the two members still have distinct keys.
        assert_ne!(before[0], before[1]);
    }
}
