//! Natural-loop detection and the loop-nesting forest.
//!
//! A *natural loop* (Aho/Sethi/Ullman) is defined by a back edge
//! `latch → header` where `header` dominates `latch`; its body is every block
//! that reaches the latch without passing through the header. Loops sharing a
//! header are merged. The paper's analysis is defined on natural loops
//! (§4.1); retreating edges whose target does *not* dominate their source
//! indicate irreducible control flow and are reported via
//! [`LoopForest::irreducible`] so callers can warn (the paper cites node
//! splitting as the standard remedy and otherwise excludes such loops).

use crate::cfg;
use crate::dom::DomTree;
use pt_ir::{BlockId, Function};
use serde::{Deserialize, Serialize};

/// Index of a loop within a [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LoopId(pub u32);

impl LoopId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One natural loop.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    pub id: LoopId,
    pub header: BlockId,
    /// Sources of back edges into the header.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including the header.
    pub blocks: Vec<BlockId>,
    /// Immediately enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
    /// Blocks inside the loop with at least one successor outside.
    pub exiting: Vec<BlockId>,
    /// Blocks outside the loop targeted from inside.
    pub exits: Vec<BlockId>,
    /// Nesting depth; top-level loops have depth 1.
    pub depth: u32,
}

impl LoopInfo {
    #[inline]
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function, organized as a forest.
#[derive(Debug, Clone)]
pub struct LoopForest {
    pub loops: Vec<LoopInfo>,
    /// Innermost loop containing each block (index = block index).
    block_loop: Vec<Option<LoopId>>,
    /// Retreating edges that are not back edges (irreducible control flow).
    pub irreducible: Vec<(BlockId, BlockId)>,
}

impl LoopForest {
    /// Compute the loop forest; `dt` must be the dominator tree of `func`.
    pub fn compute(func: &Function, dt: &DomTree) -> LoopForest {
        let rpo = cfg::reverse_postorder(func);
        let pos = cfg::rpo_positions(func, &rpo);
        let nblocks = func.blocks.len();

        // Find back edges and irreducible retreating edges.
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new(); // (latch, header)
        let mut irreducible = Vec::new();
        for b in func.block_ids() {
            if pos[b.index()] == usize::MAX {
                continue; // unreachable
            }
            for s in func.successors(b) {
                if pos[s.index()] == usize::MAX {
                    continue;
                }
                if pos[s.index()] <= pos[b.index()] {
                    // Retreating edge.
                    if dt.dominates(s, b) {
                        back_edges.push((b, s));
                    } else {
                        irreducible.push((b, s));
                    }
                }
            }
        }

        // Group back edges by header, merge bodies.
        let mut headers: Vec<BlockId> = back_edges.iter().map(|&(_, h)| h).collect();
        headers.sort();
        headers.dedup();
        // Sort headers by dominator depth so outer loops come before inner
        // ones; ties broken by block id for determinism.
        headers.sort_by_key(|h| (dt.depth_of(*h), h.0));

        let preds = func.predecessors();
        let mut loops: Vec<LoopInfo> = Vec::with_capacity(headers.len());
        for (i, &header) in headers.iter().enumerate() {
            let id = LoopId(i as u32);
            let latches: Vec<BlockId> = back_edges
                .iter()
                .filter(|&&(_, h)| h == header)
                .map(|&(l, _)| l)
                .collect();
            // Body: reverse flood fill from the latches, stopping at header.
            let mut in_loop = vec![false; nblocks];
            in_loop[header.index()] = true;
            let mut stack: Vec<BlockId> = latches.clone();
            while let Some(b) = stack.pop() {
                if in_loop[b.index()] {
                    continue;
                }
                in_loop[b.index()] = true;
                for &p in &preds[b.index()] {
                    if pos[p.index()] != usize::MAX && !in_loop[p.index()] {
                        stack.push(p);
                    }
                }
            }
            let blocks: Vec<BlockId> = (0..nblocks as u32)
                .map(BlockId)
                .filter(|b| in_loop[b.index()])
                .collect();
            let mut exiting = Vec::new();
            let mut exits = Vec::new();
            for &b in &blocks {
                for s in func.successors(b) {
                    if !in_loop[s.index()] {
                        if !exiting.contains(&b) {
                            exiting.push(b);
                        }
                        if !exits.contains(&s) {
                            exits.push(s);
                        }
                    }
                }
            }
            loops.push(LoopInfo {
                id,
                header,
                latches,
                blocks,
                parent: None,
                children: Vec::new(),
                exiting,
                exits,
                depth: 0,
            });
        }

        // Nesting: the parent of loop L is the smallest loop with a distinct
        // header that contains L's header. Headers were sorted outer-first,
        // so scanning earlier loops and keeping the smallest works.
        for i in 0..loops.len() {
            let header = loops[i].header;
            let mut best: Option<(usize, usize)> = None; // (index, size)
            for (j, cand) in loops.iter().enumerate() {
                if j == i || cand.header == header {
                    continue;
                }
                if cand.contains(header) && cand.blocks.len() > loops[i].blocks.len() {
                    let size = cand.blocks.len();
                    if best.is_none_or(|(_, s)| size < s) {
                        best = Some((j, size));
                    }
                }
            }
            if let Some((j, _)) = best {
                loops[i].parent = Some(LoopId(j as u32));
            }
        }
        for i in 0..loops.len() {
            if let Some(p) = loops[i].parent {
                let id = loops[i].id;
                loops[p.index()].children.push(id);
            }
        }
        // Depths.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = d;
        }

        // Innermost loop per block.
        let mut block_loop: Vec<Option<LoopId>> = vec![None; nblocks];
        for l in &loops {
            for &b in &l.blocks {
                match block_loop[b.index()] {
                    None => block_loop[b.index()] = Some(l.id),
                    Some(cur) => {
                        if l.blocks.len() < loops[cur.index()].blocks.len() {
                            block_loop[b.index()] = Some(l.id);
                        }
                    }
                }
            }
        }

        LoopForest {
            loops,
            block_loop,
            irreducible,
        }
    }

    /// The innermost loop containing `b`, if any.
    pub fn loop_of(&self, b: BlockId) -> Option<LoopId> {
        self.block_loop.get(b.index()).copied().flatten()
    }

    /// The innermost-loop-per-block table (index = block index). Exposed so
    /// a forest can be serialized and rebuilt via [`LoopForest::from_parts`]
    /// without recomputing loop detection.
    pub fn block_map(&self) -> &[Option<LoopId>] {
        &self.block_loop
    }

    /// Reassemble a forest from its parts (deserialization path). The caller
    /// is responsible for internal consistency — `block_loop` must be the
    /// innermost-loop table matching `loops`.
    pub fn from_parts(
        loops: Vec<LoopInfo>,
        block_loop: Vec<Option<LoopId>>,
        irreducible: Vec<(BlockId, BlockId)>,
    ) -> LoopForest {
        LoopForest {
            loops,
            block_loop,
            irreducible,
        }
    }

    /// The loop headed at `header`, if any.
    pub fn loop_with_header(&self, header: BlockId) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| l.header == header)
    }

    /// Top-level loops (no parent).
    pub fn top_level(&self) -> impl Iterator<Item = &LoopInfo> {
        self.loops.iter().filter(|l| l.parent.is_none())
    }

    #[inline]
    pub fn get(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.index()]
    }

    pub fn len(&self) -> usize {
        self.loops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Whether the CondBr terminating `b` exits loop `id` (one successor
    /// outside the loop).
    pub fn is_exiting_branch(&self, id: LoopId, b: BlockId) -> bool {
        self.loops[id.index()].exiting.contains(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{FunctionBuilder, Type, Value};

    fn forest_of(f: &Function) -> LoopForest {
        let dt = DomTree::dominators(f);
        LoopForest::compute(f, &dt)
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = FunctionBuilder::new("s", vec![], Type::Void);
        b.ret(None);
        let f = b.finish();
        assert!(forest_of(&f).is_empty());
    }

    #[test]
    fn single_loop_detected() {
        let mut b = FunctionBuilder::new("l", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |_, _| {});
        b.ret(None);
        let f = b.finish();
        let forest = forest_of(&f);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert_eq!(l.blocks, vec![BlockId(1), BlockId(2)]);
        assert_eq!(l.exiting, vec![BlockId(1)]);
        assert_eq!(l.exits, vec![BlockId(3)]);
        assert_eq!(l.depth, 1);
        assert!(forest.irreducible.is_empty());
    }

    #[test]
    fn nested_loops_forest() {
        let mut b = FunctionBuilder::new("n2", vec![("n".into(), Type::I64)], Type::Void);
        let n = b.param(0);
        b.for_loop(0i64, n, 1i64, |b, _| {
            b.for_loop(0i64, n, 1i64, |b, _| {
                b.call_external("pt_work_flops", vec![Value::int(1)], Type::Void);
            });
        });
        b.ret(None);
        let f = b.finish();
        let forest = forest_of(&f);
        assert_eq!(forest.len(), 2);
        let outer = forest
            .loops
            .iter()
            .find(|l| l.parent.is_none())
            .expect("outer loop");
        let inner = forest
            .loops
            .iter()
            .find(|l| l.parent.is_some())
            .expect("inner loop");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.children, vec![inner.id]);
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(inner.blocks.len() < outer.blocks.len());
        // Inner header belongs to the inner loop, not the outer.
        assert_eq!(forest.loop_of(inner.header), Some(inner.id));
    }

    #[test]
    fn sequential_loops_are_siblings() {
        let mut b = FunctionBuilder::new("seq", vec![("n".into(), Type::I64)], Type::Void);
        let n = b.param(0);
        b.for_loop(0i64, n, 1i64, |_, _| {});
        b.for_loop(0i64, n, 1i64, |_, _| {});
        b.ret(None);
        let f = b.finish();
        let forest = forest_of(&f);
        assert_eq!(forest.len(), 2);
        assert!(forest.loops.iter().all(|l| l.parent.is_none()));
        assert_eq!(forest.top_level().count(), 2);
    }

    #[test]
    fn triple_nesting_depths() {
        let mut b = FunctionBuilder::new("n3", vec![("n".into(), Type::I64)], Type::Void);
        let n = b.param(0);
        b.for_loop(0i64, n, 1i64, |b, _| {
            b.for_loop(0i64, n, 1i64, |b, _| {
                b.for_loop(0i64, n, 1i64, |_, _| {});
            });
        });
        b.ret(None);
        let f = b.finish();
        let forest = forest_of(&f);
        assert_eq!(forest.len(), 3);
        let mut depths: Vec<u32> = forest.loops.iter().map(|l| l.depth).collect();
        depths.sort();
        assert_eq!(depths, vec![1, 2, 3]);
    }

    #[test]
    fn irreducible_edge_reported() {
        // Build a CFG with a jump into the middle of a cycle:
        //   bb0 -> bb1, bb2 ; bb1 -> bb2 ; bb2 -> bb1, bb3
        // The cycle {bb1, bb2} has two entries — irreducible.
        use pt_ir::CmpPred;
        let mut b = FunctionBuilder::new("irr", vec![("a".into(), Type::I64)], Type::Void);
        let bb1 = b.new_block();
        let bb2 = b.new_block();
        let bb3 = b.new_block();
        let c = b.cmp(CmpPred::Lt, b.param(0), Value::int(0));
        b.cond_br(c, bb1, bb2);
        b.switch_to(bb1);
        b.br(bb2);
        b.switch_to(bb2);
        let c2 = b.cmp(CmpPred::Gt, b.param(0), Value::int(10));
        b.cond_br(c2, bb1, bb3);
        b.switch_to(bb3);
        b.ret(None);
        let f = b.finish();
        let forest = forest_of(&f);
        assert!(
            !forest.irreducible.is_empty(),
            "two-entry cycle must be flagged irreducible"
        );
    }
}
