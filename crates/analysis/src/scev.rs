//! Scalar-evolution-lite: constant trip-count computation.
//!
//! This is the analysis Perf-Taint queries at compile time (§5.1, the paper
//! uses LLVM's ScalarEvolution): loops whose trip count is a compile-time
//! constant cannot contribute a parameter dependence, so functions containing
//! only such loops are pruned from instrumentation and modeled as constant.
//!
//! We recognize the canonical rotated-loop pattern emitted by
//! [`pt_ir::FunctionBuilder::begin_loop`]:
//!
//! ```text
//! header: %iv = phi [preheader -> INIT, latch -> %next]
//!         %c  = cmp PRED %iv, BOUND
//!         cond_br %c, <in-loop>, <exit>     ; or swapped
//! ...
//! latch:  %next = add %iv, STEP             ; or sub
//! ```
//!
//! When `INIT`, `STEP`, and `BOUND` are integer constants the trip count is
//! computed exactly; anything else is [`TripCount::Unknown`] (which in the
//! pipeline means "potentially parametric" — a sound over-approximation).

use crate::loops::{LoopForest, LoopId};
use pt_ir::{BinOp, CmpPred, Function, InstKind, Terminator, Value};

/// Result of trip-count analysis for one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripCount {
    /// The loop executes exactly this many iterations.
    Constant(u64),
    /// The trip count is not a compile-time constant.
    Unknown,
}

impl TripCount {
    pub fn is_constant(self) -> bool {
        matches!(self, TripCount::Constant(_))
    }
}

/// Compute the trip count of `loop_id` in `func`.
pub fn loop_trip_count(func: &Function, forest: &LoopForest, loop_id: LoopId) -> TripCount {
    let info = forest.get(loop_id);

    // Single exiting block, and it must be the header (rotated loop).
    if info.exiting.len() != 1 || info.exiting[0] != info.header {
        return TripCount::Unknown;
    }
    // Single latch.
    if info.latches.len() != 1 {
        return TripCount::Unknown;
    }
    let latch = info.latches[0];

    let header_blk = func.block(info.header);
    let (cond, then_bb, _else_bb) = match header_blk.term.as_ref() {
        Some(Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        }) => (*cond, *then_bb, *else_bb),
        _ => return TripCount::Unknown,
    };
    // Does the `true` edge continue the loop?
    let true_continues = info.contains(then_bb);

    // Condition must be a compare defined in the header.
    let cmp_inst = match cond.as_inst() {
        Some(i) => i,
        None => return TripCount::Unknown,
    };
    let (pred, lhs, rhs) = match &func.inst(cmp_inst).kind {
        InstKind::Cmp { pred, lhs, rhs } => (*pred, *lhs, *rhs),
        _ => return TripCount::Unknown,
    };

    // One side is the induction phi, the other a constant bound.
    let (iv_inst, bound, iv_on_lhs) = match (lhs.as_inst(), rhs.as_int()) {
        (Some(i), Some(b)) => (i, b, true),
        _ => match (rhs.as_inst(), lhs.as_int()) {
            (Some(i), Some(b)) => (i, b, false),
            _ => return TripCount::Unknown,
        },
    };
    let incomings = match &func.inst(iv_inst).kind {
        InstKind::Phi { incomings, .. } => incomings.clone(),
        _ => return TripCount::Unknown,
    };
    if incomings.len() != 2 {
        return TripCount::Unknown;
    }
    // Initial value from outside, step from the latch.
    let mut init: Option<i64> = None;
    let mut next_val: Option<Value> = None;
    for (pred_bb, v) in &incomings {
        if *pred_bb == latch {
            next_val = Some(*v);
        } else {
            init = v.as_int();
        }
    }
    let (init, next_val) = match (init, next_val) {
        (Some(i), Some(n)) => (i, n),
        _ => return TripCount::Unknown,
    };
    let next_inst = match next_val.as_inst() {
        Some(i) => i,
        None => return TripCount::Unknown,
    };
    let step = match &func.inst(next_inst).kind {
        InstKind::Bin { op, lhs, rhs } => {
            let uses_iv = *lhs == Value::Inst(iv_inst) || *rhs == Value::Inst(iv_inst);
            if !uses_iv {
                return TripCount::Unknown;
            }
            let konst = if *lhs == Value::Inst(iv_inst) {
                rhs.as_int()
            } else {
                lhs.as_int()
            };
            match (op, konst) {
                (BinOp::Add, Some(c)) => c,
                (BinOp::Sub, Some(c)) if *lhs == Value::Inst(iv_inst) => -c,
                _ => return TripCount::Unknown,
            }
        }
        _ => return TripCount::Unknown,
    };
    if step == 0 {
        return TripCount::Unknown;
    }

    // Normalize to "continue while iv PRED bound".
    let mut pred = if iv_on_lhs { pred } else { swap_pred(pred) };
    if !true_continues {
        pred = negate_pred(pred);
    }

    trip_count_from_range(init, bound, step, pred)
}

fn swap_pred(p: CmpPred) -> CmpPred {
    match p {
        CmpPred::Lt => CmpPred::Gt,
        CmpPred::Le => CmpPred::Ge,
        CmpPred::Gt => CmpPred::Lt,
        CmpPred::Ge => CmpPred::Le,
        CmpPred::Eq | CmpPred::Ne => p,
    }
}

fn negate_pred(p: CmpPred) -> CmpPred {
    match p {
        CmpPred::Lt => CmpPred::Ge,
        CmpPred::Le => CmpPred::Gt,
        CmpPred::Gt => CmpPred::Le,
        CmpPred::Ge => CmpPred::Lt,
        CmpPred::Eq => CmpPred::Ne,
        CmpPred::Ne => CmpPred::Eq,
    }
}

/// Trip count of `for (iv = init; iv PRED bound; iv += step)`.
fn trip_count_from_range(init: i64, bound: i64, step: i64, pred: CmpPred) -> TripCount {
    let count_up = |span: i64, step: i64| -> u64 {
        if span <= 0 {
            0
        } else {
            ((span + step - 1) / step) as u64
        }
    };
    match pred {
        CmpPred::Lt if step > 0 => TripCount::Constant(count_up(bound - init, step)),
        CmpPred::Le if step > 0 => TripCount::Constant(count_up(bound - init + 1, step)),
        CmpPred::Gt if step < 0 => TripCount::Constant(count_up(init - bound, -step)),
        CmpPred::Ge if step < 0 => TripCount::Constant(count_up(init - bound + 1, -step)),
        CmpPred::Ne if step == 1 && bound >= init => TripCount::Constant((bound - init) as u64),
        CmpPred::Ne if step == -1 && init >= bound => TripCount::Constant((init - bound) as u64),
        // Wrong-direction or potentially non-terminating combinations.
        _ => TripCount::Unknown,
    }
}

/// Trip counts for every loop in a function.
pub fn all_trip_counts(func: &Function, forest: &LoopForest) -> Vec<TripCount> {
    (0..forest.len())
        .map(|i| loop_trip_count(func, forest, LoopId(i as u32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::DomTree;
    use pt_ir::{FunctionBuilder, Type, Value};

    fn forest_of(f: &Function) -> LoopForest {
        let dt = DomTree::dominators(f);
        LoopForest::compute(f, &dt)
    }

    fn single_trip(f: &Function) -> TripCount {
        let forest = forest_of(f);
        assert_eq!(forest.len(), 1);
        loop_trip_count(f, &forest, LoopId(0))
    }

    #[test]
    fn constant_bounds_give_constant_trips() {
        let mut b = FunctionBuilder::new("c", vec![], Type::Void);
        b.for_loop(0i64, 10i64, 1i64, |_, _| {});
        b.ret(None);
        assert_eq!(single_trip(&b.finish()), TripCount::Constant(10));
    }

    #[test]
    fn strided_loop() {
        let mut b = FunctionBuilder::new("c", vec![], Type::Void);
        b.for_loop(0i64, 10i64, 3i64, |_, _| {});
        b.ret(None);
        // 0, 3, 6, 9 -> 4 iterations
        assert_eq!(single_trip(&b.finish()), TripCount::Constant(4));
    }

    #[test]
    fn empty_range_is_zero_trips() {
        let mut b = FunctionBuilder::new("c", vec![], Type::Void);
        b.for_loop(10i64, 10i64, 1i64, |_, _| {});
        b.ret(None);
        assert_eq!(single_trip(&b.finish()), TripCount::Constant(0));
    }

    #[test]
    fn parametric_bound_is_unknown() {
        let mut b = FunctionBuilder::new("p", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |_, _| {});
        b.ret(None);
        assert_eq!(single_trip(&b.finish()), TripCount::Unknown);
    }

    #[test]
    fn parametric_start_is_unknown() {
        let mut b = FunctionBuilder::new("p", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(b.param(0), 100i64, 1i64, |_, _| {});
        b.ret(None);
        assert_eq!(single_trip(&b.finish()), TripCount::Unknown);
    }

    #[test]
    fn nested_constant_trips() {
        let mut b = FunctionBuilder::new("n", vec![], Type::Void);
        b.for_loop(0i64, 4i64, 1i64, |b, _| {
            b.for_loop(0i64, 8i64, 2i64, |b, _| {
                b.call_external("pt_work_flops", vec![Value::int(1)], Type::Void);
            });
        });
        b.ret(None);
        let f = b.finish();
        let forest = forest_of(&f);
        let trips = all_trip_counts(&f, &forest);
        let mut counts: Vec<TripCount> = trips;
        counts.sort_by_key(|t| match t {
            TripCount::Constant(n) => *n,
            TripCount::Unknown => u64::MAX,
        });
        assert_eq!(counts, vec![TripCount::Constant(4), TripCount::Constant(4)]);
    }

    #[test]
    fn trip_count_arithmetic() {
        assert_eq!(
            trip_count_from_range(0, 7, 2, CmpPred::Lt),
            TripCount::Constant(4)
        );
        assert_eq!(
            trip_count_from_range(0, 7, 2, CmpPred::Le),
            TripCount::Constant(4)
        );
        assert_eq!(
            trip_count_from_range(10, 0, -1, CmpPred::Gt),
            TripCount::Constant(10)
        );
        assert_eq!(
            trip_count_from_range(10, 0, -1, CmpPred::Ge),
            TripCount::Constant(11)
        );
        assert_eq!(
            trip_count_from_range(0, 5, 1, CmpPred::Ne),
            TripCount::Constant(5)
        );
        // Wrong-direction loop never terminates statically: Unknown.
        assert_eq!(
            trip_count_from_range(0, 5, -1, CmpPred::Lt),
            TripCount::Unknown
        );
    }
}
