//! Profiling harness for the tiered-vs-decoded gate: runs one engine
//! over the lulesh proxy N times so `perf stat` can attribute retired
//! instructions / branch misses to a single engine.
//!
//! Usage: `profile_tiered <decoded|tiered> [reps]`

use pt_mpisim::{MachineConfig, MpiHandler};
use pt_taint::{tier, InterpConfig, Interpreter, PreparedModule, TierConfig, TierMode, TierPlan};

fn main() {
    let mut args = std::env::args().skip(1);
    let engine = args.next().unwrap_or_else(|| "tiered".into());
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);

    let app = pt_apps::lulesh::build();
    let params = app.taint_run_params();
    let mut machine = MachineConfig::default();
    if let Some((_, p)) = params.iter().find(|(n, _)| n == "p") {
        machine.ranks = *p as u32;
    }
    let prepared = PreparedModule::compute(&app.module);
    let config = InterpConfig {
        tier: TierConfig {
            mode: TierMode::Off,
            ..TierConfig::default()
        },
        ..Default::default()
    };
    let tier_cfg = TierConfig {
        mode: TierMode::Force,
        ..TierConfig::default()
    };
    let spec = tier::specialize(
        &prepared.decoded,
        &TierPlan::all(app.module.functions.len()),
        &tier_cfg,
        None,
    );

    let mut acc = 0u64;
    for _ in 0..reps {
        let mut interp = Interpreter::new(
            &app.module,
            &prepared,
            MpiHandler::new(machine.clone()),
            params.clone(),
            config.clone(),
        );
        if engine == "tiered" {
            interp.set_tier(&spec);
        }
        let out = interp.run_named(&app.entry, &[]).expect("run");
        acc = acc.wrapping_add(out.insts);
    }
    println!("{engine}: {reps} reps, {acc} insts total");
}
