//! `serve_saturation` — pt-serve's graceful-degradation envelope.
//!
//! Stands a deliberately small server up (2 workers, 2 queue slots,
//! shedding enabled) and sweeps offered load from parity to several times
//! capacity, with every request a *cold* taint run (unique parameter
//! value) over a fresh connection. At each level the scenario reports the
//! accepted requests' latency distribution (p50/p99/p999), the goodput,
//! and the shed fraction; the gate metrics come from the most saturated
//! level — the admission-control contract is that accepted-request tail
//! latency stays bounded by the queue, not by the offered load, while the
//! overflow is answered immediately with `overloaded` + `retry_after_ms`.

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use perf_taint::PtError;
use pt_server::{Client, Server, ServerConfig};
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const WORKERS: usize = 2;
const QUEUE: usize = 2;
const RETRY_AFTER_MS: u64 = 10;

pub struct ServeSaturation;

impl Scenario for ServeSaturation {
    fn name(&self) -> &'static str {
        "serve_saturation"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["service", "infra", "saturation", "ops"]
    }

    fn summary(&self) -> &'static str {
        "pt-serve under overload: offered-load sweep vs latency, goodput, and shed rate"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        let io_err = |what: &str, e: &dyn std::fmt::Display| {
            PtError::Config(format!("serve_saturation: {what}: {e}"))
        };

        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let store_dir = std::env::temp_dir().join(format!(
            "pt-saturation-bench-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&store_dir);

        let config = ServerConfig {
            workers: WORKERS,
            queue_capacity: QUEUE,
            shed: true,
            retry_after_ms: Some(RETRY_AFTER_MS),
            ..ServerConfig::loopback(&store_dir, WORKERS)
        };
        let server = Server::bind(&config).map_err(|e| io_err("cannot bind", &e))?;
        let addr = server
            .local_addr()
            .map_err(|e| io_err("cannot read bound address", &e))?;
        let server_thread = std::thread::spawn(move || server.run());

        let outcome = drive(&mut r, addr, cx.quick);

        // Shut down exactly like serve_throughput: retry briefly, join only
        // after a successful shutdown (never hang the bench on a wedged
        // server). In shed mode the shutdown request itself can be shed
        // while the storm drains — the retry loop absorbs that too.
        let mut shutdown = Err("never attempted".to_string());
        for _ in 0..20 {
            shutdown = Client::connect(addr)
                .map_err(|e| e.to_string())
                .and_then(|mut c| c.shutdown().map(|_| ()).map_err(|e| e.to_string()));
            if shutdown.is_ok() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        if shutdown.is_ok() {
            let _ = server_thread.join();
        }
        let _ = std::fs::remove_dir_all(&store_dir);
        outcome?;
        shutdown.map_err(|e| io_err("shutdown failed", &e))?;
        Ok(r)
    }
}

struct LevelOutcome {
    offered: usize,
    ok: usize,
    shed: usize,
    wall: f64,
    latencies: Vec<f64>,
}

/// Offer `threads × per_thread` cold requests over connection-per-request
/// clients. A shed attempt counts as offered-but-not-served (no retry —
/// the scenario measures degradation, not eventual completion); transport
/// races with the shed-side close count as sheds too.
fn drive_level(
    addr: std::net::SocketAddr,
    module: &str,
    threads: usize,
    per_thread: usize,
    next_n: &AtomicI64,
) -> Result<LevelOutcome, PtError> {
    let ok = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let failures = Mutex::new(Vec::<String>::new());
    let latencies = Mutex::new(Vec::<f64>::new());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (ok, shed, failures, latencies) = (&ok, &shed, &failures, &latencies);
            scope.spawn(move || {
                for _ in 0..per_thread {
                    let n = next_n.fetch_add(1, Ordering::Relaxed);
                    let Ok(mut client) = Client::connect(addr) else {
                        shed.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    let t0 = Instant::now();
                    match client.taint_run(module, "main", &[("n".to_string(), n)]) {
                        Ok(_) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            latencies.lock().unwrap().push(t0.elapsed().as_secs_f64());
                        }
                        Err(e) if e.remote_kind() == Some("overloaded") => {
                            shed.fetch_add(1, Ordering::Relaxed);
                            let backoff = e.retry_after_ms().unwrap_or(RETRY_AFTER_MS);
                            std::thread::sleep(std::time::Duration::from_millis(backoff));
                        }
                        Err(pt_server::ClientError::Remote { kind, message, .. }) => {
                            failures.lock().unwrap().push(format!("[{kind}] {message}"));
                        }
                        Err(_) => {
                            // Raced the shed-side close (envelope write
                            // timed out or the read saw EOF).
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let failures = failures.into_inner().unwrap();
    if !failures.is_empty() {
        return Err(PtError::Config(format!(
            "serve_saturation: {} request(s) failed; first: {}",
            failures.len(),
            failures[0]
        )));
    }
    Ok(LevelOutcome {
        offered: threads * per_thread,
        ok: ok.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        wall: started.elapsed().as_secs_f64(),
        latencies: latencies.into_inner().unwrap(),
    })
}

fn drive(r: &mut ScenarioResult, addr: std::net::SocketAddr, quick: bool) -> Result<(), PtError> {
    let client_err =
        |what: &str, e: &dyn std::fmt::Display| PtError::Config(format!("{what}: {e}"));
    let mut client = Client::connect(addr).map_err(|e| client_err("connect", &e))?;
    let module = client
        .submit_module(&pt_server::demo_module_text())
        .map_err(|e| client_err("submit_module", &e))?;

    // Offered-load levels as multiples of the worker count; the top level
    // is well past 2× capacity (workers + queue slots).
    let levels: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4] };
    let per_thread = if quick { 6 } else { 12 };
    let next_n = AtomicI64::new(2_000);

    outln!(
        r,
        "pt-serve saturation (loopback {addr}; {WORKERS} workers, queue {QUEUE}, \
         shed on, retry-after {RETRY_AFTER_MS} ms)"
    );
    outln!(
        r,
        "  {:>7} {:>8} {:>6} {:>6} {:>7} {:>9} {:>9} {:>9} {:>10}",
        "offered",
        "clients",
        "ok",
        "shed",
        "shed%",
        "p50 ms",
        "p99 ms",
        "p999 ms",
        "goodput/s"
    );

    let mut top: Option<LevelOutcome> = None;
    for &mult in levels {
        let threads = WORKERS * mult;
        let outcome = drive_level(addr, &module, threads, per_thread, &next_n)?;
        let q = |q: f64| pt_util::metrics::exact_quantile_seconds(&outcome.latencies, q);
        outln!(
            r,
            "  {:>6}x {:>8} {:>6} {:>6} {:>6.1}% {:>9.2} {:>9.2} {:>9.2} {:>10.1}",
            mult,
            threads,
            outcome.ok,
            outcome.shed,
            100.0 * outcome.shed as f64 / outcome.offered.max(1) as f64,
            1e3 * q(0.50),
            1e3 * q(0.99),
            1e3 * q(0.999),
            outcome.ok as f64 / outcome.wall.max(1e-9)
        );
        top = Some(outcome);
    }

    // Gate metrics come from the most saturated level (lower is better for
    // all of them; shed fraction and wall-derived numbers get the loose
    // timing tolerance in bench_compare).
    let top = top.expect("at least one load level");
    if top.ok == 0 {
        return Err(PtError::Config(
            "serve_saturation: saturated level served nothing — admission control is starving"
                .into(),
        ));
    }
    let q = |q: f64| pt_util::metrics::exact_quantile_seconds(&top.latencies, q);
    r.metric("saturated_p50_wall_seconds", q(0.50));
    r.metric("saturated_p99_wall_seconds", q(0.99));
    r.metric("saturated_p999_wall_seconds", q(0.999));
    r.metric("saturated_per_ok_wall_seconds", top.wall / top.ok as f64);
    r.metric(
        "saturated_shed_fraction",
        top.shed as f64 / top.offered.max(1) as f64,
    );
    outln!(r);
    outln!(
        r,
        "  saturated level: {} offered, {} served, {} shed — accepted p99 {:.2} ms",
        top.offered,
        top.ok,
        top.shed,
        1e3 * q(0.99)
    );
    Ok(())
}
