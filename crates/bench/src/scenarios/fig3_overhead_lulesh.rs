//! Figure 3: Score-P instrumentation overhead of LULESH under the three
//! filters — taint-based selective, default (inlining heuristic), and full
//! program instrumentation.
//!
//! Paper shape: full instrumentation costs up to 45× native on the
//! accessor-heavy C++ code; the default filter is moderate but misses more
//! than half of the performance-relevant functions; the taint-based filter
//! stays within ~5% of native.

use super::{out, outln, Scenario, ScenarioCtx, ScenarioResult};
use crate::{geomean, grid, overhead_percent, run_filtered, standard_filters};
use perf_taint::PtError;
use pt_measure::Filter;

pub struct Fig3OverheadLulesh;

impl Scenario for Fig3OverheadLulesh {
    fn name(&self) -> &'static str {
        "fig3_overhead_lulesh"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["figure", "lulesh", "overhead"]
    }

    fn summary(&self) -> &'static str {
        "Figure 3: instrumentation overhead of LULESH per filter"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        let app = cx.lulesh();
        let analysis = cx.analysis(app)?;
        let prepared = analysis.prepared();
        let sizes = cx.lulesh_sizes();
        let ranks = cx.lulesh_ranks();
        let points = grid(app, "size", &sizes, &ranks, &[("iters", 2)]);

        let native = run_filtered(app, prepared, &points, &Filter::None, cx.threads);
        outln!(
            r,
            "Figure 3 — LULESH instrumentation overhead [% over native]"
        );
        let filters = standard_filters(&analysis, app);
        let taint_count = filters[0].1.instrumented_count(&app.module);
        outln!(
            r,
            "  taint-based filter instruments {} of {} functions; default {}; full {}",
            taint_count,
            app.module.functions.len(),
            Filter::Default {
                inline_threshold: 12
            }
            .instrumented_count(&app.module),
            Filter::Full.instrumented_count(&app.module),
        );
        r.metric("instrumented_functions_taint", taint_count as f64);

        for (label, filter) in filters {
            let instr = run_filtered(app, prepared, &points, &filter, cx.threads);
            outln!(r, "\n  {label} instrumentation:");
            out!(r, "  {:>8}", "p\\size");
            for &s in &sizes {
                out!(r, " {s:>9}");
            }
            outln!(r);
            let mut all = Vec::new();
            for (pi, &p) in ranks.iter().enumerate() {
                out!(r, "  {p:>8}");
                for si in 0..sizes.len() {
                    let idx = pi * sizes.len() + si;
                    let ov = overhead_percent(&instr[idx], &native[idx]);
                    all.push((ov / 100.0 + 1.0).max(1e-9));
                    out!(r, " {ov:>8.1}%");
                }
                outln!(r);
            }
            let max = all.iter().cloned().fold(0.0f64, f64::max);
            outln!(
                r,
                "  -> slowdown factor: geomean {:.2}x, max {:.2}x",
                geomean(&all),
                max
            );
            // Slowdown factors are ≥1 and lower-is-better as they stand.
            r.metric(format!("slowdown_{label}_geomean_x"), geomean(&all));
            r.metric(format!("slowdown_{label}_max_x"), max);
        }
        outln!(
            r,
            "\nPaper shape: full up to 45x; default moderate but misses relevant"
        );
        outln!(r, "functions; taint-based within ~5% of native.");
        Ok(r)
    }
}
