//! §B1: noise resilience — the taint prior prunes false dependencies.
//!
//! Sweep (p, size), sample five noisy repetitions per point, and model every
//! function twice: black-box (plain Extra-P) and hybrid (taint-restricted
//! search space). Constant functions — above all short accessors, where the
//! absolute noise floor dominates — tempt the black box into parametric
//! models; the hybrid modeler is immune by construction.
//!
//! Paper shape: MILC had 77% of models corrected; four MPI_Comm_rank models
//! became constant; for reliable kernels (CV ≤ 0.1) both approaches agree
//! with the manually established ground truth.

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use crate::{grid, run_filtered, REPS, SEED};
use perf_taint::report::render_models;
use perf_taint::{compare_against_truth, model_functions, PtError};
use pt_extrap::SearchSpace;
use pt_measure::{function_sets, Filter, NoiseModel};

pub struct B1NoiseResilience;

impl Scenario for B1NoiseResilience {
    fn name(&self) -> &'static str {
        "b1_noise_resilience"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["appendix", "lulesh", "noise", "modeling"]
    }

    fn summary(&self) -> &'static str {
        "§B1: false-dependency pruning under measurement noise"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        let app = cx.lulesh();
        let analysis = cx.analysis(app)?;
        let model_params = vec!["p".to_string(), "size".to_string()];

        let points = grid(
            app,
            "size",
            &cx.lulesh_sizes(),
            &cx.lulesh_ranks(),
            &[("iters", 2)],
        );
        let filter = Filter::TaintBased {
            relevant: analysis
                .relevant_functions(&app.module)
                .into_iter()
                .collect(),
        };
        let profiles = run_filtered(app, analysis.prepared(), &points, &filter, cx.threads);
        let sets = function_sets(&profiles, &model_params, REPS, &NoiseModel::CLUSTER, SEED);
        outln!(
            r,
            "§B1 — modeling {} functions from {} points × {} repetitions (noise: 2% rel + 2µs floor)",
            sets.len(),
            points.len(),
            REPS
        );

        let space = SearchSpace::default();
        let restrictions = analysis.restrictions(&app.module, &model_params);
        // The model-search cost is the number the paper's pipeline pays on
        // every modeling run — accumulate it over both searches (and only
        // them, not the truth comparison in between) for the gate.
        let mut search_time = pt_util::Stopwatch::new();
        search_time.start();
        let blackbox = model_functions(&sets, None, &space, 0.1);
        search_time.stop();
        let cmp = compare_against_truth(&blackbox, &restrictions);
        search_time.start();
        let hybrid = model_functions(&sets, Some(&restrictions), &space, 0.1);
        search_time.stop();
        r.metric("model_search_wall_seconds", search_time.elapsed());
        outln!(r, "\nblack-box Extra-P vs taint ground truth:");
        outln!(
            r,
            "  {} of {} models carried false dependencies or overfitted constants ({:.0}%)",
            cmp.false_dependencies.len() + cmp.overfitted_constants.len(),
            cmp.total,
            100.0 * cmp.corrected_fraction()
        );
        outln!(
            r,
            "  overfitted constants: {} (e.g. {:?})",
            cmp.overfitted_constants.len(),
            &cmp.overfitted_constants[..cmp.overfitted_constants.len().min(4)]
        );
        outln!(
            r,
            "  false parameter dependencies: {} (e.g. {:?})",
            cmp.false_dependencies.len(),
            &cmp.false_dependencies[..cmp.false_dependencies.len().min(4)]
        );

        // The §B1 headline case: environment queries must be constant.
        for probe_fn in ["MPI_Comm_rank", "MPI_Comm_size"] {
            if let (Some(bb), Some(hy)) = (blackbox.get(probe_fn), hybrid.get(probe_fn)) {
                outln!(
                    r,
                    "\n  {probe_fn}: black-box → {}   hybrid → {}",
                    bb.fitted.model.render(&model_params),
                    hy.fitted.model.render(&model_params)
                );
            }
        }

        let hybrid_clean = compare_against_truth(&hybrid, &restrictions);
        let violations =
            hybrid_clean.false_dependencies.len() + hybrid_clean.overfitted_constants.len();
        outln!(
            r,
            "\nhybrid models violating the taint structure: {violations} (must be 0)"
        );
        r.metric("hybrid_truth_violations", violations as f64);

        // Predicted-vs-measured error of the hybrid models: mean SMAPE over
        // the reliable (CV ≤ 0.1) functions.
        let reliable: Vec<f64> = hybrid
            .values()
            .filter(|m| m.reliable)
            .map(|m| m.fitted.quality.smape)
            .collect();
        if !reliable.is_empty() {
            r.metric(
                "pred_vs_measured_smape_pct",
                reliable.iter().sum::<f64>() / reliable.len() as f64,
            );
        }

        outln!(r, "\nTop hybrid models by mean exclusive time:");
        outln!(r, "{}", render_models(&hybrid, &model_params, 12));
        outln!(
            r,
            "Paper shape: black-box overfits short/constant functions; the hybrid"
        );
        outln!(
            r,
            "modeler eliminates every false dependency and matches ground truth"
        );
        outln!(r, "on reliable (CV ≤ 0.1) kernels.");
        Ok(r)
    }
}
