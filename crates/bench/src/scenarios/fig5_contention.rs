//! Figure 5 + §C1: detecting hardware contention.
//!
//! Keep p = 64 and size = 30 (scaled: 20) constant and vary the number of
//! MPI ranks per node r from 2 to 18. Taint analysis proved the compute
//! kernels independent of every program parameter that varies here (none
//! do!), yet memory-bound kernels slow down — the white-box pipeline flags
//! the discrepancy and fits `log²r`-shaped models, exposing memory-
//! bandwidth saturation.
//!
//! Paper shape: whole-application time rises ~50% from r=2 to r=18 with
//! model 2.86·log2²(r) + 127; kernels like CalcHourglassControlForElems get
//! `11.63·log2(r) + 23.49`-style models; 31 of 73 functions show increasing
//! models.

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use crate::contended_machine;
use perf_taint::report::render_contention;
use perf_taint::validate::detect_contention;
use perf_taint::PtError;
use pt_extrap::SearchSpace;
use pt_measure::{run_sweep, SweepPoint};
use std::collections::BTreeMap;

pub struct Fig5Contention;

impl Scenario for Fig5Contention {
    fn name(&self) -> &'static str {
        "fig5_contention"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["figure", "lulesh", "contention"]
    }

    fn summary(&self) -> &'static str {
        "Figure 5/§C1: contention detection across ranks per node"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        let app = cx.lulesh();
        let analysis = cx.analysis(app)?;
        let prepared = analysis.prepared();

        let rpn = cx.contention_rpn();
        let points: Vec<SweepPoint> = rpn
            .iter()
            .map(|&rank_per_node| SweepPoint {
                params: app.sweep_params(&[("size", 20), ("p", 64), ("iters", 2)]),
                machine: contended_machine(64, rank_per_node),
            })
            .collect();
        let probe = vec![0.0; app.module.functions.len() + app.module.used_externals().len()];
        let profiles = run_sweep(
            &app.module,
            prepared,
            &app.entry,
            &points,
            &probe,
            cx.threads,
        );

        outln!(
            r,
            "Figure 5 — relative time increase vs ranks per node (p=64, size fixed)"
        );
        outln!(r, "  {:>4}  {:>10}  {:>8}", "r", "wall [s]", "rel.");
        let base = profiles[0].wall;
        for (i, prof) in profiles.iter().enumerate() {
            outln!(
                r,
                "  {:>4}  {:>10.4}  {:>8.3}",
                rpn[i],
                prof.wall,
                prof.wall / base
            );
        }
        let total_increase = profiles.last().unwrap().wall / base;
        outln!(
            r,
            "  whole application: ×{total_increase:.2} from r={} to r={}",
            rpn[0],
            rpn[rpn.len() - 1]
        );
        r.metric("whole_app_increase_x", total_increase);

        // Build per-function measurement sets over the r axis. `r` is a
        // machine knob, not a program parameter, so every function is
        // taint-proven independent of it.
        let mut sets = BTreeMap::new();
        let mut names: Vec<String> = profiles
            .iter()
            .flat_map(|p| p.functions.keys().cloned())
            .collect();
        names.sort();
        names.dedup();
        for name in names {
            let mut set = pt_extrap::MeasurementSet::new(vec!["r".to_string()]);
            for (i, prof) in profiles.iter().enumerate() {
                let t = prof
                    .functions
                    .get(&name)
                    .map(|f| f.exclusive)
                    .unwrap_or(0.0);
                set.push(vec![rpn[i] as f64], vec![t]);
            }
            sets.insert(name, set);
        }

        let findings = detect_contention(&sets, &|_| true, &SearchSpace::default(), 0.1, 1.05);
        outln!(r);
        outln!(
            r,
            "{}",
            render_contention(&findings[..findings.len().min(12)], "r")
        );
        outln!(
            r,
            "  {} of {} measured functions show increasing models",
            findings.len(),
            sets.len()
        );
        let mem_bound = [
            "CalcHourglassControlForElems",
            "IntegrateStressForElems",
            "CalcForceForNodes",
        ];
        let mut missed = 0usize;
        for f in mem_bound {
            let hit = findings.iter().any(|x| x.function == f);
            if !hit {
                missed += 1;
            }
            outln!(
                r,
                "  memory-bound {f}: {}",
                if hit { "flagged ✓" } else { "NOT flagged" }
            );
        }
        // Detection quality: memory-bound kernels the pipeline failed to
        // flag (0 when contention detection works).
        r.metric("membound_kernels_missed", missed as f64);
        outln!(
            r,
            "\nPaper shape: ~50% whole-app increase r=2→18; memory-bound kernels"
        );
        outln!(
            r,
            "gain log2-family models; compute-only functions stay constant."
        );
        Ok(r)
    }
}
