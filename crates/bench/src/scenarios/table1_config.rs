//! Table 1 stand-in: the simulated hardware/software configuration.
//!
//! The paper evaluates on Piz Daint (2× Xeon E5-2695 v4) and a Skylake
//! cluster (Xeon 6154). Our substrate is an analytical machine model; this
//! scenario prints its parameters next to the paper's testbeds so every
//! other scenario's outputs can be interpreted.

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use crate::machine;
use perf_taint::PtError;

pub struct Table1Config;

impl Scenario for Table1Config {
    fn name(&self) -> &'static str {
        "table1_config"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["table", "config", "machine"]
    }

    fn summary(&self) -> &'static str {
        "Table 1: simulated machine description vs the paper's testbeds"
    }

    fn run(&self, _cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        let m = machine(64);
        outln!(r, "Table 1 — evaluation platform (simulated stand-in)");
        outln!(r);
        outln!(
            r,
            "  Paper:      Piz Daint (Xeon E5-2695 v4, 36c/node, 128 GB, Cray MPICH)"
        );
        outln!(
            r,
            "              Skylake cluster (Xeon 6154, 36c/node, 384 GB, OpenMPI)"
        );
        outln!(r, "              Score-P 6.0, Extra-P 3.0, LLVM 9.0");
        outln!(r);
        outln!(r, "  This repo:  pt-mpisim analytical machine model");
        outln!(r, "    MPI latency (α)            {:>12.2e} s", m.latency);
        outln!(
            r,
            "    network time/byte (β)      {:>12.2e} s  (~{:.1} GB/s)",
            m.byte_time,
            1e-9 / m.byte_time
        );
        outln!(
            r,
            "    scalar flop time           {:>12.2e} s  (~{:.1} GFLOP/s)",
            m.flop_time,
            1e-9 / m.flop_time
        );
        outln!(
            r,
            "    memory word time           {:>12.2e} s",
            m.mem_word_time
        );
        outln!(r, "    ranks per node             {:>12}", m.ranks_per_node);
        outln!(
            r,
            "    contention model           1 + a·log2(r) + b·log2²(r), calibrated a=0.01 b=0.032"
        );
        outln!(r);
        outln!(
            r,
            "  Software:   pt-taint (DataFlowSanitizer stand-in), pt-measure (Score-P stand-in),"
        );
        outln!(
            r,
            "              pt-extrap (Extra-P 3.0 reimplementation, PMNF n=2, I/J sets of §4.5)"
        );

        // The machine constants pin the simulation; any drift re-baselines
        // every downstream number, so the gate should see it.
        r.metric("machine_latency_seconds", m.latency);
        r.metric("machine_byte_time_seconds", m.byte_time);
        r.metric("machine_flop_time_seconds", m.flop_time);
        r.metric("machine_mem_word_time_seconds", m.mem_word_time);
        Ok(r)
    }
}
