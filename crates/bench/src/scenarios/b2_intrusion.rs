//! §B2: instrumentation intrusion changes models qualitatively.
//!
//! Model the critical LULESH routine CalcQForElems (inclusive time) from
//! fully instrumented runs and from selectively instrumented runs. Under
//! full instrumentation the accessor probes inflate and distort the
//! measurements; the paper observes the model flipping from the true
//! multiplicative `2.4e-8·p^0.25·size³` to a distorted additive
//! `3e-3·p^0.5 + 1e-5·size³`, and the default Score-P filter does not
//! instrument the function at all (false negative).

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use crate::{grid, run_filtered, PROBE_COST, REPS, SEED};
use perf_taint::PtError;
use pt_extrap::{fit_multi_param, MeasurementSet, SearchSpace};
use pt_measure::{Filter, NoiseModel, PointProfile};

pub struct B2Intrusion;

const TARGET: &str = "CalcQForElems";

fn set_for(profiles: &[PointProfile], model_params: &[String], inclusive: bool) -> MeasurementSet {
    let mut set = MeasurementSet::new(model_params.to_vec());
    for prof in profiles {
        let coords: Vec<f64> = model_params
            .iter()
            .map(|p| prof.point.param(p).unwrap() as f64)
            .collect();
        let t = prof
            .functions
            .get(TARGET)
            .map(|f| if inclusive { f.inclusive } else { f.exclusive })
            .unwrap_or(0.0);
        let mut rng = pt_measure::rng_for(SEED, &format!("{TARGET}@{}", prof.point.key()));
        set.push(coords, NoiseModel::CLUSTER.sample_reps(t, REPS, &mut rng));
    }
    set
}

impl Scenario for B2Intrusion {
    fn name(&self) -> &'static str {
        "b2_intrusion"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["appendix", "lulesh", "intrusion", "modeling"]
    }

    fn summary(&self) -> &'static str {
        "§B2: instrumentation intrusion flips a kernel's model"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        let app = cx.lulesh();
        let analysis = cx.analysis(app)?;
        let prepared = analysis.prepared();
        let model_params = vec!["p".to_string(), "size".to_string()];
        let points = grid(
            app,
            "size",
            &cx.lulesh_sizes(),
            &cx.lulesh_ranks(),
            &[("iters", 2)],
        );

        let selective_filter = Filter::TaintBased {
            relevant: analysis
                .relevant_functions(&app.module)
                .into_iter()
                .collect(),
        };
        let full = run_filtered(app, prepared, &points, &Filter::Full, cx.threads);
        let selective = run_filtered(app, prepared, &points, &selective_filter, cx.threads);

        outln!(
            r,
            "§B2 — instrumentation intrusion on {TARGET} (inclusive time)\n"
        );
        let space = SearchSpace::default();
        let mut models = Vec::new();
        let mut means = Vec::new();
        for (label, profiles) in [("full", &full), ("selective", &selective)] {
            let set = set_for(profiles, &model_params, true);
            let fit = fit_multi_param(&set, &space, None);
            let mean = set.means().iter().sum::<f64>() / set.points.len() as f64;
            outln!(
                r,
                "  {label:<10} mean {mean:>10.3e}s  model: {}",
                fit.model.render(&model_params)
            );
            models.push((label, fit));
            means.push(mean);
        }

        let ratio = means[0] / means[1];
        outln!(
            r,
            "\n  full-instrumentation measurements are ×{ratio:.0} the selective ones"
        );
        r.metric("full_vs_selective_inflation_x", ratio);
        let full_p = models[0].1.model.uses_param(0);
        let sel_p = models[1].1.model.uses_param(0);
        outln!(
            r,
            "  model contains the communication p-term: full={full_p}  selective={sel_p}"
        );
        let flipped = full_p != sel_p
            || models[0].1.model.has_multiplicative_term()
                != models[1].1.model.has_multiplicative_term();
        if flipped {
            outln!(
                r,
                "  → the models differ qualitatively: probe cost (∝ accessor calls ∝ size³)"
            );
            outln!(
                r,
                "    swamps the physical p-dependent communication component."
            );
        }

        // The default filter's false negative: it skips the driver entirely.
        let default_filter = Filter::Default {
            inline_threshold: 12,
        };
        let probe = default_filter.probe_vector(&app.module, PROBE_COST);
        let target_id = app.module.function_by_name(TARGET).unwrap();
        let instrumented = probe[target_id.index()] > 0.0;
        outln!(
            r,
            "\n  default Score-P filter instruments {TARGET}: {} (paper: false negative)",
            instrumented
        );
        // Reproduction fidelity flags: 0 = the paper's effect reproduced.
        r.metric("intrusion_flip_missing", if flipped { 0.0 } else { 1.0 });
        r.metric(
            "default_filter_false_negative_missing",
            if instrumented { 1.0 } else { 0.0 },
        );
        outln!(
            r,
            "\nPaper shape: full instrumentation inflates runtimes ~2 orders of"
        );
        outln!(
            r,
            "magnitude on C++ code and flips CalcQForElems' model; the filtered"
        );
        outln!(r, "model is validated by prior studies.");
        Ok(r)
    }
}
