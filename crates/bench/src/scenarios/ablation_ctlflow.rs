//! Ablation: the control-flow taint policies.
//!
//! The paper's key extension to DataFlowSanitizer is control-flow tainting
//! (§5.2) — without it, the LULESH `regElemSize` histogram dependence is
//! invisible and the region loops lose their `size` dependency. This
//! scenario runs the taint analysis under all three policies and reports
//! the dependency structures of the §5.2 kernels.
//!
//! The ablated sessions use custom pipeline configurations, so they are
//! built directly (bypassing the context's session cache, whose artifacts
//! assume the default configuration).

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use perf_taint::{PipelineConfig, PtError, SessionBuilder};
use pt_taint::CtlFlowPolicy;

pub struct AblationCtlflow;

impl Scenario for AblationCtlflow {
    fn name(&self) -> &'static str {
        "ablation_ctlflow"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["ablation", "lulesh", "taint-policy"]
    }

    fn summary(&self) -> &'static str {
        "Ablation: control-flow taint policies on the §5.2 kernels"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        let app = cx.lulesh();
        outln!(r, "Ablation — control-flow taint policy (mini-LULESH)\n");
        let kernels = [
            "CalcMonotonicQRegionForElems",
            "CalcEnergyForElems",
            "EvalEOSForElems",
            "SetupRegionIndexSet",
        ];
        for policy in [
            CtlFlowPolicy::Off,
            CtlFlowPolicy::StoresOnly,
            CtlFlowPolicy::All,
        ] {
            let mut cfg = PipelineConfig::with_mpi_defaults();
            cfg.interp.policy = policy;
            let session = SessionBuilder::new(&app.module, &app.entry)
                .config(cfg)
                .build();
            let analysis = session.taint_run(app.taint_run_params())?;
            outln!(r, "policy {policy:?}:");
            for k in kernels {
                let f = app.module.function_by_name(k).unwrap();
                outln!(
                    r,
                    "  {k:<32} {}",
                    analysis.deps[&f].render(&analysis.param_names)
                );
            }
            let t2 = &analysis.table2;
            outln!(
                r,
                "  relevant loops: {} — labels on region loops {}",
                t2.loops_relevant,
                if policy == CtlFlowPolicy::Off {
                    "MISS the size dependency (histogram invisible)"
                } else {
                    "include size via the histogram control dependence"
                }
            );
            outln!(r);
            // The ablation's point: policy Off must see *fewer* relevant
            // loops than the control-flow-aware policies. Record the count
            // each policy reports so a regression in either direction (a
            // policy suddenly seeing more/fewer loops) trips the gate.
            let key = match policy {
                CtlFlowPolicy::Off => "off",
                CtlFlowPolicy::StoresOnly => "stores_only",
                CtlFlowPolicy::All => "all",
            };
            r.metric(
                format!("relevant_loops_policy_{key}"),
                t2.loops_relevant as f64,
            );
        }
        outln!(
            r,
            "Paper: the DataFlowSanitizer extension (policy All / StoresOnly) is"
        );
        outln!(
            r,
            "necessary to capture real-world dependencies like regElemSize."
        );
        Ok(r)
    }
}
