//! `serve_throughput` — the analysis service under load, through a real
//! loopback socket.
//!
//! Stands a `pt-server` up on an ephemeral port with a throwaway store,
//! then measures what the Taint Rabbit-style amortization buys: cold
//! requests pay the full pipeline, warm requests are answered from the
//! persistent content-addressed store. Reported numbers are the cold and
//! warm per-request latencies and the warm requests/sec sustained by
//! several concurrent clients (stored as its inverse, seconds for the
//! whole burst, to keep the lower-is-better convention).

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use perf_taint::PtError;
use pt_server::{Client, Server, ServerConfig};
use std::sync::atomic::{AtomicUsize, Ordering};

pub struct ServeThroughput;

/// The loopback service bench: cold-vs-warm latency and warm throughput.
impl Scenario for ServeThroughput {
    fn name(&self) -> &'static str {
        "serve_throughput"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["service", "infra", "throughput"]
    }

    fn summary(&self) -> &'static str {
        "pt-serve over loopback: requests/sec and cold-vs-warm latency via the artifact store"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        let io_err = |what: &str, e: &dyn std::fmt::Display| {
            PtError::Config(format!("serve_throughput: {what}: {e}"))
        };

        // Unique store root per run (bench_all may run this concurrently
        // with `cargo test` on the same machine).
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let store_dir = std::env::temp_dir().join(format!(
            "pt-serve-bench-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&store_dir);

        let clients = cx.threads.clamp(2, 8);
        let server = Server::bind(&ServerConfig::loopback(&store_dir, cx.threads.max(2)))
            .map_err(|e| io_err("cannot bind loopback server", &e))?;
        let addr = server
            .local_addr()
            .map_err(|e| io_err("cannot read bound address", &e))?;
        let server_thread = std::thread::spawn(move || server.run());

        let outcome = drive(&mut r, addr, clients, cx.quick);

        // Always try to shut the server down, even when the drive failed
        // (retry briefly: the failure mode is fd/port pressure from the
        // burst, which drains quickly). `run` only returns once a shutdown
        // request lands, so join ONLY after a successful one — otherwise
        // report the error and leak the thread rather than hang the bench.
        let mut shutdown = Err("never attempted".to_string());
        for _ in 0..10 {
            shutdown = Client::connect(addr)
                .map_err(|e| e.to_string())
                .and_then(|mut c| c.shutdown().map(|_| ()).map_err(|e| e.to_string()));
            if shutdown.is_ok() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        if shutdown.is_ok() {
            let _ = server_thread.join();
        }
        let _ = std::fs::remove_dir_all(&store_dir);
        outcome?;
        shutdown.map_err(|e| io_err("shutdown failed", &e))?;
        Ok(r)
    }
}

fn drive(
    r: &mut ScenarioResult,
    addr: std::net::SocketAddr,
    clients: usize,
    quick: bool,
) -> Result<(), PtError> {
    let client_err =
        |what: &str, e: &dyn std::fmt::Display| PtError::Config(format!("{what}: {e}"));
    let mut client = Client::connect(addr).map_err(|e| client_err("connect", &e))?;
    let module = client
        .submit_module(&pt_server::demo_module_text())
        .map_err(|e| client_err("submit_module", &e))?;

    // Cold latency: fresh parameter points, each paying the full pipeline
    // (the static stage is shared in-process after the first, like any
    // long-running server).
    let cold_points: Vec<i64> = if quick {
        vec![5, 9, 13]
    } else {
        vec![5, 9, 13, 17, 21]
    };
    let (cold_results, cold_wall) = pt_util::time(|| -> Result<(), PtError> {
        for &n in &cold_points {
            client
                .taint_run(
                    &module,
                    "main",
                    &[("n".to_string(), n), ("p".to_string(), 4)],
                )
                .map_err(|e| client_err("cold taint_run", &e))?;
        }
        Ok(())
    });
    cold_results?;
    let cold_per_request = cold_wall / cold_points.len() as f64;

    // Warm burst: every request repeats an already-stored analysis, fanned
    // over concurrent client connections — the served-from-store fast path.
    let burst = if quick { 120 } else { 1200 };
    let requests: Vec<i64> = (0..burst)
        .map(|i| cold_points[i % cold_points.len()])
        .collect();
    let (warm_results, warm_wall) = pt_util::time(|| {
        pt_util::parallel_map(&requests, clients, |&n| {
            let mut c = match Client::connect(addr) {
                Ok(c) => c,
                Err(e) => return Err(format!("connect: {e}")),
            };
            c.taint_run(
                &module,
                "main",
                &[("n".to_string(), n), ("p".to_string(), 4)],
            )
            .map(|_| ())
            .map_err(|e| format!("warm taint_run: {e}"))
        })
    });
    let failures = warm_results.iter().filter(|x| x.is_err()).count();
    if failures > 0 {
        let first = warm_results.iter().find_map(|x| x.as_ref().err()).unwrap();
        return Err(PtError::Config(format!(
            "{failures}/{burst} warm requests failed; first: {first}"
        )));
    }
    let warm_per_request = warm_wall / burst as f64;
    let throughput = burst as f64 / warm_wall.max(1e-9);

    let stats = client.stats().map_err(|e| client_err("stats", &e))?;
    let served = stats
        .get("served_from_store")
        .and_then(serde::json::Value::as_u64)
        .unwrap_or(0);

    outln!(r, "pt-serve throughput (loopback {addr})");
    outln!(
        r,
        "  cold   {:>8.3} ms/request over {} request(s)",
        1e3 * cold_per_request,
        cold_points.len()
    );
    outln!(
        r,
        "  warm   {:>8.3} ms/request over {} request(s), {} client(s)",
        1e3 * warm_per_request,
        burst,
        clients
    );
    outln!(r, "  warm throughput {:>10.0} requests/sec", throughput);
    outln!(
        r,
        "  served from persistent store: {served} of {} taint_run request(s)",
        cold_points.len() + burst
    );
    outln!(
        r,
        "  cold/warm amortization: ×{:.1}",
        cold_per_request / warm_per_request.max(1e-9)
    );

    r.metric("cold_request_wall_seconds", cold_per_request);
    r.metric("warm_request_wall_seconds", warm_per_request);
    r.metric("warm_burst_wall_seconds", warm_wall);
    Ok(())
}
