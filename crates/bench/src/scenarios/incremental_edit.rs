//! `incremental_edit` — the content-addressed edit loop, through a real
//! loopback socket.
//!
//! Stands a `pt-server` up with a throwaway store, submits an N-function
//! module, then drives an editor's inner loop: change one function's
//! constant, resubmit, re-request the static analysis. Every resubmission
//! is a new module hash (so the response store cannot answer it), but the
//! per-function artifact cache behind the server's `SessionCache` reuses
//! every untouched function — the warm edit wall should track the edited
//! cone, not the module size. The served bytes are checked against a cold
//! in-process recompute on every iteration: incrementality must never
//! change a single byte of output.

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use perf_taint::report::static_summary;
use perf_taint::{PtError, SessionBuilder};
use pt_server::{Client, Server, ServerConfig};
use std::sync::atomic::{AtomicUsize, Ordering};

pub struct IncrementalEdit;

/// The edit-loop bench: warm per-edit latency under function-granular reuse.
impl Scenario for IncrementalEdit {
    fn name(&self) -> &'static str {
        "incremental_edit"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["service", "infra", "incremental"]
    }

    fn summary(&self) -> &'static str {
        "pt-serve edit loop: per-function artifact reuse across module resubmissions"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        let io_err = |what: &str, e: &dyn std::fmt::Display| {
            PtError::Config(format!("incremental_edit: {what}: {e}"))
        };

        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let store_dir = std::env::temp_dir().join(format!(
            "pt-edit-bench-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&store_dir);

        let server = Server::bind(&ServerConfig::loopback(&store_dir, cx.threads.max(2)))
            .map_err(|e| io_err("cannot bind loopback server", &e))?;
        let addr = server
            .local_addr()
            .map_err(|e| io_err("cannot read bound address", &e))?;
        let server_thread = std::thread::spawn(move || server.run());

        let outcome = drive(&mut r, addr, cx.quick);

        let mut shutdown = Err("never attempted".to_string());
        for _ in 0..10 {
            shutdown = Client::connect(addr)
                .map_err(|e| e.to_string())
                .and_then(|mut c| c.shutdown().map(|_| ()).map_err(|e| e.to_string()));
            if shutdown.is_ok() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        if shutdown.is_ok() {
            let _ = server_thread.join();
        }
        let _ = std::fs::remove_dir_all(&store_dir);
        outcome?;
        shutdown.map_err(|e| io_err("shutdown failed", &e))?;
        Ok(r)
    }
}

/// The synthetic editable app: `funcs` loop kernels all called from
/// `main`, each spinning `n` iterations of a distinct constant amount of
/// work. `edited` replaces one kernel's constant — the smallest realistic
/// edit, invalidating exactly that kernel and its caller.
fn module_text(funcs: usize, edited: Option<(usize, i64)>) -> String {
    use pt_ir::{FunctionBuilder, Module, Type, Value as IrValue};
    let mut m = Module::new("edit_app");
    let mut ids = Vec::new();
    for i in 0..funcs {
        let flops = match edited {
            Some((j, v)) if j == i => v,
            _ => 3 + (i as i64 % 7),
        };
        let mut b = FunctionBuilder::new(
            format!("work_{i:03}"),
            vec![("n".into(), Type::I64)],
            Type::Void,
        );
        b.for_loop(0i64, b.param(0), 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![IrValue::int(flops)], Type::Void);
        });
        b.ret(None);
        ids.push(m.add_function(b.finish()));
    }
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = b.call_external("pt_param_i64", vec![IrValue::int(0)], Type::I64);
    for &f in &ids {
        b.call(f, vec![n], Type::Void);
    }
    b.ret(None);
    m.add_function(b.finish());
    pt_ir::printer::print_module(&m)
}

/// The cold truth: a throwaway in-process session over the same text. The
/// server's incremental answer must render to these exact bytes.
fn cold_summary_bytes(text: &str) -> Result<String, PtError> {
    let module = perf_taint::parse_module(text)?;
    let session = SessionBuilder::new(&module, "main").build();
    Ok(static_summary(&session.static_analysis(), &module).render())
}

fn drive(r: &mut ScenarioResult, addr: std::net::SocketAddr, quick: bool) -> Result<(), PtError> {
    let client_err =
        |what: &str, e: &dyn std::fmt::Display| PtError::Config(format!("{what}: {e}"));
    let (funcs, edits) = if quick { (12, 4) } else { (32, 12) };

    let mut client = Client::connect(addr).map_err(|e| client_err("connect", &e))?;

    // Cold: the first submission computes every function.
    let base = module_text(funcs, None);
    let (cold, cold_wall) = pt_util::time(|| -> Result<(), PtError> {
        let key = client
            .submit_module(&base)
            .map_err(|e| client_err("cold submit_module", &e))?;
        let served = client
            .static_analysis(&key, "main")
            .map_err(|e| client_err("cold static_analysis", &e))?;
        if served.render() != cold_summary_bytes(&base)? {
            return Err(PtError::Config(
                "cold served summary differs from in-process compute".into(),
            ));
        }
        Ok(())
    });
    cold?;

    // Warm loop: each iteration edits one kernel's constant and replays
    // submit + static_analysis. The response store never hits (every edit
    // is a fresh module hash); only per-function reuse makes this fast.
    let (warm, warm_wall) = pt_util::time(|| -> Result<(), PtError> {
        for e in 0..edits {
            let text = module_text(funcs, Some((e % funcs, 1000 + e as i64)));
            let key = client
                .submit_module(&text)
                .map_err(|e| client_err("warm submit_module", &e))?;
            let served = client
                .static_analysis(&key, "main")
                .map_err(|e| client_err("warm static_analysis", &e))?;
            if served.render() != cold_summary_bytes(&text)? {
                return Err(PtError::Config(format!(
                    "edit {e}: served summary differs from a cold recompute"
                )));
            }
        }
        Ok(())
    });
    warm?;
    let per_edit = warm_wall / edits as f64;

    // The v1.2 ledger: how much of the static stage the edits recomputed.
    let stats = client.stats().map_err(|e| client_err("stats", &e))?;
    let ledger = |field: &str| {
        stats
            .get("functions")
            .and_then(|f| f.get(field))
            .and_then(serde::json::Value::as_u64)
            .unwrap_or(0)
    };
    let (total, reused_mem, reused_store, recomputed) = (
        ledger("total"),
        ledger("reused_memory"),
        ledger("reused_store"),
        ledger("recomputed"),
    );
    let recompute_fraction = if total > 0 {
        recomputed as f64 / total as f64
    } else {
        1.0
    };

    outln!(r, "pt-serve incremental edit loop (loopback {addr})");
    outln!(r, "  module: {funcs} kernels + main, {edits} edit(s)");
    outln!(r, "  cold submit+static  {:>8.3} ms", 1e3 * cold_wall);
    outln!(
        r,
        "  warm edit loop      {:>8.3} ms total, {:>8.3} ms/edit",
        1e3 * warm_wall,
        1e3 * per_edit
    );
    outln!(
        r,
        "  function units: {total} needed = {reused_mem} memory + {reused_store} store + {recomputed} recomputed"
    );
    outln!(
        r,
        "  recompute fraction: {:.3} (edited cones only)",
        recompute_fraction
    );
    outln!(r, "  served bytes byte-identical to cold recompute: yes");

    r.metric("cold_submit_wall_seconds", cold_wall);
    r.metric("edit_loop_warm_wall_seconds", warm_wall);
    r.metric("edit_request_wall_seconds", per_edit);
    // Lower-is-better share of the static stage the edit loop recomputed.
    r.metric("edit_recompute_fraction", recompute_fraction);
    Ok(())
}
