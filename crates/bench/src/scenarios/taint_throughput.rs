//! `taint_throughput` — the decode-once execution engine vs the legacy
//! tree-walker, over the evaluation corpus.
//!
//! Every scenario in this registry bottoms out in the dynamic taint run,
//! so this is the one number that moves all the others: interpreted
//! instructions per second. The scenario runs the representative taint run
//! of each corpus app (mini-LULESH, mini-MILC, and a family of synthetic
//! loop-nest workloads) on both engines against one shared
//! `PreparedModule`, first proving the outputs bit-identical (the
//! differential contract), then timing repeated runs and reporting the
//! best per engine — in **both execution modes**: the full taint run
//! (`InterpConfig::default()`) and the measurement-mode sweep
//! configuration (`taint: false`, `coverage: false`), which exercises the
//! interpreter's monomorphized no-taint specialization. The headline gate
//! metric is `wall_ratio_decoded_over_legacy` — decoded corpus wall time
//! divided by legacy corpus wall time (lower is better; `0.5` means the
//! decoded engine is 2× faster); `wall_ratio_measure_decoded_over_legacy`
//! gates the measurement-mode specialization the same way.
//!
//! A third timing pass runs the decoded engine with tier-1 specialization
//! forced ([`TierMode::Force`]: every `ssa_clean` function compiled to the
//! direct-threaded form, untainted fast path armed) after proving *its*
//! output bit-identical to the legacy engine too. Its gate metric is
//! `wall_ratio_tiered_over_decoded` — tiered corpus wall over plain
//! decoded corpus wall (lower is better; both baselines here pin
//! [`TierMode::Off`] so the tier-0 numbers stay meaningful whatever
//! `PT_TIER` says).

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use perf_taint::report::EngineTiming;
use perf_taint::PtError;
use pt_apps::AppSpec;
use pt_mpisim::{MachineConfig, MpiHandler};
use pt_taint::{
    differential, tier, InterpConfig, Interpreter, PassStats, PreparedModule, ReferenceInterpreter,
    TierConfig, TierMode, TierPlan, TierStats,
};

pub struct TaintThroughput;

impl Scenario for TaintThroughput {
    fn name(&self) -> &'static str {
        "taint_throughput"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["infra", "taint", "throughput", "lulesh", "milc"]
    }

    fn summary(&self) -> &'static str {
        "decode-once taint engine vs the legacy tree-walker: instructions/sec over the corpus"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        // Best-of reps: the corpus runs are milliseconds, so generous rep
        // counts cost little and keep the gate ratio out of the noise on
        // shared runners.
        let reps = if cx.quick { 25 } else { 41 };

        let mut corpus: Vec<AppSpec> = vec![pt_apps::lulesh::build(), pt_apps::milc::build()];
        let synth_seeds: u64 = if cx.quick { 2 } else { 4 };
        for seed in 0..synth_seeds {
            corpus.push(
                pt_apps::synth::generate(&pt_apps::synth::SynthConfig {
                    seed,
                    param_values: vec![6, 7, 8],
                    ..Default::default()
                })
                .app,
            );
        }

        outln!(
            r,
            "Taint execution engine throughput ({reps} reps, best-of)"
        );
        outln!(
            r,
            "  {:<14} {:>10} {:>14} {:>14} {:>14} {:>9} {:>9}",
            "app",
            "insts",
            "decoded/s",
            "tiered/s",
            "legacy/s",
            "taint",
            "tiered"
        );

        let mut decoded_total = 0.0f64;
        let mut tiered_total = 0.0f64;
        let mut legacy_total = 0.0f64;
        let mut measure_total = 0.0f64;
        let mut legacy_measure_total = 0.0f64;
        let mut decode_total = 0.0f64;
        let mut pass_total = 0.0f64;
        let mut specialize_total = 0.0f64;
        let mut insts_total = 0u64;
        let mut tier_stats = TierStats::default();
        let mut passes = PassStats::default();
        for app in &corpus {
            let params = app.taint_run_params();
            let machine = machine_for(&params)?;
            let prepared = PreparedModule::compute(&app.module);
            // Pin tier-0 explicitly: the decoded-vs-legacy baseline must
            // not silently become tiered under a stray PT_TIER=force.
            let tier_off = TierConfig {
                mode: TierMode::Off,
                ..TierConfig::default()
            };
            let taint_cfg = InterpConfig {
                tier: tier_off.clone(),
                ..Default::default()
            };
            let measure_cfg = InterpConfig {
                taint: false,
                coverage: false,
                tier: tier_off,
                ..Default::default()
            };
            let (decoded, tiered, legacy, app_tier, spec_secs) =
                bench_taint(app, &prepared, &machine, &taint_cfg, reps)?;
            let (m_decoded, m_legacy) = bench_app(app, &prepared, &machine, &measure_cfg, reps)?;
            specialize_total += spec_secs;
            outln!(
                r,
                "  {:<14} {:>10} {:>14.2e} {:>14.2e} {:>14.2e} {:>8.2}x {:>8.2}x",
                app.name,
                decoded.insts,
                decoded.insts_per_second(),
                tiered.insts_per_second(),
                legacy.insts_per_second(),
                legacy.execute_seconds / decoded.execute_seconds,
                decoded.execute_seconds / tiered.execute_seconds
            );
            decoded_total += decoded.execute_seconds;
            tiered_total += tiered.execute_seconds;
            legacy_total += legacy.execute_seconds;
            measure_total += m_decoded.execute_seconds;
            legacy_measure_total += m_legacy.execute_seconds;
            decode_total += decoded.decode_seconds;
            tier_stats.specialized += app_tier.specialized;
            tier_stats.threaded_entries += app_tier.threaded_entries;
            tier_stats.threaded_insts += app_tier.threaded_insts;
            tier_stats.fast_entries += app_tier.fast_entries;
            tier_stats.fast_deopts += app_tier.fast_deopts;
            tier_stats.fast_insts += app_tier.fast_insts;
            pass_total += prepared.pass_seconds;
            insts_total += decoded.insts;
            let s = prepared.pass_stats;
            passes.fused_cmp_br += s.fused_cmp_br;
            passes.fused_loads += s.fused_loads;
            passes.fused_stores += s.fused_stores;
            passes.inlined_calls += s.inlined_calls;
            passes.regs_before += s.regs_before;
            passes.regs_after += s.regs_after;
        }

        let ratio = decoded_total / legacy_total.max(1e-12);
        let m_ratio = measure_total / legacy_measure_total.max(1e-12);
        let t_ratio = tiered_total / decoded_total.max(1e-12);
        outln!(r);
        outln!(
            r,
            "  corpus: {} insts — decoded {:.2e}/s over {:.4}s, tiered {:.2e}/s over {:.4}s, \
             legacy {:.2e}/s over {:.4}s",
            insts_total,
            insts_total as f64 / decoded_total.max(1e-12),
            decoded_total,
            insts_total as f64 / tiered_total.max(1e-12),
            tiered_total,
            insts_total as f64 / legacy_total.max(1e-12),
            legacy_total
        );
        outln!(
            r,
            "  decoded/legacy wall ratio: {ratio:.3} (speedup ×{:.2}); \
             measurement mode: {m_ratio:.3} (×{:.2}); one-time decode: {:.4}s",
            1.0 / ratio.max(1e-12),
            1.0 / m_ratio.max(1e-12),
            decode_total
        );
        outln!(
            r,
            "  tiered/decoded wall ratio: {t_ratio:.3} (speedup ×{:.2}); \
             one-time specialize: {specialize_total:.4}s for {} fns; \
             {} threaded insts over {} entries; \
             fast path: {} insts, {} entries, {} deopts",
            1.0 / t_ratio.max(1e-12),
            tier_stats.specialized,
            tier_stats.threaded_insts,
            tier_stats.threaded_entries,
            tier_stats.fast_insts,
            tier_stats.fast_entries,
            tier_stats.fast_deopts
        );
        outln!(
            r,
            "  passes: {} cmp+br, {} gep+load, {} gep+store fused; {} leaf calls inlined; \
             frames {} -> {} regs",
            passes.fused_cmp_br,
            passes.fused_loads,
            passes.fused_stores,
            passes.inlined_calls,
            passes.regs_before,
            passes.regs_after
        );

        // Lower-is-better metrics for the perf gate. The ratios are the
        // machine-independent gate numbers; the wall times carry the usual
        // loose timing tolerance.
        r.metric("taint_wall_seconds", decoded_total);
        r.metric("tiered_taint_wall_seconds", tiered_total);
        r.metric("legacy_taint_wall_seconds", legacy_total);
        r.metric("measure_wall_seconds", measure_total);
        r.metric("legacy_measure_wall_seconds", legacy_measure_total);
        r.metric("wall_ratio_decoded_over_legacy", ratio);
        r.metric("wall_ratio_measure_decoded_over_legacy", m_ratio);
        r.metric("wall_ratio_tiered_over_decoded", t_ratio);
        // Per-tier throughput: the same corpus instruction stream retired
        // by the tier-0 decoded loop vs the tier-1 specialized engine.
        r.metric(
            "insts_per_second_tier0",
            insts_total as f64 / decoded_total.max(1e-12),
        );
        r.metric(
            "insts_per_second_tier1",
            insts_total as f64 / tiered_total.max(1e-12),
        );
        r.metric("decode_wall_seconds", decode_total);
        r.metric("specialize_wall_seconds", specialize_total);
        // Per-stage wall attribution: the pass pipeline's share of the
        // one-time decode, and the best-of execution wall for the full
        // taint configuration — the same stages the tracer reports.
        r.metric("pass_wall_seconds", pass_total);
        r.metric("exec_wall_seconds", decoded_total);
        r.metric(
            "seconds_per_million_insts",
            decoded_total * 1e6 / (insts_total as f64).max(1.0),
        );
        Ok(r)
    }
}

/// Mirror `Session::taint_run`'s machine setup (ranks follow `p`,
/// non-positive values rejected exactly like the in-process path).
fn machine_for(params: &[(String, i64)]) -> Result<MachineConfig, PtError> {
    let mut machine = MachineConfig::default();
    if let Some((_, p)) = params.iter().find(|(n, _)| n == "p") {
        machine.ranks = u32::try_from(*p).ok().filter(|&r| r > 0).ok_or_else(|| {
            PtError::Config(format!(
                "parameter p must be a positive rank count, got {p}"
            ))
        })?;
    }
    if machine.ranks == 0 {
        return Err(PtError::Config("machine has zero ranks".into()));
    }
    Ok(machine)
}

/// One app on all three engines under the full taint configuration:
/// tier-0 decoded, decoded with the tier-1 specialization pre-installed —
/// the amortized shape a warm [`perf_taint::Session`] runs in, where
/// `specialize` is paid once per module (exactly like the decode stage)
/// and every run after reuses the compiled functions — and the legacy
/// reference. Both decoded shapes are differentially checked against the
/// reference first (the tiered paths must honor the same bit-identity
/// contract as tier-0). The rep loop **interleaves** the engines so the
/// best-of samples face the same machine drift: timing all reps of one
/// engine before the next turns a frequency or load shift mid-scenario
/// into a phantom engine-vs-engine delta, which is exactly what the
/// `wall_ratio_tiered_over_decoded` gate must not absorb. Also returns
/// the tiered run's [`TierStats`] (how much of the stream retired on the
/// specialized paths) and the one-time specialization seconds.
#[allow(clippy::type_complexity)]
fn bench_taint(
    app: &AppSpec,
    prepared: &PreparedModule,
    machine: &MachineConfig,
    config: &InterpConfig,
    reps: usize,
) -> Result<(EngineTiming, EngineTiming, EngineTiming, TierStats, f64), PtError> {
    let params = app.taint_run_params();

    // Compile every ssa-clean function up front, once — the module-level
    // analogue of TierMode::Force, hoisted out of the timed runs the way
    // a session hoists it out of every run after its first.
    let tier_cfg = TierConfig {
        mode: TierMode::Force,
        ..TierConfig::default()
    };
    let (spec, spec_secs) = pt_util::time(|| {
        tier::specialize(
            &prepared.decoded,
            &TierPlan::all(app.module.functions.len()),
            &tier_cfg,
            None,
        )
    });

    let run_decoded = || {
        Interpreter::new(
            &app.module,
            prepared,
            MpiHandler::new(machine.clone()),
            params.clone(),
            config.clone(),
        )
        .run_named(&app.entry, &[])
        .map_err(|source| PtError::TaintRun {
            entry: app.entry.clone(),
            source,
        })
    };
    let run_tiered = || {
        let mut interp = Interpreter::new(
            &app.module,
            prepared,
            MpiHandler::new(machine.clone()),
            params.clone(),
            config.clone(),
        );
        interp.set_tier(&spec);
        interp
            .run_named(&app.entry, &[])
            .map_err(|source| PtError::TaintRun {
                entry: app.entry.clone(),
                source,
            })
    };
    let run_legacy = || {
        ReferenceInterpreter::new(
            &app.module,
            prepared,
            MpiHandler::new(machine.clone()),
            params.clone(),
            config.clone(),
        )
        .run_named(&app.entry, &[])
        .map_err(|source| PtError::TaintRun {
            entry: app.entry.clone(),
            source,
        })
    };

    // The engines must agree before their timings mean anything.
    let d = run_decoded()?;
    let t = run_tiered()?;
    let l = run_legacy()?;
    differential::compare_outputs(&d, &l).map_err(|divergence| {
        PtError::Config(format!(
            "taint_throughput: engines diverge on {}: {divergence}",
            app.name
        ))
    })?;
    differential::compare_outputs(&t, &l).map_err(|divergence| {
        PtError::Config(format!(
            "taint_throughput: tiered engine diverges on {}: {divergence}",
            app.name
        ))
    })?;
    let insts = d.insts;
    let legacy_insts = l.insts;
    let stats = t.tier;

    let mut best_d = f64::MAX;
    let mut best_t = f64::MAX;
    let mut best_l = f64::MAX;
    // Rotate which engine opens each rep: with a fixed order the same
    // engine always lands in the same slot of the boost/thermal cycle
    // (e.g. decoded always first after the long legacy run), which
    // biases the best-of minima systematically rather than randomly.
    for i in 0..reps {
        for slot in 0..3 {
            match (i + slot) % 3 {
                0 => {
                    let (out, wall) = pt_util::time(run_decoded);
                    out?;
                    best_d = best_d.min(wall);
                }
                1 => {
                    let (out, wall) = pt_util::time(run_tiered);
                    out?;
                    best_t = best_t.min(wall);
                }
                _ => {
                    let (out, wall) = pt_util::time(run_legacy);
                    out?;
                    best_l = best_l.min(wall);
                }
            }
        }
    }
    Ok((
        EngineTiming {
            decode_seconds: prepared.decode_seconds,
            execute_seconds: best_d,
            insts,
        },
        EngineTiming {
            decode_seconds: prepared.decode_seconds,
            execute_seconds: best_t,
            insts,
        },
        EngineTiming {
            decode_seconds: 0.0,
            execute_seconds: best_l,
            insts: legacy_insts,
        },
        stats,
        spec_secs,
    ))
}

/// One app on both engines under one configuration: differential check,
/// then best-of-`reps` wall times as [`EngineTiming`] pairs
/// `(decoded, legacy)`.
fn bench_app(
    app: &AppSpec,
    prepared: &PreparedModule,
    machine: &MachineConfig,
    config: &InterpConfig,
    reps: usize,
) -> Result<(EngineTiming, EngineTiming), PtError> {
    let params = app.taint_run_params();

    let run_decoded = || {
        Interpreter::new(
            &app.module,
            prepared,
            MpiHandler::new(machine.clone()),
            params.clone(),
            config.clone(),
        )
        .run_named(&app.entry, &[])
        .map_err(|source| PtError::TaintRun {
            entry: app.entry.clone(),
            source,
        })
    };
    let run_legacy = || {
        ReferenceInterpreter::new(
            &app.module,
            prepared,
            MpiHandler::new(machine.clone()),
            params.clone(),
            config.clone(),
        )
        .run_named(&app.entry, &[])
        .map_err(|source| PtError::TaintRun {
            entry: app.entry.clone(),
            source,
        })
    };

    // The engines must agree before their timings mean anything.
    let d = run_decoded()?;
    let l = run_legacy()?;
    differential::compare_outputs(&d, &l).map_err(|divergence| {
        PtError::Config(format!(
            "taint_throughput: engines diverge on {}: {divergence}",
            app.name
        ))
    })?;
    let insts = d.insts;
    let legacy_insts = l.insts;

    let mut best_d = f64::MAX;
    let mut best_l = f64::MAX;
    for _ in 0..reps {
        let (out, wall) = pt_util::time(run_decoded);
        out?;
        best_d = best_d.min(wall);
        let (out, wall) = pt_util::time(run_legacy);
        out?;
        best_l = best_l.min(wall);
    }
    Ok((
        EngineTiming {
            decode_seconds: prepared.decode_seconds,
            execute_seconds: best_d,
            insts,
        },
        EngineTiming {
            decode_seconds: 0.0,
            execute_seconds: best_l,
            insts: legacy_insts,
        },
    ))
}
