//! Table 2: the two-phase identification of computational kernels,
//! communication routines and MPI functions, and static/dynamic pruning,
//! for mini-LULESH and mini-MILC.
//!
//! Paper reference values — LULESH: 356 functions, 296/11 pruned, 40/2/7
//! kernels/comm/MPI, 275 loops (52 pruned statically, 78 relevant);
//! MILC: 629 functions, 364/188 pruned, 56/13/8, 874 loops (96/196).

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use perf_taint::report::render_table2;
use perf_taint::PtError;

pub struct Table2Overview;

impl Scenario for Table2Overview {
    fn name(&self) -> &'static str {
        "table2_overview"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["table", "lulesh", "milc", "census"]
    }

    fn summary(&self) -> &'static str {
        "Table 2: function/loop censuses and pruning for both apps"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        for app in [cx.lulesh(), cx.milc()] {
            let analysis = cx.analysis(app)?;
            outln!(r, "{}", render_table2(&app.name, &analysis.table2));
            outln!(
                r,
                "  taint run: {:.3}s simulated on {} ranks = {:.4} core-hours",
                analysis.taint_run_time,
                app.params
                    .iter()
                    .find(|p| p.name == "p")
                    .map(|p| p.taint_run_value)
                    .unwrap_or(1),
                analysis.taint_run_core_hours
            );
            outln!(r);

            let t2 = &analysis.table2;
            let key = if app.name.contains("milc") {
                "milc"
            } else {
                "lulesh"
            };
            // Counts the census must not silently drift: functions the
            // pruning *fails* to remove and the taint-run cost.
            r.metric(
                format!("{key}_unpruned_functions"),
                (t2.functions_total - t2.pruned_static - t2.pruned_dynamic) as f64,
            );
            r.metric(
                format!("{key}_unpruned_loops"),
                (t2.loops_total - t2.loops_pruned_static) as f64,
            );
            r.metric(
                format!("{key}_taint_core_hours"),
                analysis.taint_run_core_hours,
            );
        }
        outln!(
            r,
            "Paper reference: LULESH 356 fns (296/11 pruned, 40/2/7), 86.2% constant"
        );
        outln!(
            r,
            "                 MILC   629 fns (364/188 pruned, 56/13/8), 87.7% constant"
        );
        Ok(r)
    }
}
