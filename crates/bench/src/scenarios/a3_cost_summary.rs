//! §A3: the core-hour cost of modeling experiments under full vs
//! taint-based selective instrumentation, including the cost of the taint
//! analysis itself.
//!
//! Paper: LULESH experiments drop from 20483 to 547 core-hours (−97.3%)
//! plus 1 hour of taint analysis; MILC from 364 to 321 (−13.4%) plus 16
//! hours. The saving follows the instrumentation overhead: enormous for
//! accessor-heavy C++, moderate for C.

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use crate::{grid, run_filtered};
use perf_taint::PtError;
use pt_measure::{total_core_hours, Filter};

pub struct A3CostSummary;

impl Scenario for A3CostSummary {
    fn name(&self) -> &'static str {
        "a3_cost_summary"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["appendix", "lulesh", "milc", "cost"]
    }

    fn summary(&self) -> &'static str {
        "§A3: core-hour accounting of selective vs full instrumentation"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        outln!(r, "§A3 — experiment cost in (simulated) core-hours\n");
        let configs = [
            (
                cx.lulesh(),
                "lulesh",
                "size",
                cx.lulesh_sizes(),
                cx.lulesh_ranks(),
                vec![("iters", 2i64)],
            ),
            (
                cx.milc(),
                "milc",
                "nx",
                cx.milc_sizes(),
                cx.milc_ranks(),
                vec![],
            ),
        ];
        for (app, key, size_name, sizes, ranks, extra) in configs {
            let analysis = cx.analysis(app)?;
            // The session already computed the static facts; reuse them.
            let prepared = analysis.prepared();
            let points = grid(app, size_name, &sizes, &ranks, &extra);

            let full = run_filtered(app, prepared, &points, &Filter::Full, cx.threads);
            let filter = Filter::TaintBased {
                relevant: analysis
                    .relevant_functions(&app.module)
                    .into_iter()
                    .collect(),
            };
            let selective = run_filtered(app, prepared, &points, &filter, cx.threads);

            let full_ch = total_core_hours(&full);
            let sel_ch = total_core_hours(&selective);
            let saving = 100.0 * (1.0 - sel_ch / full_ch);
            outln!(r, "== {} ({} sweep points) ==", app.name, points.len());
            outln!(
                r,
                "  full instrumentation:       {full_ch:>12.4} core-hours"
            );
            outln!(
                r,
                "  taint-based instrumentation:{sel_ch:>12.4} core-hours  ({saving:+.1}% saving)",
            );
            outln!(
                r,
                "  taint analysis run:         {:>12.6} core-hours (amortized once)",
                analysis.taint_run_core_hours
            );
            outln!(r);
            r.metric(format!("{key}_selective_core_hours"), sel_ch);
            r.metric(format!("{key}_full_core_hours"), full_ch);
            r.metric(
                format!("{key}_taint_run_core_hours"),
                analysis.taint_run_core_hours,
            );
        }
        outln!(
            r,
            "Paper shape: LULESH −97.3% (20483→547 h), MILC −13.4% (364→321 h);"
        );
        outln!(r, "taint-analysis cost (1 h / 16 h) amortizes immediately.");
        Ok(r)
    }
}
