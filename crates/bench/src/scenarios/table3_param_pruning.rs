//! Table 3: computational kernels and loops affected by each parameter
//! (§A1 parameter pruning). The taint-based coverage tells the user which
//! two parameters give the broadest coverage — size and p for LULESH, the
//! lattice extents and p for MILC — and proves numerical parameters
//! (MILC's mass, beta, u0) performance-irrelevant.

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use perf_taint::report::render_table3;
use perf_taint::PtError;

pub struct Table3ParamPruning;

impl Scenario for Table3ParamPruning {
    fn name(&self) -> &'static str {
        "table3_param_pruning"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["table", "lulesh", "milc", "pruning"]
    }

    fn summary(&self) -> &'static str {
        "Table 3: per-parameter function/loop coverage (§A1 pruning)"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();

        let lulesh = cx.lulesh();
        let analysis = cx.analysis(lulesh)?;
        let t3 = analysis.table3(&lulesh.module, ("p", "size"));
        outln!(r, "{}", render_table3(&lulesh.name, &t3));
        outln!(r);
        // Functions/loops the best parameter pair fails to cover (lower is
        // better: 0 means the pair explains every relevant function).
        r.metric(
            "lulesh_pair_uncovered_functions",
            (t3.total_functions - t3.union_coverage.functions) as f64,
        );
        r.metric(
            "lulesh_pair_uncovered_loops",
            (t3.total_loops - t3.union_coverage.loops) as f64,
        );

        let milc = cx.milc();
        let analysis = cx.analysis(milc)?;
        let t3 = analysis.table3(&milc.module, ("p", "nx"));
        outln!(r, "{}", render_table3(&milc.name, &t3));
        outln!(r);
        r.metric(
            "milc_pair_uncovered_functions",
            (t3.total_functions - t3.union_coverage.functions) as f64,
        );
        r.metric(
            "milc_pair_uncovered_loops",
            (t3.total_loops - t3.union_coverage.loops) as f64,
        );

        outln!(
            r,
            "Paper reference (LULESH): p 2/2, size 40/78, regions 13/27, iters 4/4,"
        );
        outln!(
            r,
            "                          balance 9/20, cost 2/2 of 43 functions / 86 loops"
        );
        outln!(
            r,
            "Paper reference (MILC):   p 54/187, size 53/161, trajecs/steps 12/39,"
        );
        outln!(
            r,
            "                          warms/niter 9/31, mass,beta,u0 never in loop bounds"
        );
        Ok(r)
    }
}
