//! Figure 4: Score-P instrumentation overhead of MILC under the three
//! filters.
//!
//! Paper shape: MILC's C kernels make far fewer helper calls per site than
//! LULESH's C++ accessors, so full/default instrumentation costs ~23%
//! (geometric mean) instead of 45×, and the taint-based filter ~1.6%.

use super::{out, outln, Scenario, ScenarioCtx, ScenarioResult};
use crate::{geomean, grid, overhead_percent, run_filtered, standard_filters};
use perf_taint::PtError;
use pt_measure::Filter;

pub struct Fig4OverheadMilc;

impl Scenario for Fig4OverheadMilc {
    fn name(&self) -> &'static str {
        "fig4_overhead_milc"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["figure", "milc", "overhead"]
    }

    fn summary(&self) -> &'static str {
        "Figure 4: instrumentation overhead of MILC per filter"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        let app = cx.milc();
        let analysis = cx.analysis(app)?;
        let prepared = analysis.prepared();
        let sizes = cx.milc_sizes();
        let ranks = cx.milc_ranks();
        let points = grid(app, "nx", &sizes, &ranks, &[]);

        let native = run_filtered(app, prepared, &points, &Filter::None, cx.threads);
        outln!(
            r,
            "Figure 4 — MILC instrumentation overhead [% over native]"
        );

        for (label, filter) in standard_filters(&analysis, app) {
            let instr = run_filtered(app, prepared, &points, &filter, cx.threads);
            outln!(
                r,
                "\n  {label} instrumentation ({} functions):",
                filter.instrumented_count(&app.module)
            );
            out!(r, "  {:>8}", "p\\size");
            for &s in &sizes {
                out!(r, " {s:>9}");
            }
            outln!(r);
            let mut factors = Vec::new();
            for (pi, &p) in ranks.iter().enumerate() {
                out!(r, "  {p:>8}");
                for si in 0..sizes.len() {
                    let idx = pi * sizes.len() + si;
                    let ov = overhead_percent(&instr[idx], &native[idx]);
                    factors.push(1.0 + ov / 100.0);
                    out!(r, " {ov:>8.1}%");
                }
                outln!(r);
            }
            let geo_pct = (geomean(&factors) - 1.0) * 100.0;
            outln!(r, "  -> geometric-mean overhead {geo_pct:.1}%");
            r.metric(format!("overhead_{label}_geomean_pct"), geo_pct);
        }
        outln!(
            r,
            "\nPaper shape: ~23% geomean for full and default, ~1.6% for taint-based."
        );
        Ok(r)
    }
}
