//! `security_taint` — the pluggable-policy scenario: the mini-SecSrv
//! workload under the security source/sink/sanitizer policy.
//!
//! Three things are proven before anything is timed:
//!
//! 1. **Bit-identity across engines.** The security-policy run produces
//!    the same [`pt_taint::RunOutput`] on the tier-0 decoded engine, the
//!    tier-1 forced engine, and the legacy reference — the same
//!    differential contract the param-set policy lives under.
//! 2. **Ground truth.** The app's sink ledger is known in closed form
//!    (audit sink: one check per request, one violation per *unsanitized*
//!    request — `pt_sanitize` provably clears labels or the sanitized
//!    half would violate too; config sink: a parameter base and a source
//!    base joined in one label).
//! 3. **Zero carve-outs.** The same module under the default param-set
//!    policy records *no* sink activity and retires the identical
//!    instruction stream — the security policy is a strict superset, not
//!    a fork, of the paper policy.
//!
//! The timed section then reports the security policy's label-propagation
//! cost over the param-set baseline (`wall_ratio_security_over_paramset`,
//! lower is better; ~1.0 means the extra lattice work is free on this
//! workload).

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use perf_taint::PtError;
use pt_apps::security::{SINK_AUDIT, SINK_CONFIG, SOURCE_CONFIG, SOURCE_REQUEST};
use pt_mpisim::{MachineConfig, MpiHandler};
use pt_taint::policy::source_base_name;
use pt_taint::{
    differential, tier, InterpConfig, Interpreter, PolicyKind, PreparedModule,
    ReferenceInterpreter, RunOutput, TierConfig, TierMode, TierPlan,
};

pub struct SecurityTaint;

impl Scenario for SecurityTaint {
    fn name(&self) -> &'static str {
        "security_taint"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["infra", "taint", "security", "policy"]
    }

    fn summary(&self) -> &'static str {
        "security source/sink/sanitizer policy on mini-SecSrv: 3-engine bit-identity, sink ledger ground truth, cost over param-set"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        let reps = if cx.quick { 15 } else { 31 };

        let app = pt_apps::security::build();
        let params = app.taint_run_params();
        let requests = params
            .iter()
            .find(|(n, _)| n == "requests")
            .map(|(_, v)| *v)
            .expect("mini-secsrv has a 'requests' parameter");
        let mut machine = MachineConfig::default();
        if let Some((_, p)) = params.iter().find(|(n, _)| n == "p") {
            machine.ranks = u32::try_from(*p).ok().filter(|&r| r > 0).ok_or_else(|| {
                PtError::Config(format!(
                    "parameter p must be a positive rank count, got {p}"
                ))
            })?;
        }
        let prepared = PreparedModule::compute(&app.module);
        // Pin tier-0 in both baselines so a stray PT_TIER=force cannot
        // blur the policy-vs-policy comparison.
        let tier_off = TierConfig {
            mode: TierMode::Off,
            ..TierConfig::default()
        };
        // Explicit data flows only: the control-flow taint extension is
        // the *perf-model* policy's addition — under `CtlFlowPolicy::All`
        // the request loop's trip count (tainted by `requests`) would be
        // joined back into every value produced in the loop, deliberately
        // re-tainting sanitized values. Classic security taint tracking
        // is the pure DFSan propagation, so both policies run with
        // control scopes off here to keep the comparison like-for-like.
        let security_cfg = InterpConfig {
            policy: pt_taint::CtlFlowPolicy::Off,
            taint_policy: PolicyKind::Security,
            tier: tier_off.clone(),
            ..Default::default()
        };
        let paramset_cfg = InterpConfig {
            policy: pt_taint::CtlFlowPolicy::Off,
            taint_policy: PolicyKind::ParamSet,
            tier: tier_off,
            ..Default::default()
        };

        let run_with = |config: &InterpConfig| -> Result<RunOutput, PtError> {
            Interpreter::new(
                &app.module,
                &prepared,
                MpiHandler::new(machine.clone()),
                params.clone(),
                config.clone(),
            )
            .run_named(&app.entry, &[])
            .map_err(|source| PtError::TaintRun {
                entry: app.entry.clone(),
                source,
            })
        };
        let run_reference = |config: &InterpConfig| -> Result<RunOutput, PtError> {
            ReferenceInterpreter::new(
                &app.module,
                &prepared,
                MpiHandler::new(machine.clone()),
                params.clone(),
                config.clone(),
            )
            .run_named(&app.entry, &[])
            .map_err(|source| PtError::TaintRun {
                entry: app.entry.clone(),
                source,
            })
        };

        // ---- 1. three-engine bit-identity under the security policy ----
        let tier_cfg = TierConfig {
            mode: TierMode::Force,
            ..TierConfig::default()
        };
        let spec = tier::specialize(
            &prepared.decoded,
            &TierPlan::all(app.module.functions.len()),
            &tier_cfg,
            None,
        );
        let decoded = run_with(&security_cfg)?;
        let tiered = {
            let mut interp = Interpreter::new(
                &app.module,
                &prepared,
                MpiHandler::new(machine.clone()),
                params.clone(),
                security_cfg.clone(),
            );
            interp.set_tier(&spec);
            interp
                .run_named(&app.entry, &[])
                .map_err(|source| PtError::TaintRun {
                    entry: app.entry.clone(),
                    source,
                })?
        };
        let reference = run_reference(&security_cfg)?;
        differential::compare_outputs(&decoded, &reference).map_err(|divergence| {
            PtError::Config(format!(
                "security_taint: decoded engine diverges from reference: {divergence}"
            ))
        })?;
        differential::compare_outputs(&tiered, &reference).map_err(|divergence| {
            PtError::Config(format!(
                "security_taint: tiered engine diverges from reference: {divergence}"
            ))
        })?;

        // ---- 2. sink-ledger ground truth -------------------------------
        let audit = decoded
            .records
            .sink_checks
            .get(&SINK_AUDIT)
            .copied()
            .ok_or_else(|| PtError::Config("security_taint: audit sink never checked".into()))?;
        let config_sink = decoded
            .records
            .sink_checks
            .get(&SINK_CONFIG)
            .copied()
            .ok_or_else(|| PtError::Config("security_taint: config sink never checked".into()))?;
        let expect = |ok: bool, what: &str| -> Result<(), PtError> {
            ok.then_some(())
                .ok_or_else(|| PtError::Config(format!("security_taint: {what}")))
        };
        expect(
            audit.checks == requests as u64,
            "audit sink must check every request",
        )?;
        expect(
            audit.violations == requests as u64 / 2,
            "exactly the unsanitized half must violate — sanitize provably clears labels",
        )?;
        let src_request = decoded
            .labels
            .param_index(&source_base_name(SOURCE_REQUEST));
        let src_config = decoded.labels.param_index(&source_base_name(SOURCE_CONFIG));
        let requests_base = decoded.labels.param_index("requests");
        expect(
            src_request.is_some_and(|i| audit.params.contains(i)),
            "audit violations must carry the request source base",
        )?;
        expect(
            requests_base.is_some_and(|i| !audit.params.contains(i)),
            "audit sink must not see parameter bases",
        )?;
        expect(
            config_sink.checks == 1 && config_sink.violations == 1,
            "config sink is checked once, unsanitized",
        )?;
        expect(
            requests_base.is_some_and(|i| config_sink.params.contains(i))
                && src_config.is_some_and(|i| config_sink.params.contains(i)),
            "config sink must join a parameter base with a source base",
        )?;

        // ---- 3. zero carve-outs under the default policy ---------------
        let baseline = run_with(&paramset_cfg)?;
        let baseline_ref = run_reference(&paramset_cfg)?;
        differential::compare_outputs(&baseline, &baseline_ref).map_err(|divergence| {
            PtError::Config(format!(
                "security_taint: param-set engines diverge: {divergence}"
            ))
        })?;
        expect(
            baseline.records.sink_checks.is_empty(),
            "the param-set policy must record no sink activity",
        )?;
        expect(
            baseline.insts == decoded.insts && baseline.time == decoded.time,
            "both policies must retire the identical instruction stream",
        )?;

        // ---- timed: security-policy cost over the param-set baseline ---
        let mut best_sec = f64::MAX;
        let mut best_base = f64::MAX;
        // Interleave so machine drift hits both policies equally.
        for _ in 0..reps {
            let (out, wall) = pt_util::time(|| run_with(&security_cfg));
            out?;
            best_sec = best_sec.min(wall);
            let (out, wall) = pt_util::time(|| run_with(&paramset_cfg));
            out?;
            best_base = best_base.min(wall);
        }
        let ratio = best_sec / best_base.max(1e-12);

        outln!(r, "Security taint policy on {} ({reps} reps)", app.name);
        outln!(
            r,
            "  engines bit-identical: decoded == tiered == reference ({} insts)",
            decoded.insts
        );
        outln!(
            r,
            "  audit sink #{SINK_AUDIT}: {} checks, {} violations (sanitized half clean)",
            audit.checks,
            audit.violations
        );
        outln!(
            r,
            "  config sink #{SINK_CONFIG}: {} check, {} violation; label joins parameter 'requests' with source '{}'",
            config_sink.checks,
            config_sink.violations,
            source_base_name(SOURCE_CONFIG)
        );
        outln!(
            r,
            "  param-set policy: no sink records, identical instruction stream (zero carve-outs)"
        );
        outln!(
            r,
            "  security/param-set wall ratio: {ratio:.3} ({:.4}s vs {:.4}s)",
            best_sec,
            best_base
        );

        r.metric("audit_violations", audit.violations as f64);
        r.metric("config_violations", config_sink.violations as f64);
        r.metric("security_wall_seconds", best_sec);
        r.metric("paramset_wall_seconds", best_base);
        r.metric("wall_ratio_security_over_paramset", ratio);
        Ok(r)
    }
}
