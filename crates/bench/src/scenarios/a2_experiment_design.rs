//! §A2: taint-derived parameter dependencies reduce the experiment design.
//!
//! Additive-only dependencies allow single-parameter sweeps sharing one
//! baseline (the paper's `p + s` example: 9 instead of 25 experiments);
//! multiplicative dependencies force joint sampling. The scenario also
//! reports the LULESH `iters` insight: a parameter that only multiplies the
//! whole computation linearly can be fixed, reducing dimensionality.

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use perf_taint::report::render_design;
use perf_taint::{design_experiments, PtError, SessionBuilder};

pub struct A2ExperimentDesign;

/// The paper's §A2 example: `foo` with two *sequential* loops over p and s.
fn papers_foo_example(r: &mut ScenarioResult) -> Result<(), PtError> {
    use pt_ir::{FunctionBuilder, Module, Type, Value};
    let mut m = Module::new("a2-foo");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let p = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let s = b.call_external("pt_param_i64", vec![Value::int(1)], Type::I64);
    b.for_loop(0i64, p, 1i64, |b, _| {
        b.call_external("pt_work_flops", vec![Value::int(10)], Type::Void);
    });
    b.for_loop(0i64, s, 1i64, |b, _| {
        b.call_external("pt_work_flops", vec![Value::int(10)], Type::Void);
    });
    b.ret(None);
    m.add_function(b.finish());

    let session = SessionBuilder::new(&m, "main").build();
    let analysis = session.taint_run(vec![("p".into(), 4), ("s".into(), 5)])?;
    let params = vec!["p".to_string(), "s".to_string()];
    let global = analysis.global_deps(&params);
    outln!(
        r,
        "== the paper's foo(p, s) example (two sequential loops) ==\n"
    );
    outln!(r, "  dependency structure: {}", global.render(&params));
    let design = design_experiments(&global, &params, &[5, 5]);
    outln!(r, "{}", render_design(&design));
    r.metric("foo_experiments_reduced", design.reduced as f64);
    Ok(())
}

impl Scenario for A2ExperimentDesign {
    fn name(&self) -> &'static str {
        "a2_experiment_design"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["appendix", "lulesh", "milc", "design"]
    }

    fn summary(&self) -> &'static str {
        "§A2: experiment-design reduction from taint dependencies"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        papers_foo_example(&mut r)?;

        // LULESH over (p, size): the halo exchange's count argument couples
        // size with p multiplicatively; compute kernels are size-only.
        let app = cx.lulesh();
        let analysis = cx.analysis(app)?;

        outln!(r, "== mini-lulesh ==\n");
        for params in [
            vec!["p".to_string(), "size".to_string()],
            vec![
                "p".to_string(),
                "size".to_string(),
                "regions".to_string(),
                "cost".to_string(),
            ],
        ] {
            let global = analysis.global_deps(&params);
            let names: Vec<String> = params.clone();
            outln!(
                r,
                "  dependency structure over {params:?}: {}",
                global.render(&names)
            );
            let values = vec![5; params.len()];
            let design = design_experiments(&global, &params, &values);
            outln!(r, "{}", render_design(&design));
            r.metric(
                format!("lulesh_{}d_experiments_reduced", params.len()),
                design.reduced as f64,
            );
        }

        // The iters insight: iters multiplies everything (it appears in
        // every monomial of the time-stepped kernels) and only linearly —
        // fix it.
        let with_iters = vec!["p".to_string(), "size".to_string(), "iters".to_string()];
        let global = analysis.global_deps(&with_iters);
        let iters_axis = 2usize;
        let in_all = global
            .monomials
            .iter()
            .filter(|m| m.contains(iters_axis))
            .count();
        outln!(
            r,
            "  `iters` appears in {}/{} monomials → multiplicative with the entire",
            in_all,
            global.monomials.len()
        );
        outln!(
            r,
            "  computation; linear effect ⇒ fix it and drop one dimension (§A2).\n"
        );

        // MILC over (p, nx): local volume = nx·ny·nz·nt/p makes nearly all
        // site loops multiplicative in (nx, p) — no additive shortcut.
        let app = cx.milc();
        let analysis = cx.analysis(app)?;
        outln!(r, "== mini-milc ==\n");
        let params = vec!["p".to_string(), "nx".to_string()];
        let global = analysis.global_deps(&params);
        outln!(
            r,
            "  dependency structure over {params:?}: {}",
            global.render(&params)
        );
        let design = design_experiments(&global, &params, &[5, 5]);
        outln!(r, "{}", render_design(&design));
        r.metric("milc_2d_experiments_reduced", design.reduced as f64);
        outln!(
            r,
            "Paper shape: additive structures collapse the design (9 vs 25);"
        );
        outln!(
            r,
            "multiplicative couplings (MILC's volume/p) need the full grid."
        );
        Ok(r)
    }
}
