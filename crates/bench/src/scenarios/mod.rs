//! The scenario registry: every paper figure/table as a named, taggable,
//! machine-reportable scenario.
//!
//! Each artifact of the paper's evaluation is a [`Scenario`]: a shared
//! implementation module under `scenarios/` that renders the same text the
//! historical one-binary-per-artifact harnesses printed *and* returns named
//! scalar [`metrics`](ScenarioResult::metrics) for the `BENCH_*.json`
//! report. The per-artifact binaries under `src/bin/` are thin wrappers
//! ([`run_cli`]); `bench_all` runs any tag/name selection in one process,
//! sharing one memoized static stage per app through a
//! [`SessionCache`], and `bench_compare` diffs two reports as a CI
//! perf-regression gate.
//!
//! Metric convention: **lower is better** for every metric — costs, error
//! percentages, overheads, miss counts. Quantities that improve upward
//! (coverage, savings) are stored as their complement so one rule gates
//! them all (see `crates/bench/README.md`).

use perf_taint::{Analysis, PtError, Session, SessionCache};
use pt_apps::AppSpec;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

mod a2_experiment_design;
mod a3_cost_summary;
mod ablation_ctlflow;
mod b1_noise_resilience;
mod b2_intrusion;
mod c2_experiment_validation;
mod fig3_overhead_lulesh;
mod fig4_overhead_milc;
mod fig5_contention;
mod incremental_edit;
mod security_taint;
mod serve_saturation;
mod serve_throughput;
mod table1_config;
mod table2_overview;
mod table3_param_pruning;
mod taint_throughput;

/// Append a line to a [`ScenarioResult`]'s text (infallible `writeln!`).
macro_rules! outln {
    ($r:expr) => {{
        $r.text.push('\n');
    }};
    ($r:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        writeln!($r.text, $($arg)*).unwrap();
    }};
}
/// Append text without a newline (infallible `write!`).
macro_rules! out {
    ($r:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        write!($r.text, $($arg)*).unwrap();
    }};
}
pub(crate) use {out, outln};

/// What one scenario run produced: the human-readable rendering (exactly
/// what the historical binary printed) plus named scalar metrics for the
/// machine-readable report.
#[derive(Debug, Default, Clone)]
pub struct ScenarioResult {
    pub text: String,
    /// Lower-is-better scalars (see the module docs for the convention).
    pub metrics: BTreeMap<String, f64>,
}

impl ScenarioResult {
    pub fn new() -> ScenarioResult {
        ScenarioResult::default()
    }

    /// Record a metric. Non-finite values are dropped (JSON cannot carry
    /// them, and a NaN would poison every comparison downstream).
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        if value.is_finite() {
            self.metrics.insert(name.into(), value);
        }
    }
}

/// One paper artifact, runnable against a shared [`ScenarioCtx`].
pub trait Scenario: Sync {
    /// Stable identifier (doubles as the historical binary name).
    fn name(&self) -> &'static str;
    /// Filter tags: artifact kind (`figure`/`table`/`appendix`/`ablation`),
    /// apps involved, and topic.
    fn tags(&self) -> &'static [&'static str];
    /// One-line description for `bench_all --list`.
    fn summary(&self) -> &'static str;
    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError>;
}

/// Shared run context: quick-mode sweep reductions, the per-scenario
/// thread budget, lazily built evaluation apps, and the cross-scenario
/// [`SessionCache`] that shares each app's static stage.
pub struct ScenarioCtx {
    /// Reduced sweeps for CI / `cargo test` (still ≥3 values per modeled
    /// axis so the Extra-P searches stay well-posed).
    pub quick: bool,
    /// Worker threads each scenario may use for its internal sweeps.
    pub threads: usize,
    lulesh: OnceLock<AppSpec>,
    milc: OnceLock<AppSpec>,
    cache: SessionCache,
    /// Memoized representative taint runs, keyed by app name (the slot
    /// pattern mirrors `SessionCache`: reserve under the lock, compute via
    /// `OnceLock` so concurrent scenarios block on one run instead of
    /// repeating it). Errors are cached as rendered messages — a failing
    /// app fails every scenario identically without rerunning.
    #[allow(clippy::type_complexity)]
    analyses: Mutex<BTreeMap<String, Arc<OnceLock<Result<Arc<Analysis>, String>>>>>,
}

impl ScenarioCtx {
    pub fn new(quick: bool) -> ScenarioCtx {
        ScenarioCtx::with_threads(quick, crate::threads())
    }

    pub fn with_threads(quick: bool, threads: usize) -> ScenarioCtx {
        ScenarioCtx {
            quick,
            threads: threads.max(1),
            lulesh: OnceLock::new(),
            milc: OnceLock::new(),
            cache: SessionCache::new(),
            analyses: Mutex::new(BTreeMap::new()),
        }
    }

    /// The mini-LULESH app, built once per context.
    pub fn lulesh(&self) -> &AppSpec {
        self.lulesh.get_or_init(pt_apps::lulesh::build)
    }

    /// The mini-MILC app, built once per context.
    pub fn milc(&self) -> &AppSpec {
        self.milc.get_or_init(pt_apps::milc::build)
    }

    /// A session over `app` sharing the context-wide static stage.
    pub fn session<'m>(&self, app: &'m AppSpec) -> Session<'m> {
        self.cache.get_or_compute(&app.module, &app.entry)
    }

    /// The representative taint run of `app`, computed once per context:
    /// the run is deterministic (fixed `taint_run_params`), so every
    /// scenario shares one `Analysis` instead of repeating the dynamic
    /// stage per artifact.
    pub fn analysis(&self, app: &AppSpec) -> Result<Arc<Analysis>, PtError> {
        let slot = {
            let mut map = self.analyses.lock().unwrap();
            map.entry(app.name.clone()).or_default().clone()
        };
        slot.get_or_init(|| {
            self.session(app)
                .taint_run(app.taint_run_params())
                .map(Arc::new)
                .map_err(|e| e.to_string())
        })
        .clone()
        .map_err(PtError::Config)
    }

    /// LULESH `size` sweep (quick mode keeps 3 of the 5 paper values).
    pub fn lulesh_sizes(&self) -> Vec<i64> {
        if self.quick {
            vec![12, 16, 20]
        } else {
            crate::lulesh_sizes()
        }
    }

    /// LULESH rank counts (quick mode keeps 3 cube numbers).
    pub fn lulesh_ranks(&self) -> Vec<i64> {
        if self.quick {
            vec![8, 27, 64]
        } else {
            crate::lulesh_ranks()
        }
    }

    /// MILC `nx` sweep.
    pub fn milc_sizes(&self) -> Vec<i64> {
        if self.quick {
            vec![32, 64, 128]
        } else {
            crate::milc_sizes()
        }
    }

    /// MILC rank counts.
    pub fn milc_ranks(&self) -> Vec<i64> {
        if self.quick {
            vec![4, 8, 16]
        } else {
            crate::milc_ranks()
        }
    }

    /// Ranks-per-node sweep for the §C1 contention experiment.
    pub fn contention_rpn(&self) -> Vec<u32> {
        if self.quick {
            vec![2, 6, 12, 18]
        } else {
            vec![2, 4, 6, 8, 12, 16, 18]
        }
    }

    /// Rank counts for the §C2 validation: must straddle the p = 8
    /// algorithm switch with ≥2 points on each side even in quick mode.
    pub fn c2_ranks(&self) -> Vec<i64> {
        if self.quick {
            vec![4, 8, 16, 32]
        } else {
            crate::milc_ranks()
        }
    }
}

/// All registered scenarios, in the paper's presentation order.
pub fn registry() -> &'static [&'static dyn Scenario] {
    &[
        &table1_config::Table1Config,
        &table2_overview::Table2Overview,
        &table3_param_pruning::Table3ParamPruning,
        &fig3_overhead_lulesh::Fig3OverheadLulesh,
        &fig4_overhead_milc::Fig4OverheadMilc,
        &fig5_contention::Fig5Contention,
        &a2_experiment_design::A2ExperimentDesign,
        &a3_cost_summary::A3CostSummary,
        &b1_noise_resilience::B1NoiseResilience,
        &b2_intrusion::B2Intrusion,
        &c2_experiment_validation::C2ExperimentValidation,
        &ablation_ctlflow::AblationCtlflow,
        &serve_throughput::ServeThroughput,
        &serve_saturation::ServeSaturation,
        &taint_throughput::TaintThroughput,
        &security_taint::SecurityTaint,
        &incremental_edit::IncrementalEdit,
    ]
}

/// Look a scenario up by its exact name.
pub fn find(name: &str) -> Option<&'static dyn Scenario> {
    registry().iter().copied().find(|s| s.name() == name)
}

/// Scenarios matching any of `filters` (exact name or exact tag; an empty
/// filter list selects everything).
pub fn matching(filters: &[String]) -> Vec<&'static dyn Scenario> {
    registry()
        .iter()
        .copied()
        .filter(|s| {
            filters.is_empty()
                || filters
                    .iter()
                    .any(|f| s.name() == f || s.tags().contains(&f.as_str()))
        })
        .collect()
}

/// Entry point for the thin per-artifact binaries: run one scenario at
/// full (non-quick) scale and print its text rendering.
pub fn run_cli(name: &str) -> Result<(), PtError> {
    let scenario = find(name).unwrap_or_else(|| panic!("scenario '{name}' is not registered"));
    let cx = ScenarioCtx::new(false);
    let result = scenario.run(&cx)?;
    print!("{}", result.text);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_tagged() {
        let mut names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        let total = names.len();
        assert_eq!(
            total, 17,
            "all 12 paper artifacts plus the service, saturation, engine, security-policy, and edit-loop scenarios are registered"
        );
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total, "scenario names must be unique");
        for s in registry() {
            assert!(!s.tags().is_empty(), "{} has no tags", s.name());
            assert!(!s.summary().is_empty(), "{} has no summary", s.name());
        }
    }

    #[test]
    fn find_and_matching_select_by_name_and_tag() {
        assert!(find("fig3_overhead_lulesh").is_some());
        assert!(find("nope").is_none());
        assert_eq!(matching(&[]).len(), registry().len());
        let lulesh: Vec<_> = matching(&["lulesh".to_string()])
            .iter()
            .map(|s| s.name())
            .collect();
        assert!(lulesh.contains(&"fig3_overhead_lulesh"));
        assert!(!lulesh.contains(&"fig4_overhead_milc"));
        let by_name = matching(&["table1_config".to_string()]);
        assert_eq!(by_name.len(), 1);
    }
}
