//! §C2: validating the experiment design — qualitative behavior changes.
//!
//! MILC's gather switches from a linear exchange to a collective when the
//! communicator grows beyond 8 ranks. One PMNF cannot represent both
//! regimes: the paper observes the largest black-box/white-box model
//! differences exactly on MPI_Isend and the internal gather. The taint
//! analysis instruments tainted branches, so per-configuration coverage
//! shows both sides executing within the modeling domain — a warning that
//! the design must be split at the boundary.

use super::{outln, Scenario, ScenarioCtx, ScenarioResult};
use crate::machine;
use perf_taint::report::render_segmentation;
use perf_taint::validate::detect_segmentation;
use perf_taint::PtError;
use pt_extrap::{fit_single_param, SearchSpace};
use pt_measure::{run_point, Filter, SweepPoint};

pub struct C2ExperimentValidation;

impl Scenario for C2ExperimentValidation {
    fn name(&self) -> &'static str {
        "c2_experiment_validation"
    }

    fn tags(&self) -> &'static [&'static str] {
        &["appendix", "milc", "validation", "segmentation"]
    }

    fn summary(&self) -> &'static str {
        "§C2: qualitative-change detection across the modeling domain"
    }

    fn run(&self, cx: &ScenarioCtx) -> Result<ScenarioResult, PtError> {
        let mut r = ScenarioResult::new();
        let app = cx.milc();
        let ranks = cx.c2_ranks();

        // Coverage runs: one (cheap) taint/coverage run per rank count,
        // batched through one session so the static stage is computed
        // exactly once (and shared context-wide through the cache).
        let session = cx.session(app);
        let param_sets: Vec<Vec<(String, i64)>> = ranks
            .iter()
            .map(|&p| app.sweep_params(&[("nx", 16), ("p", p)]))
            .collect();
        let mut observations = Vec::new();
        let mut config_names = Vec::new();
        for (&p, result) in ranks.iter().zip(session.analyze_batch(&param_sets)) {
            let analysis = result?;
            observations.push(analysis.branch_observations(&app.module));
            config_names.push(format!("p={p}"));
        }
        let warnings = detect_segmentation(&observations);
        outln!(
            r,
            "§C2 — experiment-design validation on mini-MILC, p ∈ {ranks:?}\n"
        );
        outln!(r, "{}", render_segmentation(&warnings, &config_names));
        // The gather's algorithm switch must be detected: count the misses
        // (0 = at least one warning fired, as the paper observes).
        r.metric(
            "segmentation_warnings_missing",
            if warnings.is_empty() { 1.0 } else { 0.0 },
        );

        // Show the quantitative consequence: the gather's time across p has
        // two regimes that a single PMNF fits poorly, while per-segment
        // fits work.
        let statics = session.static_analysis();
        let prepared = &statics.prepared;
        let probe = Filter::None.probe_vector(&app.module, 0.0);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &p in &ranks {
            let point = SweepPoint {
                params: app.sweep_params(&[("nx", 64), ("p", p)]),
                machine: machine(p),
            };
            let prof = run_point(&app.module, prepared, &app.entry, &point, &probe).unwrap();
            let t = prof
                .functions
                .get("do_gather")
                .map(|f| f.inclusive)
                .unwrap_or(0.0);
            xs.push(p as f64);
            ys.push(t);
        }
        outln!(r, "  do_gather inclusive time across p:");
        for (x, y) in xs.iter().zip(&ys) {
            outln!(r, "    p={x:<4} {y:.3e} s");
        }
        let space = SearchSpace::default();
        let whole = fit_single_param(&xs, &ys, 0, &space);
        outln!(
            r,
            "\n  one model over the whole domain:  {}  (SMAPE {:.1}%)",
            whole.model.render(&["p".to_string()]),
            whole.quality.smape
        );
        r.metric("gather_whole_domain_smape_pct", whole.quality.smape);
        let boundary = xs.iter().position(|&x| x > 8.0).unwrap_or(1).max(2);
        let left = fit_single_param(&xs[..boundary], &ys[..boundary], 0, &space);
        let right = fit_single_param(&xs[boundary - 1..], &ys[boundary - 1..], 0, &space);
        outln!(
            r,
            "  per-segment models:  p≤8: {}   p>8: {}",
            left.model.render(&["p".to_string()]),
            right.model.render(&["p".to_string()])
        );
        r.metric(
            "gather_segmented_smape_pct",
            left.quality.smape.max(right.quality.smape),
        );
        // Automatic segmented search (Ilyas et al., the remedy the paper
        // cites):
        let auto = pt_extrap::fit_segmented(&xs, &ys, 0, &space, 2, 0.9);
        outln!(r, "  automatic segmented fit: {}", auto.render("p"));
        outln!(
            r,
            "\nPaper shape: behavior differs qualitatively between small and large"
        );
        outln!(
            r,
            "rank counts; the tainted-branch coverage pinpoints the boundary so the"
        );
        outln!(r, "user can split the experiment design.");
        Ok(r)
    }
}
