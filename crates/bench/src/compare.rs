//! Diffing two `BENCH_*.json` reports — the CI perf-regression gate.
//!
//! Every metric in a report follows the lower-is-better convention (see
//! [`crate::scenarios`]), so one rule gates them all: a metric regresses
//! when it grows beyond its tolerance, improves when it shrinks beyond it.
//! Wall times are the only nondeterministic numbers (everything else comes
//! out of a seeded simulation) and get a much looser tolerance of their
//! own. A scenario disappearing from the new report, failing where it used
//! to pass, or dropping a metric it used to publish is always a regression
//! — silence must never read as health.

use perf_taint::report::{BenchReport, RunStatus};

/// Relative + absolute slack for one comparison. A delta only counts when
/// it exceeds **both** bounds, so tiny absolute jitter on near-zero values
/// and proportional jitter on large ones are both forgiven.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Fraction of the old value (0.1 = 10%).
    pub rel: f64,
    /// Absolute slack in the metric's own unit.
    pub abs: f64,
}

impl Tolerance {
    pub fn new(rel: f64, abs: f64) -> Tolerance {
        Tolerance { rel, abs }
    }

    fn allowance(&self, old: f64) -> f64 {
        self.abs.max(self.rel * old.abs())
    }

    /// Did `new` grow past the allowance (lower-is-better regression)?
    pub fn regressed(&self, old: f64, new: f64) -> bool {
        new - old > self.allowance(old)
    }

    /// Did `new` shrink past the allowance (improvement worth reporting)?
    pub fn improved(&self, old: f64, new: f64) -> bool {
        old - new > self.allowance(old)
    }
}

/// Gate metrics the CI gate must always see in the *new* report. A
/// baseline regenerated after a metric silently vanished would otherwise
/// let the gate pass with nothing to compare — silence must never read
/// as health.
pub const REQUIRED_GATE_METRICS: &[(&str, &str)] = &[
    ("taint_throughput", "wall_ratio_decoded_over_legacy"),
    ("taint_throughput", "wall_ratio_tiered_over_decoded"),
    ("serve_saturation", "saturated_p99_wall_seconds"),
    ("incremental_edit", "edit_loop_warm_wall_seconds"),
];

/// Gate thresholds. Defaults: deterministic metrics move ≤10% (or 1e-9
/// absolute — exact-count metrics like violation tallies effectively gate
/// at equality); wall times move ≤50% and ≥0.25 s before they count.
#[derive(Debug, Clone)]
pub struct CompareConfig {
    pub metric: Tolerance,
    pub wall: Tolerance,
    /// `(scenario, metric)` pairs that must be present (with an `Ok`
    /// scenario status) in the new report — their absence is a regression
    /// even when the baseline lacks them too. Empty by default; the CI
    /// binary uses [`CompareConfig::ci_gate`].
    pub required: Vec<(String, String)>,
}

impl Default for CompareConfig {
    fn default() -> CompareConfig {
        CompareConfig {
            metric: Tolerance::new(0.10, 1e-9),
            wall: Tolerance::new(0.50, 0.25),
            required: Vec::new(),
        }
    }
}

impl CompareConfig {
    /// The configuration the `bench_compare` CI gate runs with:
    /// default tolerances plus [`REQUIRED_GATE_METRICS`].
    pub fn ci_gate() -> CompareConfig {
        CompareConfig {
            required: REQUIRED_GATE_METRICS
                .iter()
                .map(|(s, m)| (s.to_string(), m.to_string()))
                .collect(),
            ..Default::default()
        }
    }
}

/// The gate's verdict: regressions fail CI, improvements and notes inform.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Comparison {
    pub regressions: Vec<String>,
    pub improvements: Vec<String>,
    pub notes: Vec<String>,
}

impl Comparison {
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Render the verdict as the gate's console output.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for line in &self.regressions {
            s.push_str(&format!("REGRESSION  {line}\n"));
        }
        for line in &self.improvements {
            s.push_str(&format!("improvement {line}\n"));
        }
        for line in &self.notes {
            s.push_str(&format!("note        {line}\n"));
        }
        if self.regressions.is_empty() {
            s.push_str("perf gate: OK — no regressions\n");
        } else {
            s.push_str(&format!(
                "perf gate: FAIL — {} regression(s)\n",
                self.regressions.len()
            ));
        }
        s
    }
}

/// Compare `new` against the `old` baseline. Errors only on unusable
/// input (schema mismatch); everything else is a verdict.
pub fn compare_reports(
    old: &BenchReport,
    new: &BenchReport,
    cfg: &CompareConfig,
) -> Result<Comparison, String> {
    if old.schema != new.schema {
        return Err(format!(
            "schema mismatch: baseline v{} vs new v{} — regenerate the baseline",
            old.schema, new.schema
        ));
    }
    let mut out = Comparison::default();
    for old_s in &old.scenarios {
        let name = &old_s.name;
        let Some(new_s) = new.scenario(name) else {
            out.regressions
                .push(format!("{name}: scenario missing from new report"));
            continue;
        };
        match (&old_s.status, &new_s.status) {
            (RunStatus::Ok, RunStatus::Error(e)) => {
                out.regressions.push(format!("{name}: now failing ({e})"));
                continue; // metrics of a failed run are not comparable
            }
            (RunStatus::Error(_), RunStatus::Ok) => {
                out.improvements
                    .push(format!("{name}: previously failing, now passing"));
                // The baseline's wall time (time-to-fail) and metrics are
                // not comparable to a passing run — don't gate on them.
                continue;
            }
            (RunStatus::Error(_), RunStatus::Error(e)) => {
                out.notes.push(format!("{name}: still failing ({e})"));
                continue;
            }
            (RunStatus::Ok, RunStatus::Ok) => {}
        }
        if cfg.wall.regressed(old_s.wall_seconds, new_s.wall_seconds) {
            out.regressions.push(format!(
                "{name}: wall time {:.3}s -> {:.3}s (+{:.0}%)",
                old_s.wall_seconds,
                new_s.wall_seconds,
                100.0 * (new_s.wall_seconds - old_s.wall_seconds) / old_s.wall_seconds.max(1e-12)
            ));
        } else if cfg.wall.improved(old_s.wall_seconds, new_s.wall_seconds) {
            out.improvements.push(format!(
                "{name}: wall time {:.3}s -> {:.3}s",
                old_s.wall_seconds, new_s.wall_seconds
            ));
        }
        for (metric, &old_v) in &old_s.metrics {
            let Some(&new_v) = new_s.metrics.get(metric) else {
                out.regressions
                    .push(format!("{name}: metric '{metric}' disappeared"));
                continue;
            };
            // Metrics named `*_wall_seconds` are real wall-clock timings
            // (e.g. model-search cost) — nondeterministic like the
            // scenario wall time, so they share its loose tolerance.
            // `wall_ratio_*` metrics are quotients of two wall timings
            // (the engine-speedup gate): machine-speed-independent but
            // still timing-derived, so they get the loose tolerance too,
            // as do `*_shed_fraction` metrics (how much load a saturated
            // server sheds depends on machine-speed race outcomes).
            let cfg = if metric.ends_with("_wall_seconds")
                || metric.starts_with("wall_ratio_")
                || metric.ends_with("_shed_fraction")
            {
                &cfg.wall
            } else {
                &cfg.metric
            };
            if cfg.regressed(old_v, new_v) {
                out.regressions
                    .push(format!("{name}: {metric} {old_v:.6} -> {new_v:.6} (worse)"));
            } else if cfg.improved(old_v, new_v) {
                out.improvements
                    .push(format!("{name}: {metric} {old_v:.6} -> {new_v:.6}"));
            }
        }
        for metric in new_s.metrics.keys() {
            if !old_s.metrics.contains_key(metric) {
                out.notes
                    .push(format!("{name}: new metric '{metric}' (not in baseline)"));
            }
        }
    }
    for new_s in &new.scenarios {
        if old.scenario(&new_s.name).is_none() {
            out.notes
                .push(format!("{}: new scenario (not in baseline)", new_s.name));
        }
    }
    // Required gate metrics must exist in the new report regardless of
    // what the baseline recorded — a regenerated baseline must not launder
    // a vanished gate metric into silence.
    for (scen, metric) in &cfg.required {
        let present = new
            .scenario(scen)
            .is_some_and(|s| matches!(s.status, RunStatus::Ok) && s.metrics.contains_key(metric));
        if !present {
            out.regressions.push(format!(
                "{scen}: required gate metric '{metric}' missing from new report"
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_taint::report::{ScenarioRecord, BENCH_SCHEMA_VERSION};
    use std::collections::BTreeMap;

    fn record(name: &str, wall: f64, metrics: &[(&str, f64)]) -> ScenarioRecord {
        ScenarioRecord {
            name: name.into(),
            tags: vec!["test".into()],
            status: RunStatus::Ok,
            wall_seconds: wall,
            metrics: metrics
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect::<BTreeMap<_, _>>(),
        }
    }

    fn report(scenarios: Vec<ScenarioRecord>) -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA_VERSION,
            git_sha: "test".into(),
            created_unix: 0,
            quick: true,
            scenarios,
        }
    }

    #[test]
    fn unchanged_reports_pass_the_gate() {
        let old = report(vec![record("s", 1.0, &[("cost", 10.0)])]);
        let cmp = compare_reports(&old, &old.clone(), &CompareConfig::default()).unwrap();
        assert!(!cmp.has_regressions());
        assert!(cmp.improvements.is_empty());
        assert!(cmp.render().contains("perf gate: OK"));
    }

    #[test]
    fn improvement_is_reported_but_passes() {
        let old = report(vec![record("s", 1.0, &[("cost", 10.0)])]);
        let new = report(vec![record("s", 1.0, &[("cost", 5.0)])]);
        let cmp = compare_reports(&old, &new, &CompareConfig::default()).unwrap();
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.improvements.len(), 1);
        assert!(cmp.improvements[0].contains("cost"));
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        let old = report(vec![record("s", 1.0, &[("cost", 10.0)])]);
        // +50% on a deterministic metric: well past the 10% tolerance.
        let new = report(vec![record("s", 1.0, &[("cost", 15.0)])]);
        let cmp = compare_reports(&old, &new, &CompareConfig::default()).unwrap();
        assert!(cmp.has_regressions());
        assert!(cmp.regressions[0].contains("cost"));
        assert!(cmp.render().contains("perf gate: FAIL"));
    }

    #[test]
    fn within_tolerance_changes_are_ignored() {
        let old = report(vec![record("s", 1.0, &[("cost", 10.0)])]);
        let new = report(vec![record("s", 1.1, &[("cost", 10.5)])]); // +5%
        let cmp = compare_reports(&old, &new, &CompareConfig::default()).unwrap();
        assert!(!cmp.has_regressions());
        assert!(cmp.improvements.is_empty());
    }

    #[test]
    fn missing_scenario_and_missing_metric_are_regressions() {
        let old = report(vec![
            record("gone", 1.0, &[]),
            record("kept", 1.0, &[("a", 1.0), ("b", 2.0)]),
        ]);
        let new = report(vec![record("kept", 1.0, &[("a", 1.0)])]);
        let cmp = compare_reports(&old, &new, &CompareConfig::default()).unwrap();
        assert_eq!(cmp.regressions.len(), 2);
        assert!(cmp.regressions.iter().any(|m| m.contains("gone")));
        assert!(cmp.regressions.iter().any(|m| m.contains("'b'")));
    }

    #[test]
    fn new_scenarios_and_metrics_are_notes_not_failures() {
        let old = report(vec![record("s", 1.0, &[("a", 1.0)])]);
        let new = report(vec![
            record("s", 1.0, &[("a", 1.0), ("extra", 3.0)]),
            record("brand_new", 1.0, &[]),
        ]);
        let cmp = compare_reports(&old, &new, &CompareConfig::default()).unwrap();
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.notes.len(), 2);
    }

    #[test]
    fn status_flips_are_tracked() {
        let mut failing = record("s", 0.01, &[]);
        failing.status = RunStatus::Error("boom".into());
        // A passing run is much slower than the old time-to-fail: the fix
        // must not be reported as a wall-time regression.
        let passing = record("s", 5.0, &[("cost", 1.0)]);

        let cmp = compare_reports(
            &report(vec![passing.clone()]),
            &report(vec![failing.clone()]),
            &CompareConfig::default(),
        )
        .unwrap();
        assert!(cmp.has_regressions());
        assert!(cmp.regressions[0].contains("now failing"));

        let cmp = compare_reports(
            &report(vec![failing]),
            &report(vec![passing]),
            &CompareConfig::default(),
        )
        .unwrap();
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.improvements.len(), 1);
    }

    #[test]
    fn wall_ratio_metrics_use_the_loose_tolerance() {
        let old = report(vec![record(
            "s",
            1.0,
            &[("wall_ratio_decoded_over_legacy", 0.45)],
        )]);
        // +30%: inside the loose tolerance — timing noise.
        let cmp = compare_reports(
            &old,
            &report(vec![record(
                "s",
                1.0,
                &[("wall_ratio_decoded_over_legacy", 0.58)],
            )]),
            &CompareConfig::default(),
        )
        .unwrap();
        assert!(!cmp.has_regressions());
        // A deterministic metric with the same delta would regress.
        let old = report(vec![record("s", 1.0, &[("miss_count", 0.45)])]);
        let cmp = compare_reports(
            &old,
            &report(vec![record("s", 1.0, &[("miss_count", 0.58)])]),
            &CompareConfig::default(),
        )
        .unwrap();
        assert!(cmp.has_regressions());
    }

    #[test]
    fn shed_fraction_metrics_use_the_loose_tolerance() {
        let old = report(vec![record("s", 1.0, &[("saturated_shed_fraction", 0.40)])]);
        // +30%: timing-derived, forgiven (also under the 0.25 absolute floor).
        let cmp = compare_reports(
            &old,
            &report(vec![record("s", 1.0, &[("saturated_shed_fraction", 0.52)])]),
            &CompareConfig::default(),
        )
        .unwrap();
        assert!(!cmp.has_regressions());
    }

    #[test]
    fn wall_time_uses_the_loose_tolerance() {
        let old = report(vec![record("s", 1.0, &[])]);
        // +30% wall: inside the 50% tolerance — noise, not regression.
        let cmp = compare_reports(
            &old,
            &report(vec![record("s", 1.3, &[])]),
            &CompareConfig::default(),
        )
        .unwrap();
        assert!(!cmp.has_regressions());
        // +100% wall and past the absolute floor: regression.
        let cmp = compare_reports(
            &old,
            &report(vec![record("s", 2.0, &[])]),
            &CompareConfig::default(),
        )
        .unwrap();
        assert!(cmp.has_regressions());
        // Tiny scenarios never trip the absolute floor.
        let tiny_old = report(vec![record("s", 0.01, &[])]);
        let cmp = compare_reports(
            &tiny_old,
            &report(vec![record("s", 0.05, &[])]),
            &CompareConfig::default(),
        )
        .unwrap();
        assert!(!cmp.has_regressions());
    }

    #[test]
    fn wall_seconds_metrics_share_the_loose_tolerance() {
        let old = report(vec![record(
            "s",
            1.0,
            &[("model_search_wall_seconds", 0.10), ("cost", 0.10)],
        )]);
        // +30% on both: the timing metric is forgiven (under the 0.25 s
        // absolute floor), the deterministic one regresses.
        let new = report(vec![record(
            "s",
            1.0,
            &[("model_search_wall_seconds", 0.13), ("cost", 0.13)],
        )]);
        let cmp = compare_reports(&old, &new, &CompareConfig::default()).unwrap();
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("cost"));
    }

    #[test]
    fn missing_required_gate_metric_is_a_regression_even_when_baseline_lacks_it() {
        // Neither report carries the gate metric: the per-metric diff has
        // nothing to flag, so without the required list this would pass
        // silently.
        let old = report(vec![record("other", 1.0, &[("cost", 1.0)])]);
        let new = report(vec![record("other", 1.0, &[("cost", 1.0)])]);
        let cmp = compare_reports(&old, &new, &CompareConfig::default()).unwrap();
        assert!(!cmp.has_regressions(), "default config has no requirements");

        let cmp = compare_reports(&old, &new, &CompareConfig::ci_gate()).unwrap();
        assert!(cmp.has_regressions());
        assert!(cmp.regressions[0].contains("required gate metric"));
        assert!(cmp.regressions[0].contains("wall_ratio_decoded_over_legacy"));

        // All gate metrics present (and Ok) in the new report: satisfied.
        let ok = report(vec![
            record("other", 1.0, &[("cost", 1.0)]),
            record(
                "taint_throughput",
                1.0,
                &[
                    ("wall_ratio_decoded_over_legacy", 0.4),
                    ("wall_ratio_tiered_over_decoded", 0.8),
                ],
            ),
            record(
                "serve_saturation",
                1.0,
                &[("saturated_p99_wall_seconds", 0.2)],
            ),
            record(
                "incremental_edit",
                1.0,
                &[("edit_loop_warm_wall_seconds", 0.1)],
            ),
        ]);
        let cmp = compare_reports(&old, &ok, &CompareConfig::ci_gate()).unwrap();
        assert!(!cmp.has_regressions());

        // One of several gate metrics missing still fails.
        let partial = report(vec![record(
            "taint_throughput",
            1.0,
            &[("wall_ratio_decoded_over_legacy", 0.4)],
        )]);
        let cmp = compare_reports(&old, &partial, &CompareConfig::ci_gate()).unwrap();
        assert!(cmp
            .regressions
            .iter()
            .any(|m| m.contains("saturated_p99_wall_seconds")));

        // Scenario present but failing: the metric is not trustworthy.
        let mut failing = record(
            "taint_throughput",
            1.0,
            &[("wall_ratio_decoded_over_legacy", 0.4)],
        );
        failing.status = RunStatus::Error("boom".into());
        let failing_report = report(vec![record("other", 1.0, &[("cost", 1.0)]), failing]);
        let cmp = compare_reports(&old, &failing_report, &CompareConfig::ci_gate()).unwrap();
        assert!(cmp.has_regressions());
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let old = report(vec![]);
        let mut new = report(vec![]);
        new.schema = BENCH_SCHEMA_VERSION + 1;
        assert!(compare_reports(&old, &new, &CompareConfig::default()).is_err());
    }
}
