//! §C2: validating the experiment design — qualitative behavior changes.
//!
//! MILC's gather switches from a linear exchange to a collective when the
//! communicator grows beyond 8 ranks. One PMNF cannot represent both
//! regimes: the paper observes the largest black-box/white-box model
//! differences exactly on MPI_Isend and the internal gather. The taint
//! analysis instruments tainted branches, so per-configuration coverage
//! shows both sides executing within the modeling domain — a warning that
//! the design must be split at the boundary.

use perf_taint::report::render_segmentation;
use perf_taint::validate::detect_segmentation;
use perf_taint::PtError;
use pt_bench::*;
use pt_extrap::{fit_single_param, SearchSpace};
use pt_measure::{run_point, Filter, SweepPoint};

fn main() -> Result<(), PtError> {
    let app = pt_apps::milc::build();
    let ranks = milc_ranks();

    // Coverage runs: one (cheap) taint/coverage run per rank count, batched
    // through one session so the static stage is computed exactly once.
    let session = session_for(&app);
    let param_sets: Vec<Vec<(String, i64)>> = ranks
        .iter()
        .map(|&p| app.sweep_params(&[("nx", 16), ("p", p)]))
        .collect();
    let mut observations = Vec::new();
    let mut config_names = Vec::new();
    for (&p, result) in ranks.iter().zip(session.analyze_batch(&param_sets)) {
        let analysis = result?;
        observations.push(analysis.branch_observations(&app.module));
        config_names.push(format!("p={p}"));
    }
    let warnings = detect_segmentation(&observations);
    println!("§C2 — experiment-design validation on mini-MILC, p ∈ {ranks:?}\n");
    println!("{}", render_segmentation(&warnings, &config_names));

    // Show the quantitative consequence: the gather's time across p has two
    // regimes that a single PMNF fits poorly, while per-segment fits work.
    let statics = session.static_analysis();
    let prepared = &statics.prepared;
    let probe = Filter::None.probe_vector(&app.module, 0.0);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &p in &ranks {
        let point = SweepPoint {
            params: app.sweep_params(&[("nx", 64), ("p", p)]),
            machine: machine(p),
        };
        let prof = run_point(&app.module, prepared, &app.entry, &point, &probe).unwrap();
        let t = prof
            .functions
            .get("do_gather")
            .map(|f| f.inclusive)
            .unwrap_or(0.0);
        xs.push(p as f64);
        ys.push(t);
    }
    println!("  do_gather inclusive time across p:");
    for (x, y) in xs.iter().zip(&ys) {
        println!("    p={x:<4} {y:.3e} s");
    }
    let space = SearchSpace::default();
    let whole = fit_single_param(&xs, &ys, 0, &space);
    println!(
        "\n  one model over the whole domain:  {}  (SMAPE {:.1}%)",
        whole.model.render(&["p".to_string()]),
        whole.quality.smape
    );
    let boundary = xs.iter().position(|&x| x > 8.0).unwrap_or(1).max(2);
    let left = fit_single_param(&xs[..boundary], &ys[..boundary], 0, &space);
    let right = fit_single_param(&xs[boundary - 1..], &ys[boundary - 1..], 0, &space);
    println!(
        "  per-segment models:  p≤8: {}   p>8: {}",
        left.model.render(&["p".to_string()]),
        right.model.render(&["p".to_string()])
    );
    // Automatic segmented search (Ilyas et al., the remedy the paper cites):
    let auto = pt_extrap::fit_segmented(&xs, &ys, 0, &space, 2, 0.9);
    println!("  automatic segmented fit: {}", auto.render("p"));
    println!("\nPaper shape: behavior differs qualitatively between small and large");
    println!("rank counts; the tainted-branch coverage pinpoints the boundary so the");
    println!("user can split the experiment design.");
    Ok(())
}
