//! Figure 5 + §C1 (contention detection) — thin wrapper over the registered scenario of the same
//! name; the implementation lives in `pt_bench::scenarios`. Run
//! `bench_all` to execute any selection of scenarios in one process with
//! a machine-readable report.

use perf_taint::PtError;

fn main() -> Result<(), PtError> {
    pt_bench::scenarios::run_cli("fig5_contention")
}
