//! §A3: the core-hour cost of modeling experiments under full vs
//! taint-based selective instrumentation, including the cost of the taint
//! analysis itself.
//!
//! Paper: LULESH experiments drop from 20483 to 547 core-hours (−97.3%)
//! plus 1 hour of taint analysis; MILC from 364 to 321 (−13.4%) plus 16
//! hours. The saving follows the instrumentation overhead: enormous for
//! accessor-heavy C++, moderate for C.

use perf_taint::PtError;
use pt_bench::*;
use pt_measure::{total_core_hours, Filter};

fn main() -> Result<(), PtError> {
    println!("§A3 — experiment cost in (simulated) core-hours\n");
    for (app, size_name, sizes, ranks, extra) in [
        (
            pt_apps::lulesh::build(),
            "size",
            lulesh_sizes(),
            lulesh_ranks(),
            vec![("iters", 2i64)],
        ),
        (
            pt_apps::milc::build(),
            "nx",
            milc_sizes(),
            milc_ranks(),
            vec![],
        ),
    ] {
        let analysis = try_analyze_app(&app)?;
        // The session already computed the static facts; reuse them.
        let prepared = analysis.prepared();
        let points = grid(&app, size_name, &sizes, &ranks, &extra);

        let full = run_filtered(&app, prepared, &points, &Filter::Full, threads());
        let filter = Filter::TaintBased {
            relevant: analysis
                .relevant_functions(&app.module)
                .into_iter()
                .collect(),
        };
        let selective = run_filtered(&app, prepared, &points, &filter, threads());

        let full_ch = total_core_hours(&full);
        let sel_ch = total_core_hours(&selective);
        let saving = 100.0 * (1.0 - sel_ch / full_ch);
        println!("== {} ({} sweep points) ==", app.name, points.len());
        println!("  full instrumentation:       {full_ch:>12.4} core-hours");
        println!("  taint-based instrumentation:{sel_ch:>12.4} core-hours  ({saving:+.1}% saving)",);
        println!(
            "  taint analysis run:         {:>12.6} core-hours (amortized once)",
            analysis.taint_run_core_hours
        );
        println!();
    }
    println!("Paper shape: LULESH −97.3% (20483→547 h), MILC −13.4% (364→321 h);");
    println!("taint-analysis cost (1 h / 16 h) amortizes immediately.");
    Ok(())
}
