//! Table 1 stand-in: the simulated hardware/software configuration.
//!
//! The paper evaluates on Piz Daint (2× Xeon E5-2695 v4) and a Skylake
//! cluster (Xeon 6154). Our substrate is an analytical machine model; this
//! binary prints its parameters next to the paper's testbeds so every other
//! harness's outputs can be interpreted.

use pt_bench::machine;

fn main() {
    let m = machine(64);
    println!("Table 1 — evaluation platform (simulated stand-in)");
    println!();
    println!("  Paper:      Piz Daint (Xeon E5-2695 v4, 36c/node, 128 GB, Cray MPICH)");
    println!("              Skylake cluster (Xeon 6154, 36c/node, 384 GB, OpenMPI)");
    println!("              Score-P 6.0, Extra-P 3.0, LLVM 9.0");
    println!();
    println!("  This repo:  pt-mpisim analytical machine model");
    println!("    MPI latency (α)            {:>12.2e} s", m.latency);
    println!(
        "    network time/byte (β)      {:>12.2e} s  (~{:.1} GB/s)",
        m.byte_time,
        1e-9 / m.byte_time
    );
    println!(
        "    scalar flop time           {:>12.2e} s  (~{:.1} GFLOP/s)",
        m.flop_time,
        1e-9 / m.flop_time
    );
    println!(
        "    memory word time           {:>12.2e} s",
        m.mem_word_time
    );
    println!("    ranks per node             {:>12}", m.ranks_per_node);
    println!(
        "    contention model           1 + a·log2(r) + b·log2²(r), calibrated a=0.01 b=0.032"
    );
    println!();
    println!("  Software:   pt-taint (DataFlowSanitizer stand-in), pt-measure (Score-P stand-in),");
    println!("              pt-extrap (Extra-P 3.0 reimplementation, PMNF n=2, I/J sets of §4.5)");
}
