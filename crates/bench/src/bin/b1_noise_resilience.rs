//! §B1: noise resilience — the taint prior prunes false dependencies.
//!
//! Sweep (p, size), sample five noisy repetitions per point, and model every
//! function twice: black-box (plain Extra-P) and hybrid (taint-restricted
//! search space). Constant functions — above all short accessors, where the
//! absolute noise floor dominates — tempt the black box into parametric
//! models; the hybrid modeler is immune by construction.
//!
//! Paper shape: MILC had 77% of models corrected; four MPI_Comm_rank models
//! became constant; for reliable kernels (CV ≤ 0.1) both approaches agree
//! with the manually established ground truth.

use perf_taint::report::render_models;
use perf_taint::{compare_against_truth, model_functions, PtError};
use pt_bench::*;
use pt_extrap::SearchSpace;
use pt_measure::{function_sets, Filter, NoiseModel};

fn main() -> Result<(), PtError> {
    let app = pt_apps::lulesh::build();
    let analysis = try_analyze_app(&app)?;
    let model_params = vec!["p".to_string(), "size".to_string()];

    let points = grid(
        &app,
        "size",
        &lulesh_sizes(),
        &lulesh_ranks(),
        &[("iters", 2)],
    );
    let filter = Filter::TaintBased {
        relevant: analysis
            .relevant_functions(&app.module)
            .into_iter()
            .collect(),
    };
    let profiles = run_filtered(&app, analysis.prepared(), &points, &filter, threads());
    let sets = function_sets(&profiles, &model_params, REPS, &NoiseModel::CLUSTER, SEED);
    println!(
        "§B1 — modeling {} functions from {} points × {} repetitions (noise: 2% rel + 2µs floor)",
        sets.len(),
        points.len(),
        REPS
    );

    let space = SearchSpace::default();
    let restrictions = analysis.restrictions(&app.module, &model_params);
    let blackbox = model_functions(&sets, None, &space, 0.1);
    let hybrid = model_functions(&sets, Some(&restrictions), &space, 0.1);

    let cmp = compare_against_truth(&blackbox, &restrictions);
    println!("\nblack-box Extra-P vs taint ground truth:");
    println!(
        "  {} of {} models carried false dependencies or overfitted constants ({:.0}%)",
        cmp.false_dependencies.len() + cmp.overfitted_constants.len(),
        cmp.total,
        100.0 * cmp.corrected_fraction()
    );
    println!(
        "  overfitted constants: {} (e.g. {:?})",
        cmp.overfitted_constants.len(),
        &cmp.overfitted_constants[..cmp.overfitted_constants.len().min(4)]
    );
    println!(
        "  false parameter dependencies: {} (e.g. {:?})",
        cmp.false_dependencies.len(),
        &cmp.false_dependencies[..cmp.false_dependencies.len().min(4)]
    );

    // The §B1 headline case: environment queries must be constant.
    for probe_fn in ["MPI_Comm_rank", "MPI_Comm_size"] {
        if let (Some(bb), Some(hy)) = (blackbox.get(probe_fn), hybrid.get(probe_fn)) {
            println!(
                "\n  {probe_fn}: black-box → {}   hybrid → {}",
                bb.fitted.model.render(&model_params),
                hy.fitted.model.render(&model_params)
            );
        }
    }

    let hybrid_clean = compare_against_truth(&hybrid, &restrictions);
    println!(
        "\nhybrid models violating the taint structure: {} (must be 0)",
        hybrid_clean.false_dependencies.len() + hybrid_clean.overfitted_constants.len()
    );

    println!("\nTop hybrid models by mean exclusive time:");
    println!("{}", render_models(&hybrid, &model_params, 12));
    println!("Paper shape: black-box overfits short/constant functions; the hybrid");
    println!("modeler eliminates every false dependency and matches ground truth");
    println!("on reliable (CV ≤ 0.1) kernels.");
    Ok(())
}
