//! Table 2: the two-phase identification of computational kernels,
//! communication routines and MPI functions, and static/dynamic pruning,
//! for mini-LULESH and mini-MILC.
//!
//! Paper reference values — LULESH: 356 functions, 296/11 pruned, 40/2/7
//! kernels/comm/MPI, 275 loops (52 pruned statically, 78 relevant);
//! MILC: 629 functions, 364/188 pruned, 56/13/8, 874 loops (96/196).

use perf_taint::report::render_table2;
use perf_taint::PtError;
use pt_bench::try_analyze_app;

fn main() -> Result<(), PtError> {
    for app in [pt_apps::lulesh::build(), pt_apps::milc::build()] {
        let analysis = try_analyze_app(&app)?;
        println!("{}", render_table2(&app.name, &analysis.table2));
        println!(
            "  taint run: {:.3}s simulated on {} ranks = {:.4} core-hours",
            analysis.taint_run_time,
            app.params
                .iter()
                .find(|p| p.name == "p")
                .map(|p| p.taint_run_value)
                .unwrap_or(1),
            analysis.taint_run_core_hours
        );
        println!();
    }
    println!("Paper reference: LULESH 356 fns (296/11 pruned, 40/2/7), 86.2% constant");
    println!("                 MILC   629 fns (364/188 pruned, 56/13/8), 87.7% constant");
    Ok(())
}
