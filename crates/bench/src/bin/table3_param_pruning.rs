//! Table 3: computational kernels and loops affected by each parameter
//! (§A1 parameter pruning). The taint-based coverage tells the user which
//! two parameters give the broadest coverage — size and p for LULESH, the
//! lattice extents and p for MILC — and proves numerical parameters
//! (MILC's mass, beta, u0) performance-irrelevant.

use perf_taint::report::render_table3;
use perf_taint::PtError;
use pt_bench::try_analyze_app;

fn main() -> Result<(), PtError> {
    let lulesh = pt_apps::lulesh::build();
    let analysis = try_analyze_app(&lulesh)?;
    println!(
        "{}",
        render_table3(
            &lulesh.name,
            &analysis.table3(&lulesh.module, ("p", "size"))
        )
    );
    println!();

    let milc = pt_apps::milc::build();
    let analysis = try_analyze_app(&milc)?;
    println!(
        "{}",
        render_table3(&milc.name, &analysis.table3(&milc.module, ("p", "nx")))
    );
    println!();
    println!("Paper reference (LULESH): p 2/2, size 40/78, regions 13/27, iters 4/4,");
    println!("                          balance 9/20, cost 2/2 of 43 functions / 86 loops");
    println!("Paper reference (MILC):   p 54/187, size 53/161, trajecs/steps 12/39,");
    println!("                          warms/niter 9/31, mass,beta,u0 never in loop bounds");
    Ok(())
}
