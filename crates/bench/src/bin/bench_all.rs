//! `bench_all` — run any tag/name selection of registered scenarios in one
//! process and write a schema-versioned `BENCH_<git-sha>.json` report.
//!
//! Usage:
//!   bench_all [--quick] [--list] [--verbose] [--quiet] [--out PATH]
//!             [--trace-out PATH] [FILTER...]
//!
//! * `FILTER...` — scenario names or tags (empty = all registered scenarios)
//! * `--quick`   — reduced sweeps (what CI and `cargo test` run)
//! * `--verbose` — print every scenario's full text rendering, not just
//!   the summary table
//! * `--quiet`   — no stdout at all; pair with `--out` for a deterministic
//!   report location (what CI and the server smoke job use). Failures
//!   still go to stderr and the exit code.
//! * `--out`     — report path (default `BENCH_<git-sha>.json`)
//! * `--trace-out` — enable the pipeline tracer for the whole run and
//!   write every recorded span as Chrome `trace_event` JSON to PATH
//!   (open in `chrome://tracing` / Perfetto). Tracing adds a few ns per
//!   span, so don't compare a traced report against an untraced baseline.
//!
//! Independent scenarios run concurrently via `pt_util::parallel_map`; the
//! per-app static stage is computed once and shared through the context's
//! `SessionCache`.

use perf_taint::report::{BenchReport, RunStatus, ScenarioRecord, BENCH_SCHEMA_VERSION};
use pt_bench::scenarios::{matching, registry, Scenario, ScenarioCtx};
use std::process::ExitCode;

fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn print_list() {
    println!("{:<26} {:<34} summary", "scenario", "tags");
    for s in registry() {
        println!(
            "{:<26} {:<34} {}",
            s.name(),
            s.tags().join(","),
            s.summary()
        );
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut verbose = false;
    let mut quiet = false;
    let mut out_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut filters: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--verbose" => verbose = true,
            "--quiet" => quiet = true,
            "--list" => {
                print_list();
                return ExitCode::SUCCESS;
            }
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::from(2);
                }
            },
            "--trace-out" => match args.next() {
                Some(p) => trace_out = Some(p),
                None => {
                    eprintln!("--trace-out requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "bench_all [--quick] [--list] [--verbose] [--quiet] [--out PATH] \
                     [--trace-out PATH] [FILTER...]"
                );
                return ExitCode::SUCCESS;
            }
            f if f.starts_with('-') => {
                eprintln!("unknown flag '{f}' (see --help)");
                return ExitCode::from(2);
            }
            f => filters.push(f.to_string()),
        }
    }

    // Pin the tracer on for the whole process before any scenario runs:
    // `force_enable` (not a scoped guard) so spans from scenario worker
    // threads are captured no matter when those threads start.
    if trace_out.is_some() {
        pt_util::trace::force_enable();
    }

    let selected = matching(&filters);
    if selected.is_empty() {
        eprintln!("no scenario matches {filters:?}; run with --list to see the registry");
        return ExitCode::from(2);
    }

    // Split the machine between scenario-level and sweep-level parallelism:
    // scenarios fan out via parallel_map, and each gets an equal share of
    // the cores for its internal sweeps.
    let total_threads = pt_bench::threads();
    let scenario_workers = total_threads.min(selected.len()).max(1);
    let cx = ScenarioCtx::with_threads(quick, (total_threads / scenario_workers).max(1));

    let sha = git_sha();
    if !quiet {
        eprintln!(
            "bench_all: {} scenario(s), quick={quick}, {} worker(s) × {} thread(s), commit {sha}",
            selected.len(),
            scenario_workers,
            cx.threads
        );
    }

    let runs: Vec<(
        &dyn Scenario,
        Result<pt_bench::scenarios::ScenarioResult, _>,
        f64,
    )> = pt_util::parallel_map(&selected, scenario_workers, |s| {
        let (result, wall) = pt_util::time(|| s.run(&cx));
        (*s, result, wall)
    });

    let mut scenarios = Vec::new();
    let mut failures = 0usize;
    if !quiet {
        println!(
            "{:<26} {:>9} {:>8}  status",
            "scenario", "wall [s]", "metrics"
        );
    }
    for (s, result, wall) in &runs {
        let (status, metrics, text) = match result {
            Ok(r) => (RunStatus::Ok, r.metrics.clone(), Some(&r.text)),
            Err(e) => {
                failures += 1;
                // Failures must reach stderr even under --quiet — the
                // report alone would hide which scenario broke and why.
                if quiet {
                    eprintln!("{}: ERROR: {e}", s.name());
                }
                (RunStatus::Error(e.to_string()), Default::default(), None)
            }
        };
        if !quiet {
            println!(
                "{:<26} {:>9.3} {:>8}  {}",
                s.name(),
                wall,
                metrics.len(),
                match &status {
                    RunStatus::Ok => "ok".to_string(),
                    RunStatus::Error(e) => format!("ERROR: {e}"),
                }
            );
            if verbose {
                if let Some(text) = text {
                    println!("\n{text}");
                }
            }
        }
        scenarios.push(ScenarioRecord {
            name: s.name().to_string(),
            tags: s.tags().iter().map(|t| t.to_string()).collect(),
            status,
            wall_seconds: *wall,
            metrics,
        });
    }

    let report = BenchReport {
        schema: BENCH_SCHEMA_VERSION,
        git_sha: sha.clone(),
        created_unix: unix_now(),
        quick,
        scenarios,
    };
    let path = out_path.unwrap_or_else(|| format!("BENCH_{sha}.json"));
    if let Err(e) = std::fs::write(&path, report.to_json_string()) {
        eprintln!("failed to write {path}: {e}");
        return ExitCode::from(2);
    }
    if !quiet {
        println!("report: {path}");
    }

    if let Some(trace_path) = trace_out {
        let events = pt_util::trace::drain_all();
        let chrome = pt_util::trace::chrome_trace(&events).render();
        if let Err(e) = std::fs::write(&trace_path, chrome) {
            eprintln!("failed to write trace {trace_path}: {e}");
            return ExitCode::from(2);
        }
        if !quiet {
            println!(
                "trace: {trace_path} ({} span(s), {} dropped)",
                events.len(),
                pt_util::trace::dropped_total()
            );
        }
    }

    if failures > 0 {
        eprintln!("{failures} scenario(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
