//! §A2: taint-derived parameter dependencies reduce the experiment design.
//!
//! Additive-only dependencies allow single-parameter sweeps sharing one
//! baseline (the paper's `p + s` example: 9 instead of 25 experiments);
//! multiplicative dependencies force joint sampling. The harness also
//! reports the LULESH `iters` insight: a parameter that only multiplies the
//! whole computation linearly can be fixed, reducing dimensionality.

use perf_taint::report::render_design;
use perf_taint::{design_experiments, PtError, SessionBuilder};
use pt_bench::try_analyze_app;

/// The paper's §A2 example: `foo` with two *sequential* loops over p and s.
fn papers_foo_example() -> Result<(), PtError> {
    use pt_ir::{FunctionBuilder, Module, Type, Value};
    let mut m = Module::new("a2-foo");
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let p = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let s = b.call_external("pt_param_i64", vec![Value::int(1)], Type::I64);
    b.for_loop(0i64, p, 1i64, |b, _| {
        b.call_external("pt_work_flops", vec![Value::int(10)], Type::Void);
    });
    b.for_loop(0i64, s, 1i64, |b, _| {
        b.call_external("pt_work_flops", vec![Value::int(10)], Type::Void);
    });
    b.ret(None);
    m.add_function(b.finish());

    let session = SessionBuilder::new(&m, "main").build();
    let analysis = session.taint_run(vec![("p".into(), 4), ("s".into(), 5)])?;
    let params = vec!["p".to_string(), "s".to_string()];
    let global = analysis.global_deps(&params);
    println!("== the paper's foo(p, s) example (two sequential loops) ==\n");
    println!("  dependency structure: {}", global.render(&params));
    println!(
        "{}",
        render_design(&design_experiments(&global, &params, &[5, 5]))
    );
    Ok(())
}

fn main() -> Result<(), PtError> {
    papers_foo_example()?;

    // LULESH over (p, size): the halo exchange's count argument couples
    // size with p multiplicatively; compute kernels are size-only.
    let app = pt_apps::lulesh::build();
    let analysis = try_analyze_app(&app)?;

    println!("== mini-lulesh ==\n");
    for params in [
        vec!["p".to_string(), "size".to_string()],
        vec![
            "p".to_string(),
            "size".to_string(),
            "regions".to_string(),
            "cost".to_string(),
        ],
    ] {
        let global = analysis.global_deps(&params);
        let names: Vec<String> = params.clone();
        println!(
            "  dependency structure over {params:?}: {}",
            global.render(&names)
        );
        let values = vec![5; params.len()];
        println!(
            "{}",
            render_design(&design_experiments(&global, &params, &values))
        );
    }

    // The iters insight: iters multiplies everything (it appears in every
    // monomial of the time-stepped kernels) and only linearly — fix it.
    let with_iters = vec!["p".to_string(), "size".to_string(), "iters".to_string()];
    let global = analysis.global_deps(&with_iters);
    let iters_axis = 2usize;
    let in_all = global
        .monomials
        .iter()
        .filter(|m| m.contains(iters_axis))
        .count();
    println!(
        "  `iters` appears in {}/{} monomials → multiplicative with the entire",
        in_all,
        global.monomials.len()
    );
    println!("  computation; linear effect ⇒ fix it and drop one dimension (§A2).\n");

    // MILC over (p, nx): local volume = nx·ny·nz·nt/p makes nearly all site
    // loops multiplicative in (nx, p) — no additive shortcut exists.
    let app = pt_apps::milc::build();
    let analysis = try_analyze_app(&app)?;
    println!("== mini-milc ==\n");
    let params = vec!["p".to_string(), "nx".to_string()];
    let global = analysis.global_deps(&params);
    println!(
        "  dependency structure over {params:?}: {}",
        global.render(&params)
    );
    println!(
        "{}",
        render_design(&design_experiments(&global, &params, &[5, 5]))
    );
    println!("Paper shape: additive structures collapse the design (9 vs 25);");
    println!("multiplicative couplings (MILC's volume/p) need the full grid.");
    Ok(())
}
