//! Ablation: the control-flow taint policies.
//!
//! The paper's key extension to DataFlowSanitizer is control-flow tainting
//! (§5.2) — without it, the LULESH `regElemSize` histogram dependence is
//! invisible and the region loops lose their `size` dependency. This
//! harness runs the taint analysis under all three policies and reports the
//! dependency structures of the §5.2 kernels.

use perf_taint::{PipelineConfig, PtError, SessionBuilder};
use pt_taint::CtlFlowPolicy;

fn main() -> Result<(), PtError> {
    let app = pt_apps::lulesh::build();
    println!("Ablation — control-flow taint policy (mini-LULESH)\n");
    let kernels = [
        "CalcMonotonicQRegionForElems",
        "CalcEnergyForElems",
        "EvalEOSForElems",
        "SetupRegionIndexSet",
    ];
    for policy in [
        CtlFlowPolicy::Off,
        CtlFlowPolicy::StoresOnly,
        CtlFlowPolicy::All,
    ] {
        let mut cfg = PipelineConfig::with_mpi_defaults();
        cfg.interp.policy = policy;
        let session = SessionBuilder::new(&app.module, &app.entry)
            .config(cfg)
            .build();
        let analysis = session.taint_run(app.taint_run_params())?;
        println!("policy {policy:?}:");
        for k in kernels {
            let f = app.module.function_by_name(k).unwrap();
            println!(
                "  {k:<32} {}",
                analysis.deps[&f].render(&analysis.param_names)
            );
        }
        let t2 = &analysis.table2;
        println!(
            "  relevant loops: {} — labels on region loops {}",
            t2.loops_relevant,
            if policy == CtlFlowPolicy::Off {
                "MISS the size dependency (histogram invisible)"
            } else {
                "include size via the histogram control dependence"
            }
        );
        println!();
    }
    println!("Paper: the DataFlowSanitizer extension (policy All / StoresOnly) is");
    println!("necessary to capture real-world dependencies like regElemSize.");
    Ok(())
}
