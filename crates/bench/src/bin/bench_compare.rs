//! `bench_compare` — diff two `BENCH_*.json` reports and exit non-zero on
//! regression: the CI perf gate.
//!
//! Usage:
//!   bench_compare OLD.json NEW.json [--warn-only] [--no-required]
//!                 [--metric-rel-pct N] [--wall-rel-pct N]
//!
//! * deterministic metrics gate at ±10% (override: `--metric-rel-pct`)
//! * wall times gate at ±50% and a 0.25 s floor (`--wall-rel-pct`)
//! * required gate metrics (`pt_bench::compare::REQUIRED_GATE_METRICS`,
//!   e.g. `taint_throughput/wall_ratio_decoded_over_legacy`) must be
//!   present in the NEW report — a missing gate metric is a regression,
//!   not a silent skip, even when the baseline lacks it too; pass
//!   `--no-required` when deliberately comparing filtered reports
//!   (`bench_all FILTER`) that never ran the gate scenario
//! * `--warn-only` prints the verdict but always exits 0 (the CI job uses
//!   this while the gate is being calibrated)
//!
//! Exit codes: 0 = no regression (or `--warn-only`), 1 = regression,
//! 2 = unusable input (missing file, parse failure, schema mismatch).

use perf_taint::report::BenchReport;
use pt_bench::compare::{compare_reports, CompareConfig};
use std::process::ExitCode;

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    BenchReport::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn main() -> ExitCode {
    let mut warn_only = false;
    let mut cfg = CompareConfig::ci_gate();
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--warn-only" => warn_only = true,
            "--no-required" => cfg.required.clear(),
            "--metric-rel-pct" | "--wall-rel-pct" => {
                let Some(pct) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("{arg} requires a numeric percentage");
                    return ExitCode::from(2);
                };
                if arg == "--metric-rel-pct" {
                    cfg.metric.rel = pct / 100.0;
                } else {
                    cfg.wall.rel = pct / 100.0;
                }
            }
            "--help" | "-h" => {
                println!(
                    "bench_compare OLD.json NEW.json [--warn-only] [--no-required] \
                     [--metric-rel-pct N] [--wall-rel-pct N]"
                );
                return ExitCode::SUCCESS;
            }
            f if f.starts_with('-') => {
                eprintln!("unknown flag '{f}' (see --help)");
                return ExitCode::from(2);
            }
            p => paths.push(p.to_string()),
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_compare OLD.json NEW.json (see --help)");
        return ExitCode::from(2);
    }

    let (old, new) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "baseline: {} ({}, quick={})   new: {} ({}, quick={})",
        paths[0], old.git_sha, old.quick, paths[1], new.git_sha, new.quick
    );
    if old.quick != new.quick {
        println!("WARNING: comparing a quick report against a full one — apples to oranges");
    }

    match compare_reports(&old, &new, &cfg) {
        Ok(cmp) => {
            print!("{}", cmp.render());
            if cmp.has_regressions() && !warn_only {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
