//! Figure 3: Score-P instrumentation overhead of LULESH under the three
//! filters — taint-based selective, default (inlining heuristic), and full
//! program instrumentation.
//!
//! Paper shape: full instrumentation costs up to 45× native on the
//! accessor-heavy C++ code; the default filter is moderate but misses more
//! than half of the performance-relevant functions; the taint-based filter
//! stays within ~5% of native.

use perf_taint::PtError;
use pt_bench::*;
use pt_measure::Filter;

fn main() -> Result<(), PtError> {
    let app = pt_apps::lulesh::build();
    let analysis = try_analyze_app(&app)?;
    let prepared = analysis.prepared();
    let sizes = lulesh_sizes();
    let ranks = lulesh_ranks();
    let points = grid(&app, "size", &sizes, &ranks, &[("iters", 2)]);

    let native = run_filtered(&app, prepared, &points, &Filter::None, threads());
    println!("Figure 3 — LULESH instrumentation overhead [% over native]");
    println!(
        "  taint-based filter instruments {} of {} functions; default {}; full {}",
        standard_filters(&analysis, &app)[0]
            .1
            .instrumented_count(&app.module),
        app.module.functions.len(),
        Filter::Default {
            inline_threshold: 12
        }
        .instrumented_count(&app.module),
        Filter::Full.instrumented_count(&app.module),
    );

    for (label, filter) in standard_filters(&analysis, &app) {
        let instr = run_filtered(&app, prepared, &points, &filter, threads());
        println!("\n  {label} instrumentation:");
        print!("  {:>8}", "p\\size");
        for &s in &sizes {
            print!(" {s:>9}");
        }
        println!();
        let mut all = Vec::new();
        for (pi, &p) in ranks.iter().enumerate() {
            print!("  {p:>8}");
            for si in 0..sizes.len() {
                let idx = pi * sizes.len() + si;
                let ov = overhead_percent(&instr[idx], &native[idx]);
                all.push((ov / 100.0 + 1.0).max(1e-9));
                print!(" {ov:>8.1}%");
            }
            println!();
        }
        let max = all.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  -> slowdown factor: geomean {:.2}x, max {:.2}x",
            geomean(&all),
            max
        );
    }
    println!("\nPaper shape: full up to 45x; default moderate but misses relevant");
    println!("functions; taint-based within ~5% of native.");
    Ok(())
}
