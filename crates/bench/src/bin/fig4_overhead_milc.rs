//! Figure 4: Score-P instrumentation overhead of MILC under the three
//! filters.
//!
//! Paper shape: MILC's C kernels make far fewer helper calls per site than
//! LULESH's C++ accessors, so full/default instrumentation costs ~23%
//! (geometric mean) instead of 45×, and the taint-based filter ~1.6%.

use perf_taint::PtError;
use pt_bench::*;
use pt_measure::Filter;

fn main() -> Result<(), PtError> {
    let app = pt_apps::milc::build();
    let analysis = try_analyze_app(&app)?;
    let prepared = analysis.prepared();
    let sizes = milc_sizes();
    let ranks = milc_ranks();
    let points = grid(&app, "nx", &sizes, &ranks, &[]);

    let native = run_filtered(&app, prepared, &points, &Filter::None, threads());
    println!("Figure 4 — MILC instrumentation overhead [% over native]");

    for (label, filter) in standard_filters(&analysis, &app) {
        let instr = run_filtered(&app, prepared, &points, &filter, threads());
        println!(
            "\n  {label} instrumentation ({} functions):",
            filter.instrumented_count(&app.module)
        );
        print!("  {:>8}", "p\\size");
        for &s in &sizes {
            print!(" {s:>9}");
        }
        println!();
        let mut factors = Vec::new();
        for (pi, &p) in ranks.iter().enumerate() {
            print!("  {p:>8}");
            for si in 0..sizes.len() {
                let idx = pi * sizes.len() + si;
                let ov = overhead_percent(&instr[idx], &native[idx]);
                factors.push(1.0 + ov / 100.0);
                print!(" {ov:>8.1}%");
            }
            println!();
        }
        println!(
            "  -> geometric-mean overhead {:.1}%",
            (geomean(&factors) - 1.0) * 100.0
        );
    }
    println!("\nPaper shape: ~23% geomean for full and default, ~1.6% for taint-based.");
    Ok(())
}
