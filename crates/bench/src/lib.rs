//! # pt-bench — harnesses regenerating every table and figure of the paper
//!
//! Every artifact is a registered [`scenarios::Scenario`] (one shared
//! implementation module per artifact under `scenarios/`):
//!
//! | scenario (= binary) | artifact |
//! |---|---|
//! | `table1_config` | Table 1 (simulated machine description) |
//! | `table2_overview` | Table 2 (function/loop censuses) |
//! | `table3_param_pruning` | Table 3 (per-parameter coverage, §A1) |
//! | `fig3_overhead_lulesh` | Figure 3 (instrumentation overhead, LULESH) |
//! | `fig4_overhead_milc` | Figure 4 (instrumentation overhead, MILC) |
//! | `fig5_contention` | Figure 5 + §C1 (contention detection) |
//! | `a2_experiment_design` | §A2 (experiment-design reduction) |
//! | `a3_cost_summary` | §A3 (core-hour accounting) |
//! | `b1_noise_resilience` | §B1 (false-dependency pruning) |
//! | `b2_intrusion` | §B2 (instrumentation intrusion) |
//! | `c2_experiment_validation` | §C2 (qualitative-change detection) |
//! | `ablation_ctlflow` | ablation: control-flow taint policies |
//! | `serve_throughput` | pt-serve service: warm/cold latency, requests/sec |
//! | `serve_saturation` | pt-serve under overload: latency/goodput/shed sweep |
//!
//! The per-artifact binaries under `src/bin/` are thin wrappers over the
//! registry (`serve_throughput` and `serve_saturation` are registry-only —
//! they bench the service layer, not a paper artifact). `bench_all` runs any tag/name selection in one process and
//! writes a schema-versioned `BENCH_<git-sha>.json`; `bench_compare` diffs
//! two such reports under per-metric tolerances ([`compare`]) and exits
//! non-zero on regression — the CI perf gate. See `crates/bench/README.md`
//! for the report schema and how to add a scenario.
//!
//! This library holds the shared sweep/configuration machinery. Absolute
//! numbers differ from the paper (the substrate is an interpreter, not Piz
//! Daint); the *shapes* — who wins, by what factor, where crossovers sit —
//! are the reproduction targets (see EXPERIMENTS.md).

pub mod compare;
pub mod scenarios;

use perf_taint::{Analysis, PtError, Session, SessionBuilder};
use pt_apps::AppSpec;
use pt_measure::{run_sweep, Filter, PointProfile, SweepPoint};
use pt_mpisim::{ContentionModel, MachineConfig};
use pt_taint::PreparedModule;

/// Probe cost per instrumented call (seconds). Roughly a Score-P enter+exit
/// pair on a Skylake-class core.
pub const PROBE_COST: f64 = 1.0e-6;

/// Repetitions per measurement point (the paper uses five).
pub const REPS: usize = 5;

/// Seed for all noise sampling in the harnesses.
pub const SEED: u64 = 42;

/// LULESH sweep values. Scaled down from the paper's size ∈ {25..45}
/// (the substrate interprets IR; cubic work in `size` is preserved).
pub fn lulesh_sizes() -> Vec<i64> {
    vec![12, 16, 20, 24, 28]
}

/// LULESH rank counts (the paper models p = 3ⁿ on Piz Daint and uses 4..64
/// on the Skylake cluster; communication is charged analytically, so rank
/// counts are free to match the paper's cube numbers).
pub fn lulesh_ranks() -> Vec<i64> {
    vec![8, 27, 64, 125, 216]
}

/// MILC sweep values (the paper's size ∈ {32..512}; our `nx` plays the
/// size role with ny=nz=nt fixed — volume is linear in `nx`).
pub fn milc_sizes() -> Vec<i64> {
    vec![32, 64, 128, 256, 512]
}

/// MILC rank counts (paper: 2ⁿ from 4 to 64).
pub fn milc_ranks() -> Vec<i64> {
    vec![4, 8, 16, 32, 64]
}

/// The machine for a given rank count (Table 1 stand-in).
pub fn machine(p: i64) -> MachineConfig {
    MachineConfig::default()
        .with_ranks(p as u32)
        .with_ranks_per_node((p as u32).min(36))
}

/// An analysis [`Session`] over an application (MPI defaults). Reuse it
/// when a harness needs several taint runs — the static stage is shared.
pub fn session_for(app: &AppSpec) -> Session<'_> {
    SessionBuilder::new(&app.module, &app.entry).build()
}

/// Run the white-box pipeline on an application at its representative
/// taint-run configuration. Failures propagate as [`PtError`] so harness
/// binaries report them (`fn main() -> Result<(), PtError>`) instead of
/// aborting.
pub fn try_analyze_app(app: &AppSpec) -> Result<Analysis, PtError> {
    session_for(app).taint_run(app.taint_run_params())
}

/// Build the full (size × p) grid of sweep points for an app, using its
/// default values for all remaining parameters.
pub fn grid(
    app: &AppSpec,
    size_name: &str,
    sizes: &[i64],
    ranks: &[i64],
    extra: &[(&str, i64)],
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &p in ranks {
        for &s in sizes {
            let mut overrides: Vec<(&str, i64)> = vec![(size_name, s), ("p", p)];
            overrides.extend_from_slice(extra);
            points.push(SweepPoint {
                params: app.sweep_params(&overrides),
                machine: machine(p),
            });
        }
    }
    points
}

/// Run a sweep under a given instrumentation filter.
pub fn run_filtered(
    app: &AppSpec,
    prepared: &PreparedModule,
    points: &[SweepPoint],
    filter: &Filter,
    threads: usize,
) -> Vec<PointProfile> {
    let probe = filter.probe_vector(&app.module, PROBE_COST);
    run_sweep(&app.module, prepared, &app.entry, points, &probe, threads)
}

/// Instrumentation overhead in percent relative to a native profile.
pub fn overhead_percent(instrumented: &PointProfile, native: &PointProfile) -> f64 {
    100.0 * (instrumented.wall - native.wall) / native.wall
}

/// Geometric mean (used for the Figure 3/4 summary numbers).
///
/// Total on every input instead of silently clamping: an empty slice
/// yields 0.0, any zero factor collapses the product (and thus the mean)
/// to 0.0, and negative or non-finite factors — which have no real
/// geometric mean — also yield 0.0 rather than NaN.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for &v in values {
        if v <= 0.0 || !v.is_finite() {
            return 0.0;
        }
        log_sum += v.ln();
    }
    (log_sum / values.len() as f64).exp()
}

/// Default worker-thread count for sweeps.
pub fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// The three instrumentation modes of Figures 3/4 (plus the native
/// baseline), with the taint-based relevant set from an analysis.
pub fn standard_filters(analysis: &Analysis, app: &AppSpec) -> Vec<(&'static str, Filter)> {
    vec![
        (
            "taint-based",
            Filter::TaintBased {
                relevant: analysis
                    .relevant_functions(&app.module)
                    .into_iter()
                    .collect(),
            },
        ),
        (
            "default",
            Filter::Default {
                inline_threshold: 12,
            },
        ),
        ("full", Filter::Full),
    ]
}

/// Calibrated contention machine for the §C1 experiment.
pub fn contended_machine(p: i64, ranks_per_node: u32) -> MachineConfig {
    MachineConfig::default()
        .with_ranks(p as u32)
        .with_ranks_per_node(ranks_per_node)
        .with_contention(ContentionModel::CALIBRATED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_cross_product() {
        let app = pt_apps::lulesh::build();
        let pts = grid(&app, "size", &[10, 12], &[8, 27], &[("iters", 2)]);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].param("size"), Some(10));
        assert_eq!(pts[0].param("p"), Some(8));
        assert_eq!(pts[0].param("iters"), Some(2));
        assert_eq!(pts[0].machine.ranks, 8);
        assert_eq!(pts[3].param("size"), Some(12));
        assert_eq!(pts[3].param("p"), Some(27));
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_is_total_on_degenerate_input() {
        // A zero factor makes the product (and the mean) zero.
        assert_eq!(geomean(&[0.0, 10.0]), 0.0);
        // Negative and non-finite factors have no real geometric mean;
        // the total function maps them to 0.0 instead of NaN/panicking.
        assert_eq!(geomean(&[-3.0, 10.0]), 0.0);
        assert_eq!(geomean(&[f64::NAN]), 0.0);
        assert_eq!(geomean(&[f64::INFINITY, 2.0]), 0.0);
        assert_eq!(geomean(&[1.0, f64::NEG_INFINITY]), 0.0);
        // Ordinary inputs are unaffected.
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }
}
