//! Registry contract: every registered scenario runs under `--quick`
//! conditions from one shared context, publishes finite metrics, and the
//! whole report round-trips through the JSON wire format and the
//! regression gate.

use perf_taint::report::{BenchReport, RunStatus, ScenarioRecord, BENCH_SCHEMA_VERSION};
use pt_bench::compare::{compare_reports, CompareConfig};
use pt_bench::scenarios::{registry, ScenarioCtx};

#[test]
fn every_registered_scenario_runs_under_quick() {
    let cx = ScenarioCtx::new(true);
    let mut records = Vec::new();
    for s in registry() {
        let result = s
            .run(&cx)
            .unwrap_or_else(|e| panic!("scenario {} failed under --quick: {e}", s.name()));
        assert!(
            !result.text.is_empty(),
            "{} produced no text rendering",
            s.name()
        );
        assert!(
            !result.metrics.is_empty(),
            "{} published no metrics for the report",
            s.name()
        );
        for (metric, value) in &result.metrics {
            assert!(
                value.is_finite(),
                "{}: metric '{metric}' is not finite",
                s.name()
            );
        }
        records.push(ScenarioRecord {
            name: s.name().to_string(),
            tags: s.tags().iter().map(|t| t.to_string()).collect(),
            status: RunStatus::Ok,
            wall_seconds: 0.1,
            metrics: result.metrics,
        });
    }

    // The full report round-trips through the wire format…
    let report = BenchReport {
        schema: BENCH_SCHEMA_VERSION,
        git_sha: "test".into(),
        created_unix: 0,
        quick: true,
        scenarios: records,
    };
    let parsed = BenchReport::parse(&report.to_json_string()).expect("report parses back");
    assert_eq!(parsed, report);

    // …and comparing a run against itself passes the perf gate clean.
    let cmp = compare_reports(&report, &parsed, &CompareConfig::default()).unwrap();
    assert!(!cmp.has_regressions(), "{:?}", cmp.regressions);
    assert!(cmp.improvements.is_empty());
}
