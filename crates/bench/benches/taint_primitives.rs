//! Micro-benchmarks of the taint runtime's hot paths: label-table unions
//! (the per-instruction operation of DFSan-style propagation), shadow
//! memory, call-path interning, and interpreter dispatch.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pt_ir::{FunctionBuilder, Module, Type, Value};
use pt_taint::{
    CtlFlowPolicy, InterpConfig, Interpreter, Label, LabelTable, Memory, PreparedModule, TVal,
    WorkOnlyHandler,
};
use std::hint::black_box;

fn bench_label_union(c: &mut Criterion) {
    let mut g = c.benchmark_group("label_table");
    g.bench_function("union_8_params_memoized", |b| {
        let mut t = LabelTable::new();
        let labels: Vec<Label> = (0..8).map(|i| t.base_label(&format!("p{i}"))).collect();
        // Warm the memo table, as in steady-state propagation.
        let mut acc = Label::EMPTY;
        for &l in &labels {
            acc = t.union(acc, l);
        }
        b.iter(|| {
            let mut acc = Label::EMPTY;
            for &l in &labels {
                acc = t.union(black_box(acc), black_box(l));
            }
            acc
        });
    });
    g.bench_function("params_of", |b| {
        let mut t = LabelTable::new();
        let l1 = t.base_label("a");
        let l2 = t.base_label("b");
        let u = t.union(l1, l2);
        b.iter(|| t.params_of(black_box(u)));
    });
    g.finish();
}

fn bench_shadow_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("shadow_memory");
    g.bench_function("store_load_1k", |b| {
        let mut m = Memory::new();
        let base = m.alloc(1024);
        b.iter(|| {
            for i in 0..1024 {
                m.store(base + i, TVal::from_i64(i as i64).with_label(Label(1)))
                    .unwrap();
            }
            let mut sum = 0i64;
            for i in 0..1024 {
                sum += m.load(base + i).unwrap().as_i64();
            }
            sum
        });
    });
    g.bench_function("frame_alloc_release", |b| {
        let mut m = Memory::new();
        b.iter(|| {
            let mark = m.mark();
            let a = m.alloc(black_box(256));
            m.store(a, TVal::from_i64(1)).unwrap();
            m.release_to(mark);
        });
    });
    g.finish();
}

fn hot_loop_module(trips: i64) -> Module {
    let mut m = Module::new("hot");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let acc = b.alloca(1i64);
    b.store(acc, Value::int(0));
    b.for_loop(0i64, n, 1i64, |b, iv| {
        let cur = b.load(acc, Type::I64);
        let sq = b.mul(iv, iv);
        let nxt = b.add(cur, sq);
        b.store(acc, nxt);
    });
    let out = b.load(acc, Type::I64);
    b.ret(Some(out));
    m.add_function(b.finish());
    let _ = trips;
    m
}

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    let m = hot_loop_module(1000);
    let prepared = PreparedModule::compute(&m);
    for (name, taint, policy) in [
        ("hot_loop_1k_taint_all", true, CtlFlowPolicy::All),
        ("hot_loop_1k_taint_off", true, CtlFlowPolicy::Off),
        ("hot_loop_1k_no_taint", false, CtlFlowPolicy::All),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    Interpreter::new(
                        &m,
                        &prepared,
                        WorkOnlyHandler::default(),
                        vec![("n".into(), 1000)],
                        InterpConfig {
                            taint,
                            policy,
                            coverage: false,
                            ..Default::default()
                        },
                    )
                },
                |interp| interp.run_named("main", &[]).unwrap(),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_call_paths(c: &mut Criterion) {
    c.bench_function("call_path_interning", |b| {
        use pt_ir::FunctionId;
        use pt_taint::CallPathTable;
        let mut t = CallPathTable::new();
        let root = t.intern(None, FunctionId(0));
        b.iter(|| {
            let mut last = root;
            for i in 1..16u32 {
                last = t.intern(Some(last), FunctionId(black_box(i % 8)));
            }
            last
        });
    });
}

criterion_group!(
    benches,
    bench_label_union,
    bench_shadow_memory,
    bench_interpreter,
    bench_call_paths
);
criterion_main!(benches);
