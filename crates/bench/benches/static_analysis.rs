//! Benchmarks of the compile-time half of the pipeline on the real
//! mini-applications: dominator trees, loop forests, scalar evolution, and
//! the interprocedural constant-function classification (§5.1).

use criterion::{criterion_group, criterion_main, Criterion};
use pt_analysis::classify::classify_module;
use pt_analysis::dom::DomTree;
use pt_analysis::loops::LoopForest;
use pt_mpisim::LibraryDb;
use pt_taint::PreparedModule;
use std::collections::HashSet;
use std::hint::black_box;

fn bench_per_function_analyses(c: &mut Criterion) {
    let app = pt_apps::lulesh::build();
    let main_id = app.module.function_by_name("main").unwrap();
    let main_fn = app.module.function(main_id);
    let mut g = c.benchmark_group("per_function");
    g.bench_function("domtree_lulesh_main", |b| {
        b.iter(|| DomTree::dominators(black_box(main_fn)));
    });
    g.bench_function("loop_forest_lulesh_main", |b| {
        let dt = DomTree::dominators(main_fn);
        b.iter(|| LoopForest::compute(black_box(main_fn), &dt));
    });
    g.bench_function("postdom_lulesh_main", |b| {
        b.iter(|| DomTree::postdominators(black_box(main_fn)));
    });
    g.finish();
}

fn bench_module_analyses(c: &mut Criterion) {
    let lulesh = pt_apps::lulesh::build();
    let milc = pt_apps::milc::build();
    let db = LibraryDb::mpi_default();
    let relevant: HashSet<String> = db.relevant_names().map(String::from).collect();
    let mut g = c.benchmark_group("whole_module");
    g.sample_size(20);
    g.bench_function("prepare_lulesh_303fn", |b| {
        b.iter(|| PreparedModule::compute(black_box(&lulesh.module)));
    });
    g.bench_function("classify_lulesh", |b| {
        b.iter(|| classify_module(black_box(&lulesh.module), &relevant));
    });
    g.bench_function("classify_milc_621fn", |b| {
        b.iter(|| classify_module(black_box(&milc.module), &relevant));
    });
    g.bench_function("build_lulesh_module", |b| {
        b.iter(pt_apps::lulesh::build);
    });
    g.finish();
}

fn bench_taint_run(c: &mut Criterion) {
    let app = pt_apps::lulesh::build();
    let mut g = c.benchmark_group("taint_run");
    g.sample_size(10);
    g.bench_function("lulesh_representative_size5", |b| {
        b.iter(|| pt_bench::try_analyze_app(black_box(&app)).unwrap());
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_per_function_analyses,
    bench_module_analyses,
    bench_taint_run
);
criterion_main!(benches);
