//! Benchmarks of the PMNF model search — including the headline ablation:
//! the taint restriction *shrinks* the hypothesis space, so hybrid modeling
//! is faster than black-box modeling as well as more accurate.

use criterion::{criterion_group, criterion_main, Criterion};
use pt_extrap::{fit_multi_param, fit_single_param, MeasurementSet, Restriction, SearchSpace};
use std::hint::black_box;

fn single_param_data() -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = vec![4.0, 8.0, 16.0, 32.0, 64.0];
    let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 0.01 * x * x * x.log2()).collect();
    (xs, ys)
}

fn grid_data() -> MeasurementSet {
    let mut s = MeasurementSet::new(vec!["p".into(), "size".into()]);
    for &p in &[4.0, 8.0, 16.0, 32.0, 64.0] {
        for &size in &[16.0f64, 20.0, 24.0, 28.0, 32.0] {
            s.push(
                vec![p, size],
                vec![1e-4 * size * size * size + 2e-3 * p.log2()],
            );
        }
    }
    s
}

fn bench_single(c: &mut Criterion) {
    let (xs, ys) = single_param_data();
    let space = SearchSpace::default();
    c.bench_function("single_param_search_53_hypotheses", |b| {
        b.iter(|| fit_single_param(black_box(&xs), black_box(&ys), 0, &space));
    });
}

fn bench_multi(c: &mut Criterion) {
    let ms = grid_data();
    let space = SearchSpace::default();
    let mut g = c.benchmark_group("multi_param_search");
    g.bench_function("blackbox", |b| {
        b.iter(|| fit_multi_param(black_box(&ms), &space, None));
    });
    // Ablation: the white-box prior restricts the candidate pool.
    let additive = Restriction::from_monomials(vec![0b01, 0b10]);
    g.bench_function("restricted_additive", |b| {
        b.iter(|| fit_multi_param(black_box(&ms), &space, Some(&additive)));
    });
    let constant = Restriction::constant();
    g.bench_function("restricted_constant", |b| {
        b.iter(|| fit_multi_param(black_box(&ms), &space, Some(&constant)));
    });
    g.finish();
}

criterion_group!(benches, bench_single, bench_multi);
criterion_main!(benches);
