//! # pt-measure — the simulated measurement infrastructure
//!
//! Plays Score-P's role in the paper's pipeline (Fig. 2): instrumented
//! experiments over a parameter sweep, producing the per-function
//! measurements Extra-P models.
//!
//! * [`filter`] — the three instrumentation modes of Figures 3/4: full,
//!   Score-P default (inlining heuristic), and taint-based selective.
//! * [`noise`] — seeded measurement-noise injection (lognormal relative +
//!   half-normal absolute floor); the floor dominating short functions is
//!   the §B1 overfitting mechanism.
//! * [`experiment`] — sweep points, the parallel runner, per-function
//!   measurement sets, and §A3 core-hour accounting.

pub mod experiment;
pub mod filter;
pub mod noise;

pub use experiment::{
    function_sets, run_point, run_sweep, total_core_hours, FnTiming, PointProfile, SweepPoint,
};
pub use filter::Filter;
pub use noise::{rng_for, NoiseModel};
