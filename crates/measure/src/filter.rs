//! Instrumentation filters (the three modes compared in Figures 3 and 4).
//!
//! Score-P's default mode "estimates whether a function should be inlined
//! and therefore excludes it from instrumentation" — a heuristic the paper
//! shows is wrong for modeling: it drops small-but-relevant functions while
//! keeping large constant helpers. The three filters:
//!
//! * [`Filter::Full`] — instrument every function (the mode the paper says
//!   modeling is forced into without taint information),
//! * [`Filter::Default`] — the inlining heuristic: skip functions whose
//!   body is small enough that a compiler would inline them,
//! * [`Filter::TaintBased`] — instrument exactly the functions the taint
//!   analysis marked performance-relevant.
//!
//! MPI routines are always instrumented (Score-P intercepts them via PMPI
//! regardless of the user-code filter). The `pt_*` work primitives are
//! never instrumented — they are not functions in the original program.

use pt_ir::Module;
use std::collections::HashSet;

/// An instrumentation filter.
#[derive(Debug, Clone)]
pub enum Filter {
    /// No probes at all (native run, the measurement baseline).
    None,
    /// Probe every function.
    Full,
    /// Score-P's default: skip functions with at most `inline_threshold`
    /// instructions (the compiler would inline them).
    Default { inline_threshold: usize },
    /// Probe only the given functions (taint-identified relevant set).
    TaintBased { relevant: HashSet<String> },
}

impl Filter {
    /// Build the per-function probe-cost vector the interpreter consumes.
    /// Indices beyond the module's functions are the pseudo-ids of external
    /// symbols, ordered as `module.used_externals()` (the interpreter uses
    /// the same ordering).
    pub fn probe_vector(&self, module: &Module, probe_cost: f64) -> Vec<f64> {
        let externs = module.used_externals();
        let n = module.functions.len() + externs.len();
        let mut probes = vec![0.0; n];
        if matches!(self, Filter::None) {
            return probes;
        }
        for (i, f) in module.functions.iter().enumerate() {
            let instrument = match self {
                Filter::None => false,
                Filter::Full => true,
                Filter::Default { inline_threshold } => f.size() > *inline_threshold,
                Filter::TaintBased { relevant } => relevant.contains(&f.name),
            };
            if instrument {
                probes[i] = probe_cost;
            }
        }
        // MPI routines: always intercepted.
        for (j, name) in externs.iter().enumerate() {
            if name.starts_with("MPI_") {
                probes[module.functions.len() + j] = probe_cost;
            }
        }
        probes
    }

    /// How many of the module's own functions this filter instruments.
    pub fn instrumented_count(&self, module: &Module) -> usize {
        let probes = self.probe_vector(module, 1.0);
        probes[..module.functions.len()]
            .iter()
            .filter(|p| **p > 0.0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{FunctionBuilder, Type};

    fn test_module() -> Module {
        let mut m = Module::new("t");
        // A tiny getter (3 instructions) and a big kernel (> 20).
        let mut b = FunctionBuilder::new("getter", vec![("d".into(), Type::Ptr)], Type::I64);
        let v = b.load(b.param(0), Type::I64);
        let w = b.add(v, 1i64);
        b.ret(Some(w));
        m.add_function(b.finish());
        let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |b, iv| {
            let mut acc = iv;
            for _ in 0..20 {
                acc = b.add(acc, 1i64);
            }
            b.call_external("pt_work_flops", vec![acc], Type::Void);
            b.call_external("MPI_Barrier", vec![], Type::Void);
        });
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn none_filter_is_all_zero() {
        let m = test_module();
        let v = Filter::None.probe_vector(&m, 1e-6);
        assert!(v.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn full_filter_probes_everything_and_mpi() {
        let m = test_module();
        let v = Filter::Full.probe_vector(&m, 1e-6);
        assert!(v[0] > 0.0 && v[1] > 0.0);
        // Externals: MPI_Barrier yes, pt_work_flops no.
        let externs = m.used_externals();
        let mpi_pos = externs.iter().position(|e| *e == "MPI_Barrier").unwrap();
        let work_pos = externs.iter().position(|e| *e == "pt_work_flops").unwrap();
        assert!(v[m.functions.len() + mpi_pos] > 0.0);
        assert_eq!(v[m.functions.len() + work_pos], 0.0);
    }

    #[test]
    fn default_filter_skips_small_functions() {
        let m = test_module();
        let f = Filter::Default {
            inline_threshold: 10,
        };
        let v = f.probe_vector(&m, 1e-6);
        assert_eq!(v[0], 0.0, "getter looks inlinable → skipped");
        assert!(v[1] > 0.0, "kernel instrumented");
        assert_eq!(f.instrumented_count(&m), 1);
    }

    #[test]
    fn taint_filter_probes_only_relevant() {
        let m = test_module();
        let f = Filter::TaintBased {
            relevant: ["kernel".to_string()].into_iter().collect(),
        };
        let v = f.probe_vector(&m, 1e-6);
        assert_eq!(v[0], 0.0);
        assert!(v[1] > 0.0);
        // MPI still intercepted even under selective instrumentation.
        let externs = m.used_externals();
        let mpi_pos = externs.iter().position(|e| *e == "MPI_Barrier").unwrap();
        assert!(v[m.functions.len() + mpi_pos] > 0.0);
    }
}
