//! Measurement-noise injection.
//!
//! Our simulator is deterministic, so the noise real clusters inflict on
//! measurements (§B1: "random noise … systemic interference") is injected
//! when *sampling* repetitions from a deterministic profile. The model has
//! two parts, matching the phenomenology the paper describes:
//!
//! * a **multiplicative lognormal** component (relative jitter affecting
//!   everything — OS noise, frequency scaling), and
//! * an **additive half-normal floor** (timer granularity, interrupt
//!   spikes) which *dominates short-running functions* — exactly why
//!   black-box Extra-P overfits the models of tiny constant functions.
//!
//! Sampling is seeded and reproducible: the same (seed, function, point)
//! always yields the same repetitions.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// The two-component noise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// σ of the lognormal multiplicative jitter (e.g. 0.02 = 2%).
    pub rel_sigma: f64,
    /// Scale of the additive half-normal floor, in seconds.
    pub abs_floor: f64,
}

impl NoiseModel {
    /// Noise-free (for deterministic tests).
    pub const NONE: NoiseModel = NoiseModel {
        rel_sigma: 0.0,
        abs_floor: 0.0,
    };

    /// Calibrated to a quiet cluster partition: 2% relative jitter and a
    /// 2 µs floor.
    pub const CLUSTER: NoiseModel = NoiseModel {
        rel_sigma: 0.02,
        abs_floor: 2e-6,
    };

    /// Sample one noisy observation of `true_value` seconds.
    pub fn sample(&self, true_value: f64, rng: &mut StdRng) -> f64 {
        let mult = if self.rel_sigma > 0.0 {
            (standard_normal(rng) * self.rel_sigma).exp()
        } else {
            1.0
        };
        let add = if self.abs_floor > 0.0 {
            standard_normal(rng).abs() * self.abs_floor
        } else {
            0.0
        };
        (true_value * mult + add).max(0.0)
    }

    /// Sample `n` repetitions.
    pub fn sample_reps(&self, true_value: f64, n: usize, rng: &mut StdRng) -> Vec<f64> {
        (0..n).map(|_| self.sample(true_value, rng)).collect()
    }
}

/// Deterministic per-(seed, key) RNG: measurements are reproducible and
/// independent across functions/points.
pub fn rng_for(seed: u64, key: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

/// Standard normal via Box–Muller (the offline `rand` has no distributions
/// crate).
fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_noise_is_identity() {
        let mut rng = rng_for(1, "x");
        assert_eq!(NoiseModel::NONE.sample(0.5, &mut rng), 0.5);
    }

    #[test]
    fn reproducible_for_same_key() {
        let n = NoiseModel::CLUSTER;
        let a = n.sample_reps(1.0, 5, &mut rng_for(42, "foo@p=4"));
        let b = n.sample_reps(1.0, 5, &mut rng_for(42, "foo@p=4"));
        assert_eq!(a, b);
        let c = n.sample_reps(1.0, 5, &mut rng_for(42, "foo@p=8"));
        assert_ne!(a, c);
    }

    #[test]
    fn relative_noise_is_small_for_long_runs() {
        let n = NoiseModel::CLUSTER;
        let mut rng = rng_for(7, "long");
        let reps = n.sample_reps(10.0, 100, &mut rng);
        let mean = reps.iter().sum::<f64>() / reps.len() as f64;
        assert!((mean - 10.0).abs() / 10.0 < 0.02, "mean={mean}");
        for r in &reps {
            assert!((r - 10.0).abs() / 10.0 < 0.15);
        }
    }

    #[test]
    fn floor_dominates_tiny_values() {
        // A 10 ns function measured with a 2 µs floor: relative spread is
        // enormous — the §B1 failure mode.
        let n = NoiseModel::CLUSTER;
        let mut rng = rng_for(7, "tiny");
        let reps = n.sample_reps(1e-8, 50, &mut rng);
        let mean = reps.iter().sum::<f64>() / reps.len() as f64;
        assert!(mean > 1e-7, "floor dominates: mean={mean}");
        let sd = (reps.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>()
            / (reps.len() - 1) as f64)
            .sqrt();
        assert!(sd / mean > 0.3, "huge CV on tiny functions: {}", sd / mean);
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = rng_for(3, "m");
        let n = 20000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.08, "var={var}");
    }

    #[test]
    fn samples_never_negative() {
        let n = NoiseModel {
            rel_sigma: 1.0,
            abs_floor: 1e-6,
        };
        let mut rng = rng_for(9, "neg");
        for _ in 0..1000 {
            assert!(n.sample(1e-9, &mut rng) >= 0.0);
        }
    }
}
