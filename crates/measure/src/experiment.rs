//! The experiment runner: parameter sweeps over the simulated machine,
//! per-function measurement collection, repetition sampling under noise,
//! and core-hour cost accounting (§A3).
//!
//! One *sweep point* is one application configuration (parameter values +
//! machine layout). Running a point executes the application once on the
//! interpreter (taint off — this is the measurement pass, not the analysis
//! pass) under a chosen instrumentation filter, yielding per-function
//! exclusive/inclusive times. Repetitions are then sampled through the
//! noise model, mirroring how the paper repeats each real measurement five
//! times.

use crate::noise::{rng_for, NoiseModel};
use pt_extrap::MeasurementSet;
use pt_ir::Module;
use pt_mpisim::{MachineConfig, MpiHandler};
use pt_taint::{InterpConfig, InterpError, Interpreter, PreparedModule};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One configuration of a parameter sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Application parameters, e.g. `[("size", 30), ("p", 64)]`. Must
    /// include every parameter the application reads via `pt_param_i64`.
    pub params: Vec<(String, i64)>,
    pub machine: MachineConfig,
}

impl SweepPoint {
    pub fn param(&self, name: &str) -> Option<i64> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A short key identifying this point (stable across runs; used to seed
    /// noise independently per point).
    pub fn key(&self) -> String {
        self.params
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Timing of one function at one sweep point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FnTiming {
    pub calls: u64,
    pub inclusive: f64,
    pub exclusive: f64,
}

/// The deterministic profile of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PointProfile {
    pub point: SweepPoint,
    pub functions: BTreeMap<String, FnTiming>,
    /// Simulated wall-clock seconds of the run.
    pub wall: f64,
    /// IR instructions executed.
    pub insts: u64,
    /// Core-hours consumed: wall × ranks / 3600 (§A3 accounting).
    pub core_hours: f64,
}

/// Execute one sweep point. `probe` is the instrumentation filter's probe
/// vector (see [`crate::filter::Filter::probe_vector`]).
pub fn run_point(
    module: &Module,
    prepared: &PreparedModule,
    entry: &str,
    point: &SweepPoint,
    probe: &[f64],
) -> Result<PointProfile, InterpError> {
    let handler = MpiHandler::new(point.machine.clone());
    let config = InterpConfig {
        taint: false,
        coverage: false,
        probe_cost: probe.to_vec(),
        ..Default::default()
    };
    let interp = Interpreter::new(module, prepared, handler, point.params.clone(), config);
    let out = interp.run_named(entry, &[])?;

    let externs: Vec<&str> = module.used_externals();
    let nfuncs = module.functions.len();
    let name_of = |idx: usize| -> String {
        if idx < nfuncs {
            module.functions[idx].name.clone()
        } else {
            externs[idx - nfuncs].to_string()
        }
    };
    let mut functions = BTreeMap::new();
    for e in out.profile.by_function().values() {
        functions.insert(
            name_of(e.func.index()),
            FnTiming {
                calls: e.calls,
                inclusive: e.inclusive,
                exclusive: e.exclusive,
            },
        );
    }
    let ranks = point.machine.ranks as f64;
    Ok(PointProfile {
        point: point.clone(),
        functions,
        wall: out.time,
        insts: out.insts,
        core_hours: out.time * ranks / 3600.0,
    })
}

/// Execute a sweep, distributing points over `threads` worker threads.
/// Results keep the input order. Panics on interpreter errors (sweeps are
/// driven by our own harnesses over verified apps).
pub fn run_sweep(
    module: &Module,
    prepared: &PreparedModule,
    entry: &str,
    points: &[SweepPoint],
    probe: &[f64],
    threads: usize,
) -> Vec<PointProfile> {
    pt_util::parallel_map(points, threads, |point| {
        run_point(module, prepared, entry, point, probe)
            .unwrap_or_else(|e| panic!("sweep point {} failed: {e}", point.key()))
    })
}

/// Turn a sweep's deterministic profiles into per-function
/// [`MeasurementSet`]s, sampling `reps` noisy repetitions per point.
///
/// `model_params` names the modeled parameters (the coordinate axes), which
/// may be a subset of the application parameters — exactly like choosing
/// `p` and `size` for modeling while leaving other inputs at defaults.
pub fn function_sets(
    profiles: &[PointProfile],
    model_params: &[String],
    reps: usize,
    noise: &NoiseModel,
    seed: u64,
) -> BTreeMap<String, MeasurementSet> {
    let mut names: Vec<String> = profiles
        .iter()
        .flat_map(|p| p.functions.keys().cloned())
        .collect();
    names.sort();
    names.dedup();

    let mut out = BTreeMap::new();
    for name in names {
        let mut set = MeasurementSet::new(model_params.to_vec());
        for prof in profiles {
            let coords: Vec<f64> = model_params
                .iter()
                .map(|p| {
                    prof.point
                        .param(p)
                        .unwrap_or_else(|| panic!("sweep point lacks parameter {p}"))
                        as f64
                })
                .collect();
            let true_excl = prof
                .functions
                .get(&name)
                .map(|t| t.exclusive)
                .unwrap_or(0.0);
            let mut rng = rng_for(seed, &format!("{name}@{}", prof.point.key()));
            set.push(coords, noise.sample_reps(true_excl, reps, &mut rng));
        }
        out.insert(name, set);
    }
    out
}

/// Aggregate cost of a sweep in core-hours (§A3).
pub fn total_core_hours(profiles: &[PointProfile]) -> f64 {
    profiles.iter().map(|p| p.core_hours).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{FunctionBuilder, Type, Value};

    /// Toy app: kernel loops size times (flops), comm does an allreduce.
    fn toy_app() -> Module {
        let mut m = Module::new("toy");
        let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![Value::int(100)], Type::Void);
        });
        b.ret(None);
        let kernel = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("comm", vec![], Type::Void);
        b.call_external("MPI_Allreduce", vec![Value::int(8)], Type::Void);
        b.ret(None);
        let comm = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let size = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
        b.call(kernel, vec![size], Type::Void);
        b.call(comm, vec![], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    fn points() -> Vec<SweepPoint> {
        let mut pts = Vec::new();
        for &size in &[16i64, 32, 64] {
            for &p in &[4u32, 8] {
                pts.push(SweepPoint {
                    params: vec![("size".into(), size), ("p".into(), p as i64)],
                    machine: MachineConfig::default().with_ranks(p),
                });
            }
        }
        pts
    }

    #[test]
    fn run_point_collects_function_times() {
        let m = toy_app();
        let prepared = PreparedModule::compute(&m);
        let pt = &points()[0];
        let probe = vec![0.0; m.functions.len() + m.used_externals().len()];
        let prof = run_point(&m, &prepared, "main", pt, &probe).unwrap();
        assert!(prof.functions.contains_key("kernel"));
        assert!(prof.functions.contains_key("main"));
        assert!(prof.functions.contains_key("MPI_Allreduce"));
        assert!(prof.wall > 0.0);
        assert!(prof.core_hours > 0.0);
        assert_eq!(prof.functions["kernel"].calls, 1);
    }

    #[test]
    fn sweep_preserves_order_and_parallelizes() {
        let m = toy_app();
        let prepared = PreparedModule::compute(&m);
        let pts = points();
        let probe = vec![0.0; m.functions.len() + m.used_externals().len()];
        let profiles = run_sweep(&m, &prepared, "main", &pts, &probe, 4);
        assert_eq!(profiles.len(), pts.len());
        for (prof, pt) in profiles.iter().zip(&pts) {
            assert_eq!(&prof.point, pt);
        }
        // Kernel time grows with size.
        let t16 = profiles[0].functions["kernel"].exclusive;
        let t64 = profiles[4].functions["kernel"].exclusive;
        assert!(t64 > t16 * 3.0);
    }

    #[test]
    fn function_sets_have_full_coordinates() {
        let m = toy_app();
        let prepared = PreparedModule::compute(&m);
        let pts = points();
        let probe = vec![0.0; m.functions.len() + m.used_externals().len()];
        let profiles = run_sweep(&m, &prepared, "main", &pts, &probe, 2);
        let sets = function_sets(
            &profiles,
            &["p".to_string(), "size".to_string()],
            5,
            &NoiseModel::NONE,
            1,
        );
        let kset = &sets["kernel"];
        assert_eq!(kset.points.len(), 6);
        assert_eq!(kset.points[0].reps.len(), 5);
        // Without noise, reps are exact copies of the deterministic value.
        assert!(kset.points[0].cv() < 1e-12);
        // The kernel is p-independent: same size, different p → same time.
        let v = |size: f64, p: f64| {
            kset.points
                .iter()
                .find(|pt| pt.coords == vec![p, size])
                .unwrap()
                .mean()
        };
        assert!((v(16.0, 4.0) - v(16.0, 8.0)).abs() < 1e-12);
    }

    #[test]
    fn noise_sampling_reproducible() {
        let m = toy_app();
        let prepared = PreparedModule::compute(&m);
        let pts = points();
        let probe = vec![0.0; m.functions.len() + m.used_externals().len()];
        let profiles = run_sweep(&m, &prepared, "main", &pts, &probe, 1);
        let a = function_sets(&profiles, &["size".to_string()], 3, &NoiseModel::CLUSTER, 7);
        let b = function_sets(&profiles, &["size".to_string()], 3, &NoiseModel::CLUSTER, 7);
        assert_eq!(a["kernel"].points, b["kernel"].points);
    }

    #[test]
    fn core_hours_accumulate() {
        let m = toy_app();
        let prepared = PreparedModule::compute(&m);
        let pts = points();
        let probe = vec![0.0; m.functions.len() + m.used_externals().len()];
        let profiles = run_sweep(&m, &prepared, "main", &pts, &probe, 2);
        let total = total_core_hours(&profiles);
        assert!(total > 0.0);
        let manual: f64 = profiles
            .iter()
            .map(|p| p.wall * p.point.machine.ranks as f64 / 3600.0)
            .sum();
        assert!((total - manual).abs() < 1e-15);
    }
}
