//! Function and loop censuses: the data behind Tables 2 and 3.

use crate::volume::DepStructure;
use pt_analysis::classify::StaticClassification;
use pt_ir::{Callee, FunctionId, InstKind, Module};
use pt_taint::prepared::PreparedModule;
use pt_taint::{ParamSet, TaintRecords};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Final classification of one internal function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FuncKind {
    /// Proven constant at compile time (Table 2 "Pruned Statically").
    ConstantStatic,
    /// Not statically provable, but never executed in the representative
    /// run (Table 2 "Pruned Dynamically").
    ConstantDynamic,
    /// Executed, performance-relevant, calls MPI directly.
    Comm,
    /// Executed, performance-relevant computation.
    Kernel,
}

/// Classify every internal function. A function counts as a communication
/// routine when it directly calls a *performance-relevant* library routine
/// (per the §5.3 database) — environment queries like `MPI_Comm_rank` do
/// not make their caller a comm routine.
pub fn classify_kinds(
    module: &Module,
    classification: &StaticClassification,
    records: &TaintRecords,
    db: &pt_mpisim::LibraryDb,
) -> Vec<FuncKind> {
    module
        .function_ids()
        .map(|f| {
            if classification.class(f).is_constant() {
                FuncKind::ConstantStatic
            } else if !records.executed[f.index()] {
                FuncKind::ConstantDynamic
            } else if calls_relevant_mpi(module, f, db) {
                FuncKind::Comm
            } else {
                FuncKind::Kernel
            }
        })
        .collect()
}

fn calls_relevant_mpi(module: &Module, f: FunctionId, db: &pt_mpisim::LibraryDb) -> bool {
    module.function(f).insts.iter().any(|i| {
        matches!(
            &i.kind,
            InstKind::Call {
                callee: Callee::External(name),
                ..
            } if name.starts_with("MPI_") && db.is_relevant(name)
        )
    })
}

/// The Table 2 row for one application.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2 {
    /// All functions: internal + MPI routines used.
    pub functions_total: usize,
    pub pruned_static: usize,
    pub pruned_dynamic: usize,
    pub kernels: usize,
    pub comm_routines: usize,
    pub mpi_functions: usize,
    pub loops_total: usize,
    pub loops_pruned_static: usize,
    /// Loops with an observed parameter dependency.
    pub loops_relevant: usize,
}

impl Table2 {
    /// Fraction of functions classified constant (paper: 86.2% / 87.7%).
    pub fn constant_fraction(&self) -> f64 {
        (self.pruned_static + self.pruned_dynamic) as f64 / self.functions_total as f64
    }
}

/// Compute Table 2 for a module.
pub fn table2(
    module: &Module,
    prepared: &PreparedModule,
    kinds: &[FuncKind],
    classification: &StaticClassification,
    records: &TaintRecords,
) -> Table2 {
    let mpi_functions = module
        .used_externals()
        .iter()
        .filter(|e| e.starts_with("MPI_"))
        .count();
    let (loops_total, loops_pruned_static) = classification.module_loop_totals();
    let loops_relevant = records
        .loops_by_function()
        .iter()
        .filter(|((f, l), rec)| {
            f.index() < module.functions.len()
                && !prepared.func(*f).loop_is_constant(*l)
                && !rec.params.is_empty()
        })
        .count();
    Table2 {
        functions_total: module.functions.len() + mpi_functions,
        pruned_static: kinds
            .iter()
            .filter(|k| **k == FuncKind::ConstantStatic)
            .count(),
        pruned_dynamic: kinds
            .iter()
            .filter(|k| **k == FuncKind::ConstantDynamic)
            .count(),
        kernels: kinds.iter().filter(|k| **k == FuncKind::Kernel).count(),
        comm_routines: kinds.iter().filter(|k| **k == FuncKind::Comm).count(),
        mpi_functions,
        loops_total,
        loops_pruned_static,
        loops_relevant,
    }
}

/// One column of Table 3: how many kernels/loops a parameter affects.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamCoverage {
    pub functions: usize,
    pub loops: usize,
}

/// Table 3: per-parameter coverage over computational kernels (communication
/// routines excluded, as in the paper), plus the union over a chosen
/// parameter pair.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table3 {
    pub per_param: BTreeMap<String, ParamCoverage>,
    pub union_pair: (String, String),
    pub union_coverage: ParamCoverage,
    pub total_functions: usize,
    pub total_loops: usize,
}

/// Compute Table 3.
pub fn table3(
    module: &Module,
    prepared: &PreparedModule,
    kinds: &[FuncKind],
    deps: &BTreeMap<FunctionId, DepStructure>,
    records: &TaintRecords,
    param_names: &[String],
    pair: (&str, &str),
) -> Table3 {
    let is_counted =
        |f: FunctionId| kinds[f.index()] == FuncKind::Kernel || kinds[f.index()] == FuncKind::Comm;
    let loop_records = records.loops_by_function();

    let mut per_param = BTreeMap::new();
    let mut union_cov = ParamCoverage::default();
    let pair_idx: Vec<usize> = [pair.0, pair.1]
        .iter()
        .filter_map(|n| param_names.iter().position(|p| p == *n))
        .collect();
    let pair_mask = pair_idx
        .iter()
        .fold(ParamSet::EMPTY, |a, &i| a.union(ParamSet::single(i)));

    for (idx, name) in param_names.iter().enumerate() {
        let mut cov = ParamCoverage::default();
        for f in module.function_ids() {
            if !is_counted(f) || kinds[f.index()] == FuncKind::Comm {
                continue;
            }
            if deps[&f].depends_on(idx) {
                cov.functions += 1;
            }
        }
        for ((f, l), rec) in &loop_records {
            if f.index() >= module.functions.len()
                || prepared.func(*f).loop_is_constant(*l)
                || kinds[f.index()] == FuncKind::Comm
                || !is_counted(*f)
            {
                continue;
            }
            if rec.params.contains(idx) {
                cov.loops += 1;
            }
        }
        per_param.insert(name.clone(), cov);
    }

    let mut total_functions = 0;
    for f in module.function_ids() {
        if !is_counted(f) || kinds[f.index()] == FuncKind::Comm {
            continue;
        }
        total_functions += 1;
        if !deps[&f].params().intersect(pair_mask).is_empty() {
            union_cov.functions += 1;
        }
    }
    let mut total_loops = 0;
    for ((f, l), rec) in &loop_records {
        if f.index() >= module.functions.len()
            || prepared.func(*f).loop_is_constant(*l)
            || kinds[f.index()] == FuncKind::Comm
            || !is_counted(*f)
        {
            continue;
        }
        total_loops += 1;
        if !rec.params.intersect(pair_mask).is_empty() {
            union_cov.loops += 1;
        }
    }

    Table3 {
        per_param,
        union_pair: (pair.0.to_string(), pair.1.to_string()),
        union_coverage: union_cov,
        total_functions,
        total_loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_analysis::classify::classify_module;
    use pt_ir::{FunctionBuilder, Type, Value};
    use pt_mpisim::{LibraryDb, MachineConfig, MpiHandler};
    use pt_taint::{InterpConfig, Interpreter};

    fn test_module() -> Module {
        let mut m = Module::new("t");
        // A constant getter.
        let mut b = FunctionBuilder::new("getter", vec![("d".into(), Type::Ptr)], Type::I64);
        let v = b.load(b.param(0), Type::I64);
        b.ret(Some(v));
        m.add_function(b.finish());
        // A kernel.
        let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![Value::int(1)], Type::Void);
        });
        b.ret(None);
        let kernel = m.add_function(b.finish());
        // A comm routine.
        let mut b = FunctionBuilder::new("comm", vec![], Type::Void);
        b.call_external("MPI_Allreduce", vec![Value::int(1)], Type::Void);
        b.ret(None);
        let comm = m.add_function(b.finish());
        // A dead parametric function.
        let mut b = FunctionBuilder::new("dead_io", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |_, _| {});
        b.ret(None);
        m.add_function(b.finish());
        // main
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
        let slot = b.alloca(1i64);
        b.store(slot, Value::int(1));
        let pslot = b.alloca(1i64);
        b.call_external("MPI_Comm_size", vec![pslot], Type::Void);
        b.call(kernel, vec![n], Type::Void);
        b.call(comm, vec![], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn kinds_and_table2() {
        let m = test_module();
        let db = LibraryDb::mpi_default();
        let relevant: std::collections::HashSet<String> =
            db.relevant_names().map(String::from).collect();
        let classification = classify_module(&m, &relevant);
        let prepared = pt_taint::PreparedModule::compute(&m);
        let handler = MpiHandler::new(MachineConfig::default().with_ranks(4));
        let out = Interpreter::new(
            &m,
            &prepared,
            handler,
            vec![("n".into(), 5), ("p".into(), 4)],
            InterpConfig::default(),
        )
        .run_named("main", &[])
        .unwrap();

        let kinds = classify_kinds(&m, &classification, &out.records, &db);
        assert_eq!(kinds[0], FuncKind::ConstantStatic, "getter");
        assert_eq!(kinds[1], FuncKind::Kernel, "kernel");
        assert_eq!(kinds[2], FuncKind::Comm, "comm");
        assert_eq!(kinds[3], FuncKind::ConstantDynamic, "dead_io");
        assert_eq!(kinds[4], FuncKind::Kernel, "main");

        let t2 = table2(&m, &prepared, &kinds, &classification, &out.records);
        assert_eq!(t2.pruned_static, 1);
        assert_eq!(t2.pruned_dynamic, 1);
        assert_eq!(t2.kernels, 2);
        assert_eq!(t2.comm_routines, 1);
        assert_eq!(t2.mpi_functions, 2);
        assert_eq!(t2.functions_total, 5 + 2);
        // kernel's loop + dead_io's loop = 2 total; relevant = kernel's only.
        assert_eq!(t2.loops_total, 2);
        assert_eq!(t2.loops_relevant, 1);
    }

    #[test]
    fn table3_counts_param_coverage() {
        let m = test_module();
        let db = LibraryDb::mpi_default();
        let relevant: std::collections::HashSet<String> =
            db.relevant_names().map(String::from).collect();
        let classification = classify_module(&m, &relevant);
        let prepared = pt_taint::PreparedModule::compute(&m);
        let handler = MpiHandler::new(MachineConfig::default().with_ranks(4));
        let out = Interpreter::new(
            &m,
            &prepared,
            handler,
            vec![("n".into(), 5), ("p".into(), 4)],
            InterpConfig::default(),
        )
        .run_named("main", &[])
        .unwrap();
        let kinds = classify_kinds(&m, &classification, &out.records, &db);
        let deps = crate::deps::extract_deps(&m, &prepared, &out.records, &out.labels, &db);
        let names: Vec<String> = out.labels.param_names().to_vec();
        let t3 = table3(
            &m,
            &prepared,
            &kinds,
            &deps,
            &out.records,
            &names,
            ("p", "n"),
        );
        assert_eq!(t3.per_param["n"].functions, 1, "kernel depends on n");
        assert_eq!(t3.per_param["n"].loops, 1);
        assert_eq!(t3.union_coverage.functions, 1);
    }
}
