//! Compute-volume expressions and dependency structures (§4.2–§4.3).
//!
//! The taint analysis gives, per loop, a *class* of symbolic functions
//! `g(p₁,…,pₙ)` — the parameters that may drive its trip count (Claim 1).
//! Volumes compose: sequencing adds, nesting multiplies (§4.2), and the
//! interprocedural accumulation over a recursion-free call tree yields the
//! asymptotic compute volume of the whole program (Theorem 1).
//!
//! For the hybrid modeler the salient projection of a volume expression is
//! its **dependency structure**: the set of parameter *monomials* — maximal
//! parameter sets that can be multiplied together in one term. `{p}+{s}`
//! (additive) and `{p·s}` (multiplicative) drive both the experiment-design
//! reduction (§A2) and the search-space restriction (§4.5).

use pt_taint::ParamSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A symbolic compute-volume expression over unknown loop-count functions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VolExpr {
    /// Constant work (straight-line code, constant-trip loops).
    Const,
    /// One unknown loop-count function `g(params)`.
    Loop(ParamSet),
    /// Sequential composition: sum of volumes.
    Sum(Vec<VolExpr>),
    /// Nesting: product of volumes.
    Prod(Vec<VolExpr>),
}

impl VolExpr {
    /// Sequence two volumes (§4.2: `vol(LN) = vol(c1) + vol(c2)`).
    pub fn seq(a: VolExpr, b: VolExpr) -> VolExpr {
        match (a, b) {
            (VolExpr::Const, x) | (x, VolExpr::Const) => x,
            (VolExpr::Sum(mut xs), VolExpr::Sum(ys)) => {
                xs.extend(ys);
                VolExpr::Sum(xs)
            }
            (VolExpr::Sum(mut xs), y) => {
                xs.push(y);
                VolExpr::Sum(xs)
            }
            (x, VolExpr::Sum(mut ys)) => {
                ys.insert(0, x);
                VolExpr::Sum(ys)
            }
            (x, y) => VolExpr::Sum(vec![x, y]),
        }
    }

    /// Nest a volume under a loop with count `g(params)`
    /// (§4.2: `vol(LN) = g(p) · vol(child)`). The loop's own per-iteration
    /// overhead is the implicit `+ c` inside: `g(p) · (c + vol(child))`.
    pub fn nest(count: ParamSet, body: VolExpr) -> VolExpr {
        let outer = VolExpr::Loop(count);
        match body {
            VolExpr::Const => outer,
            x => VolExpr::Prod(vec![outer, VolExpr::Sum(vec![VolExpr::Const, x])]),
        }
    }

    /// The dependency structure: every distinct monomial (product of
    /// parameter sets along a multiplication chain) in the expression.
    pub fn monomials(&self) -> Vec<ParamSet> {
        normalize_monomials(self.monomial_set())
    }

    /// The full term set of the expanded expression, where a constant term
    /// is the empty set. Sums concatenate; products take the cross-product
    /// union of their factors' term sets.
    fn monomial_set(&self) -> Vec<ParamSet> {
        match self {
            VolExpr::Const => vec![ParamSet::EMPTY],
            VolExpr::Loop(ps) => vec![*ps],
            VolExpr::Sum(xs) => xs.iter().flat_map(|x| x.monomial_set()).collect(),
            VolExpr::Prod(xs) => {
                let mut acc = vec![ParamSet::EMPTY];
                for x in xs {
                    let terms = x.monomial_set();
                    let mut next = Vec::with_capacity(acc.len() * terms.len());
                    for a in &acc {
                        for t in &terms {
                            next.push(a.union(*t));
                        }
                    }
                    next.sort();
                    next.dedup();
                    acc = next;
                }
                acc
            }
        }
    }

    /// All parameters appearing anywhere.
    pub fn params(&self) -> ParamSet {
        self.monomials()
            .into_iter()
            .fold(ParamSet::EMPTY, ParamSet::union)
    }

    /// Render with parameter names, e.g. `g0(size)·g1(size,p) + g2(iters)`.
    pub fn render(&self, names: &[String]) -> String {
        match self {
            VolExpr::Const => "c".into(),
            VolExpr::Loop(ps) => format!("g{}", ps.display(names)),
            VolExpr::Sum(xs) => xs
                .iter()
                .map(|x| x.render(names))
                .collect::<Vec<_>>()
                .join(" + "),
            VolExpr::Prod(xs) => xs
                .iter()
                .map(|x| match x {
                    VolExpr::Sum(_) => format!("({})", x.render(names)),
                    _ => x.render(names),
                })
                .collect::<Vec<_>>()
                .join("·"),
        }
    }
}

/// Dedup and drop monomials subsumed by a superset monomial (a term in
/// `p·s` already covers the lone `p` factor for restriction purposes — but
/// *not* for experiment design, so subsumed entries are only removed when
/// identical).
pub fn normalize_monomials(mut ms: Vec<ParamSet>) -> Vec<ParamSet> {
    ms.retain(|m| !m.is_empty());
    ms.sort();
    ms.dedup();
    ms
}

/// The dependency structure of one function: the parameter monomials its
/// (exclusive) cost may contain.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepStructure {
    pub monomials: Vec<ParamSet>,
}

impl DepStructure {
    pub fn constant() -> DepStructure {
        DepStructure {
            monomials: Vec::new(),
        }
    }

    pub fn from_monomials(ms: Vec<ParamSet>) -> DepStructure {
        DepStructure {
            monomials: normalize_monomials(ms),
        }
    }

    pub fn is_constant(&self) -> bool {
        self.monomials.is_empty()
    }

    /// Union of all parameters.
    pub fn params(&self) -> ParamSet {
        self.monomials
            .iter()
            .fold(ParamSet::EMPTY, |a, m| a.union(*m))
    }

    /// Does any monomial multiply ≥ 2 parameters together?
    pub fn has_multiplicative(&self) -> bool {
        self.monomials.iter().any(|m| m.len() >= 2)
    }

    pub fn depends_on(&self, param: usize) -> bool {
        self.params().contains(param)
    }

    /// Project onto a subset of parameters (the modeling axes): parameters
    /// outside `keep` are fixed in the sweep and drop out of the monomials.
    pub fn project(&self, keep: &[usize]) -> DepStructure {
        let keep_mask = keep
            .iter()
            .fold(ParamSet::EMPTY, |a, &k| a.union(ParamSet::single(k)));
        DepStructure::from_monomials(
            self.monomials
                .iter()
                .map(|m| m.intersect(keep_mask))
                .collect(),
        )
    }

    /// Remap parameter indices (app-parameter index → model-axis index).
    /// Parameters not present in `mapping` are dropped.
    pub fn remap(&self, mapping: &[(usize, usize)]) -> DepStructure {
        let ms = self
            .monomials
            .iter()
            .map(|m| {
                let mut out = ParamSet::EMPTY;
                for &(from, to) in mapping {
                    if m.contains(from) {
                        out = out.union(ParamSet::single(to));
                    }
                }
                out
            })
            .collect();
        DepStructure::from_monomials(ms)
    }

    /// Convert into the extrap search-space restriction.
    pub fn to_restriction(&self) -> pt_extrap::Restriction {
        pt_extrap::Restriction::from_monomials(self.monomials.iter().map(|m| m.0).collect())
    }

    /// Merge another structure (e.g. library-database dependencies).
    pub fn merge(&mut self, other: &DepStructure) {
        self.monomials.extend(other.monomials.iter().copied());
        self.monomials = normalize_monomials(std::mem::take(&mut self.monomials));
    }

    pub fn render(&self, names: &[String]) -> String {
        if self.is_constant() {
            return "constant".into();
        }
        self.monomials
            .iter()
            .map(|m| format!("{}", m.display(names)))
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

impl fmt::Display for DepStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(bits: u64) -> ParamSet {
        ParamSet(bits)
    }

    #[test]
    fn sequencing_is_additive() {
        // for i<p {..}; for j<s {..}  → monomials {p}, {s}
        let v = VolExpr::seq(VolExpr::Loop(ps(0b01)), VolExpr::Loop(ps(0b10)));
        assert_eq!(v.monomials(), vec![ps(0b01), ps(0b10)]);
        let d = DepStructure::from_monomials(v.monomials());
        assert!(!d.has_multiplicative());
    }

    #[test]
    fn nesting_is_multiplicative() {
        // for i<p { for j<s {..} } → monomials {p}, {p·s}
        let v = VolExpr::nest(ps(0b01), VolExpr::Loop(ps(0b10)));
        assert_eq!(v.monomials(), vec![ps(0b01), ps(0b11)]);
        let d = DepStructure::from_monomials(v.monomials());
        assert!(d.has_multiplicative());
    }

    #[test]
    fn const_elision() {
        assert_eq!(VolExpr::seq(VolExpr::Const, VolExpr::Const), VolExpr::Const);
        let v = VolExpr::seq(VolExpr::Const, VolExpr::Loop(ps(1)));
        assert_eq!(v, VolExpr::Loop(ps(1)));
        // Nesting constant body: only the loop's own count remains.
        let n = VolExpr::nest(ps(1), VolExpr::Const);
        assert_eq!(n.monomials(), vec![ps(1)]);
    }

    #[test]
    fn theorem1_style_accumulation() {
        // main: for it<I { A: for e<S {..}; B: for r<R { for j<S {..} } }
        let a = VolExpr::Loop(ps(0b001)); // S
        let b = VolExpr::nest(ps(0b010), VolExpr::Loop(ps(0b001))); // R × S
        let body = VolExpr::seq(a, b);
        let main = VolExpr::nest(ps(0b100), body); // I × (...)
        let ms = main.monomials();
        // {I}, {I,S}, {I,R}, {I,R,S}
        assert!(ms.contains(&ps(0b100)));
        assert!(ms.contains(&ps(0b101)));
        assert!(ms.contains(&ps(0b110)));
        assert!(ms.contains(&ps(0b111)));
    }

    #[test]
    fn projection_drops_fixed_params() {
        let d = DepStructure::from_monomials(vec![ps(0b101), ps(0b010)]);
        let proj = d.project(&[0]);
        assert_eq!(proj.monomials, vec![ps(0b001)]);
        // Projecting away everything → constant.
        let none = d.project(&[5]);
        assert!(none.is_constant());
    }

    #[test]
    fn remapping_to_model_axes() {
        // App params: size=0, iters=4, p=5. Model axes: p→0, size→1.
        let d = DepStructure::from_monomials(vec![
            ps(1 << 0 | 1 << 4), // {size, iters}
            ps(1 << 5),          // {p}
            ps(1 << 4),          // {iters} alone
        ]);
        let remapped = d.remap(&[(5, 0), (0, 1)]);
        assert_eq!(remapped.monomials, vec![ps(0b01), ps(0b10)]);
    }

    #[test]
    fn restriction_round_trip() {
        let d = DepStructure::from_monomials(vec![ps(0b01), ps(0b10)]);
        let r = d.to_restriction();
        assert!(r.allows_mask(0b01));
        assert!(r.allows_mask(0b10));
        assert!(!r.allows_mask(0b11), "additive structure forbids p·s");
        let m = DepStructure::from_monomials(vec![ps(0b11)]);
        assert!(m.to_restriction().allows_mask(0b11));
    }

    #[test]
    fn merge_and_render() {
        let mut d = DepStructure::from_monomials(vec![ps(0b01)]);
        d.merge(&DepStructure::from_monomials(vec![ps(0b10), ps(0b01)]));
        assert_eq!(d.monomials.len(), 2);
        let names = vec!["p".to_string(), "s".to_string()];
        assert_eq!(d.render(&names), "{p} + {s}");
        assert_eq!(DepStructure::constant().render(&names), "constant");
    }

    #[test]
    fn volume_rendering() {
        let names = vec!["p".to_string(), "s".to_string()];
        let v = VolExpr::nest(
            ps(0b01),
            VolExpr::seq(VolExpr::Loop(ps(0b10)), VolExpr::Const),
        );
        assert_eq!(v.render(&names), "g{p}·(c + g{s})");
    }
}
