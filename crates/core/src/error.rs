//! The workspace-wide error type of the public `perf_taint` API.
//!
//! Substrate crates keep their own error types (`pt_taint::InterpError`,
//! `pt_ir::parser::ParseError`); everything exposed from this crate wraps
//! them in [`PtError`] so callers program against one enum and substrate
//! types stay free to evolve. Every variant carries enough context to name
//! the failing artifact (entry point, parse location, offending setting)
//! without consulting logs.

use pt_ir::parser::ParseError;
use pt_taint::InterpError;
use std::fmt;

/// Any failure of the perf-taint pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PtError {
    /// The IR text failed to parse.
    Parse(ParseError),
    /// The requested entry function does not exist in the module.
    EntryNotFound { entry: String },
    /// The dynamic taint run failed inside the interpreter.
    TaintRun { entry: String, source: InterpError },
    /// A configuration value is unusable (bad machine shape, bad
    /// parameter value, ...).
    Config(String),
}

impl fmt::Display for PtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtError::Parse(e) => write!(f, "IR parse error: {e}"),
            PtError::EntryNotFound { entry } => {
                write!(f, "entry function `{entry}` not found in module")
            }
            PtError::TaintRun { entry, source } => {
                write!(f, "taint run of `{entry}` failed: {source}")
            }
            PtError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for PtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PtError::Parse(e) => Some(e),
            PtError::TaintRun { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ParseError> for PtError {
    fn from(e: ParseError) -> Self {
        PtError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_artifact() {
        let e = PtError::EntryNotFound {
            entry: "main".into(),
        };
        assert!(e.to_string().contains("`main`"));
        let e = PtError::TaintRun {
            entry: "driver".into(),
            source: InterpError::OutOfFuel,
        };
        let s = e.to_string();
        assert!(s.contains("driver") && s.contains("out of fuel"), "{s}");
    }

    #[test]
    fn source_chain_reaches_the_substrate_error() {
        use std::error::Error;
        let e = PtError::TaintRun {
            entry: "m".into(),
            source: InterpError::DivisionByZero { func: "f".into() },
        };
        assert!(e.source().unwrap().to_string().contains("division"));
    }
}
