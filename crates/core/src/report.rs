//! Text rendering of analysis artifacts (the harness binaries print these)
//! and the machine-readable bench-report structs (`BENCH_*.json`).

use crate::census::{FuncKind, Table2, Table3};
use crate::design::DesignReport;
use crate::hybrid::FunctionModel;
use crate::session::{Analysis, StaticArtifacts};
use crate::validate::{ContentionFinding, SegmentationWarning};
use pt_ir::Module;
use serde::json::Value;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Version of the `BENCH_*.json` schema. Bump on any breaking change to
/// [`BenchReport`]'s wire shape; `bench_compare` refuses mixed versions.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Outcome of one scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    Ok,
    /// The scenario returned an error (its message, for the report).
    Error(String),
}

/// One scenario's entry in a bench report.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    pub name: String,
    pub tags: Vec<String>,
    pub status: RunStatus,
    /// Harness-measured wall time of the whole scenario (seconds). The only
    /// nondeterministic number in the report — compared with a loose
    /// tolerance.
    pub wall_seconds: f64,
    /// Named scalar metrics. Convention: **lower is better** for every
    /// metric a regression gate should act on (costs, errors, overheads);
    /// see `crates/bench/README.md`.
    pub metrics: BTreeMap<String, f64>,
}

impl ScenarioRecord {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("name", Value::str(&self.name)),
            (
                "tags",
                Value::Arr(self.tags.iter().map(Value::str).collect()),
            ),
            (
                "status",
                Value::str(match &self.status {
                    RunStatus::Ok => "ok",
                    RunStatus::Error(_) => "error",
                }),
            ),
            (
                "error",
                match &self.status {
                    RunStatus::Ok => Value::Null,
                    RunStatus::Error(e) => Value::str(e),
                },
            ),
            ("wall_seconds", Value::Num(self.wall_seconds)),
            (
                "metrics",
                Value::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Value) -> Result<ScenarioRecord, String> {
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("scenario record missing 'name'")?
            .to_string();
        let tags = v
            .get("tags")
            .and_then(Value::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|t| t.as_str().map(String::from))
            .collect();
        let status = match v.get("status").and_then(Value::as_str) {
            Some("ok") => RunStatus::Ok,
            Some("error") => RunStatus::Error(
                v.get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            ),
            other => return Err(format!("scenario '{name}': bad status {other:?}")),
        };
        let wall_seconds = v
            .get("wall_seconds")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("scenario '{name}' missing 'wall_seconds'"))?;
        let mut metrics = BTreeMap::new();
        if let Some(Value::Obj(fields)) = v.get("metrics") {
            for (k, m) in fields {
                metrics.insert(
                    k.clone(),
                    m.as_f64()
                        .ok_or_else(|| format!("scenario '{name}': metric '{k}' not a number"))?,
                );
            }
        }
        Ok(ScenarioRecord {
            name,
            tags,
            status,
            wall_seconds,
            metrics,
        })
    }
}

/// A complete bench run: what `bench_all` writes and `bench_compare` reads.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Wire-format version ([`BENCH_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Commit the run was taken at (`unknown` outside a git checkout).
    pub git_sha: String,
    /// Seconds since the Unix epoch at report creation.
    pub created_unix: u64,
    /// Whether the run used the reduced `--quick` sweeps.
    pub quick: bool,
    pub scenarios: Vec<ScenarioRecord>,
}

impl BenchReport {
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("schema", Value::Num(self.schema as f64)),
            ("tool", Value::str("pt-bench")),
            ("git_sha", Value::str(&self.git_sha)),
            ("created_unix", Value::Num(self.created_unix as f64)),
            ("quick", Value::Bool(self.quick)),
            (
                "scenarios",
                Value::Arr(self.scenarios.iter().map(ScenarioRecord::to_json).collect()),
            ),
        ])
    }

    /// Pretty-printed JSON document (what lands in `BENCH_<sha>.json`).
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    pub fn from_json(v: &Value) -> Result<BenchReport, String> {
        let schema = v
            .get("schema")
            .and_then(Value::as_u64)
            .ok_or("report missing numeric 'schema'")?;
        let git_sha = v
            .get("git_sha")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        let created_unix = v.get("created_unix").and_then(Value::as_u64).unwrap_or(0);
        let quick = v.get("quick").and_then(Value::as_bool).unwrap_or(false);
        let scenarios = v
            .get("scenarios")
            .and_then(Value::as_arr)
            .ok_or("report missing 'scenarios' array")?
            .iter()
            .map(ScenarioRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema,
            git_sha,
            created_unix,
            quick,
            scenarios,
        })
    }

    /// Parse a report from JSON text.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let v = Value::parse(text).map_err(|e| e.to_string())?;
        BenchReport::from_json(&v)
    }

    /// Find a scenario record by name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioRecord> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

/// Wall-clock timing of the decode-once execution engine over some
/// workload: the one-time decode cost and the per-run execute cost. The
/// `taint_throughput` scenario reports one of these per engine/app pair;
/// unlike [`analysis_summary`] these numbers are *nondeterministic* by
/// nature and therefore never enter the content-addressed store.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineTiming {
    /// Wall seconds compiling the module to bytecode (once per module).
    pub decode_seconds: f64,
    /// Wall seconds executing the run(s).
    pub execute_seconds: f64,
    /// IR instructions interpreted during `execute_seconds`.
    pub insts: u64,
}

impl EngineTiming {
    /// Interpreted instructions per second over the execute phase.
    pub fn insts_per_second(&self) -> f64 {
        if self.execute_seconds > 0.0 {
            self.insts as f64 / self.execute_seconds
        } else {
            0.0
        }
    }

    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("decode_seconds", Value::Num(self.decode_seconds)),
            ("execute_seconds", Value::Num(self.execute_seconds)),
            ("insts", Value::Num(self.insts as f64)),
            ("insts_per_second", Value::Num(self.insts_per_second())),
        ])
    }

    pub fn from_json(v: &Value) -> Result<EngineTiming, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("engine timing missing '{k}'"))
        };
        Ok(EngineTiming {
            decode_seconds: num("decode_seconds")?,
            execute_seconds: num("execute_seconds")?,
            insts: v
                .get("insts")
                .and_then(Value::as_u64)
                .ok_or("engine timing missing 'insts'")?,
        })
    }
}

/// Wire name of a [`FuncKind`].
pub fn func_kind_name(kind: FuncKind) -> &'static str {
    match kind {
        FuncKind::ConstantStatic => "constant_static",
        FuncKind::ConstantDynamic => "constant_dynamic",
        FuncKind::Comm => "comm",
        FuncKind::Kernel => "kernel",
    }
}

fn table2_json(t: &Table2) -> Value {
    Value::obj(vec![
        ("functions_total", Value::int(t.functions_total as i64)),
        ("pruned_static", Value::int(t.pruned_static as i64)),
        ("pruned_dynamic", Value::int(t.pruned_dynamic as i64)),
        ("kernels", Value::int(t.kernels as i64)),
        ("comm_routines", Value::int(t.comm_routines as i64)),
        ("mpi_functions", Value::int(t.mpi_functions as i64)),
        ("loops_total", Value::int(t.loops_total as i64)),
        (
            "loops_pruned_static",
            Value::int(t.loops_pruned_static as i64),
        ),
        ("loops_relevant", Value::int(t.loops_relevant as i64)),
    ])
}

/// The machine-readable summary of the static stage (§5.1) — what the
/// analysis service answers `static_analysis` requests with. Everything in
/// it is deterministic, so cached copies compare byte-identical to fresh
/// computations.
pub fn static_summary(statics: &StaticArtifacts, module: &Module) -> Value {
    let (loops_total, loops_constant) = statics.classification.module_loop_totals();
    Value::obj(vec![
        ("module", Value::str(&module.name)),
        ("functions_total", Value::int(module.functions.len() as i64)),
        (
            "pruned_static",
            Value::int(statics.classification.pruned_count() as i64),
        ),
        ("loops_total", Value::int(loops_total as i64)),
        ("loops_constant", Value::int(loops_constant as i64)),
        (
            "recursion_warnings",
            Value::int(statics.classification.recursion_warnings.len() as i64),
        ),
        (
            "irreducible_warnings",
            Value::int(statics.classification.irreducible_warnings.len() as i64),
        ),
    ])
}

/// The machine-readable summary of one taint run — what the analysis
/// service answers `taint_run` requests with. The fields are exactly the
/// deterministic outputs of [`Analysis`]: parameter names, per-function
/// classification and dependency structures (rendered against the run's
/// parameter names), MPI dependency structures, Table 2, and the simulated
/// run cost. Producing it through this one function is what makes the
/// served and in-process paths byte-identical.
pub fn analysis_summary(analysis: &Analysis, module: &Module) -> Value {
    let names = &analysis.param_names;
    let functions: Vec<(String, Value)> = module
        .function_ids()
        .map(|f| {
            let mut fields = vec![(
                "kind",
                Value::str(func_kind_name(analysis.kinds[f.index()])),
            )];
            if let Some(dep) = analysis.deps.get(&f) {
                fields.push(("deps", Value::str(dep.render(names))));
            }
            (module.function(f).name.clone(), Value::obj(fields))
        })
        .collect();
    let extern_deps: Vec<(String, Value)> = analysis
        .extern_deps
        .iter()
        .map(|(name, dep)| (name.clone(), Value::str(dep.render(names))))
        .collect();
    // The security policy's per-sink ledger (`pt_sink_check` sites). The
    // param-set policy never populates it, and the field is omitted when
    // empty so default-policy summaries stay byte-identical across
    // protocol revisions.
    let sink_checks: Vec<(String, Value)> = analysis
        .records
        .sink_checks
        .iter()
        .map(|(id, rec)| {
            let bases = analysis.labels.param_names();
            let params: Vec<Value> = rec
                .params
                .iter()
                .filter_map(|i| bases.get(i).map(Value::str))
                .collect();
            (
                id.to_string(),
                Value::obj(vec![
                    ("checks", Value::int(rec.checks as i64)),
                    ("violations", Value::int(rec.violations as i64)),
                    ("params", Value::Arr(params)),
                ]),
            )
        })
        .collect();
    let mut doc = Value::obj(vec![
        ("module", Value::str(&module.name)),
        (
            "param_names",
            Value::Arr(names.iter().map(Value::str).collect()),
        ),
        ("functions", Value::Obj(functions)),
        ("extern_deps", Value::Obj(extern_deps)),
        ("table2", table2_json(&analysis.table2)),
        (
            "never_visited_paths",
            Value::int(analysis.never_visited_paths(module).len() as i64),
        ),
        ("taint_run_time", Value::Num(analysis.taint_run_time)),
        (
            "taint_run_core_hours",
            Value::Num(analysis.taint_run_core_hours),
        ),
    ]);
    if !sink_checks.is_empty() {
        if let Value::Obj(entries) = &mut doc {
            entries.push(("sink_checks".to_string(), Value::Obj(sink_checks)));
        }
    }
    doc
}

/// Render Table 2 in the paper's layout.
pub fn render_table2(app: &str, t: &Table2) -> String {
    let mut s = String::new();
    writeln!(s, "Table 2 — overview: {app}").unwrap();
    writeln!(s, "  Functions                    {:>6}", t.functions_total).unwrap();
    writeln!(
        s,
        "  Pruned Statically/Dynamically {:>4}/{}",
        t.pruned_static, t.pruned_dynamic
    )
    .unwrap();
    writeln!(
        s,
        "  Kernels/Comm. Routines/MPI    {:>3}/{}/{}",
        t.kernels, t.comm_routines, t.mpi_functions
    )
    .unwrap();
    writeln!(s, "  Loops                        {:>6}", t.loops_total).unwrap();
    writeln!(
        s,
        "  Pruned Statically            {:>6}",
        t.loops_pruned_static
    )
    .unwrap();
    writeln!(s, "  Relevant                     {:>6}", t.loops_relevant).unwrap();
    writeln!(
        s,
        "  Constant functions           {:>5.1}%",
        100.0 * t.constant_fraction()
    )
    .unwrap();
    s
}

/// Render Table 3.
pub fn render_table3(app: &str, t: &Table3) -> String {
    let mut s = String::new();
    writeln!(s, "Table 3 — parameter coverage: {app}").unwrap();
    writeln!(
        s,
        "  {:<12} {:>10} {:>10}",
        "parameter", "functions", "loops"
    )
    .unwrap();
    writeln!(
        s,
        "  {:<12} {:>10} {:>10}",
        "(total)", t.total_functions, t.total_loops
    )
    .unwrap();
    for (name, cov) in &t.per_param {
        writeln!(s, "  {:<12} {:>10} {:>10}", name, cov.functions, cov.loops).unwrap();
    }
    writeln!(
        s,
        "  {:<12} {:>10} {:>10}",
        format!("{},{}", t.union_pair.0, t.union_pair.1),
        t.union_coverage.functions,
        t.union_coverage.loops
    )
    .unwrap();
    s
}

/// Render an experiment-design report (§A2).
pub fn render_design(d: &DesignReport) -> String {
    let mut s = String::new();
    writeln!(s, "Experiment design (§A2)").unwrap();
    writeln!(
        s,
        "  parameters: {:?} with {:?} values",
        d.param_names, d.values_per_param
    )
    .unwrap();
    let group_names: Vec<Vec<&str>> = d
        .groups
        .iter()
        .map(|g| g.iter().map(|&i| d.param_names[i].as_str()).collect())
        .collect();
    writeln!(s, "  joint-sampling groups: {group_names:?}").unwrap();
    writeln!(
        s,
        "  experiments: {} (full grid) → {} (taint-reduced), saving {:.1}%",
        d.full_grid,
        d.reduced,
        d.savings_percent()
    )
    .unwrap();
    writeln!(s, "  additive only: {}", d.additive_only).unwrap();
    s
}

/// Render a set of function models, largest mean first.
pub fn render_models(
    models: &BTreeMap<String, FunctionModel>,
    param_names: &[String],
    top: usize,
) -> String {
    let mut rows: Vec<&FunctionModel> = models.values().collect();
    rows.sort_by(|a, b| b.mean_value.total_cmp(&a.mean_value));
    let mut s = String::new();
    writeln!(
        s,
        "  {:<44} {:>9} {:>7}  model",
        "function", "mean[s]", "cv"
    )
    .unwrap();
    for m in rows.into_iter().take(top) {
        let flag = if m.reliable { ' ' } else { '!' };
        writeln!(
            s,
            "  {:<44} {:>9.3e} {:>6.3}{} {}",
            m.name,
            m.mean_value,
            m.max_cv,
            flag,
            m.fitted.model.render(param_names)
        )
        .unwrap();
    }
    s
}

/// Render contention findings (§C1 / Figure 5).
pub fn render_contention(findings: &[ContentionFinding], param: &str) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Contention findings (§C1): {} function(s) grow with {param} despite proven independence",
        findings.len()
    )
    .unwrap();
    for f in findings {
        writeln!(
            s,
            "  {:<44} ×{:.2} model: {}",
            f.function,
            f.rel_increase,
            f.model.model.render(&[param.to_string()])
        )
        .unwrap();
    }
    s
}

/// Render segmentation warnings (§C2).
pub fn render_segmentation(warnings: &[SegmentationWarning], configs: &[String]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Experiment-design warnings (§C2): {} branch(es) change behavior across the domain",
        warnings.len()
    )
    .unwrap();
    for w in warnings {
        writeln!(
            s,
            "  {} @{:?} driven by {:?}",
            w.function, w.block, w.params
        )
        .unwrap();
        for (a, b) in &w.boundaries {
            let ca = configs.get(*a).cloned().unwrap_or_else(|| a.to_string());
            let cb = configs.get(*b).cloned().unwrap_or_else(|| b.to_string());
            writeln!(s, "    behavior changes between {ca} and {cb}").unwrap();
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::ParamCoverage;

    #[test]
    fn tables_render() {
        let t2 = Table2 {
            functions_total: 356,
            pruned_static: 296,
            pruned_dynamic: 11,
            kernels: 40,
            comm_routines: 2,
            mpi_functions: 7,
            loops_total: 275,
            loops_pruned_static: 52,
            loops_relevant: 78,
        };
        let s = render_table2("mini-lulesh", &t2);
        assert!(s.contains("296/11"));
        assert!(s.contains("40/2/7"));
        assert!(s.contains("86.2%"));

        let mut t3 = Table3::default();
        t3.per_param.insert(
            "size".into(),
            ParamCoverage {
                functions: 40,
                loops: 78,
            },
        );
        t3.union_pair = ("p".into(), "size".into());
        t3.union_coverage = ParamCoverage {
            functions: 40,
            loops: 78,
        };
        t3.total_functions = 43;
        t3.total_loops = 86;
        let s = render_table3("mini-lulesh", &t3);
        assert!(s.contains("size"));
        assert!(s.contains("78"));
    }

    #[test]
    fn bench_report_roundtrips_through_json() {
        let report = BenchReport {
            schema: BENCH_SCHEMA_VERSION,
            git_sha: "abc1234def".into(),
            created_unix: 1_753_776_000,
            quick: true,
            scenarios: vec![
                ScenarioRecord {
                    name: "fig3_overhead_lulesh".into(),
                    tags: vec!["figure".into(), "lulesh".into()],
                    status: RunStatus::Ok,
                    wall_seconds: 1.25,
                    metrics: BTreeMap::from([
                        ("overhead_taint_geomean_pct".into(), 4.9),
                        ("overhead_full_geomean_pct".into(), 4400.0),
                    ]),
                },
                ScenarioRecord {
                    name: "b1_noise_resilience".into(),
                    tags: vec![],
                    status: RunStatus::Error("entry not found".into()),
                    wall_seconds: 0.01,
                    metrics: BTreeMap::new(),
                },
            ],
        };
        let text = report.to_json_string();
        assert!(text.contains("\"schema\": 1"));
        let parsed = BenchReport::parse(&text).expect("parse back");
        assert_eq!(parsed, report);
        assert_eq!(
            parsed.scenario("fig3_overhead_lulesh").unwrap().metrics["overhead_taint_geomean_pct"],
            4.9
        );
        assert!(parsed.scenario("nope").is_none());
    }

    #[test]
    fn bench_report_parse_rejects_malformed_documents() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{}").is_err()); // no schema
        assert!(BenchReport::parse(r#"{"schema": 1}"#).is_err()); // no scenarios
                                                                  // A scenario without a name is rejected.
        let bad = r#"{"schema": 1, "scenarios": [{"status": "ok", "wall_seconds": 1}]}"#;
        assert!(BenchReport::parse(bad).is_err());
        // Bad status string is rejected.
        let bad =
            r#"{"schema": 1, "scenarios": [{"name": "x", "status": "meh", "wall_seconds": 1}]}"#;
        assert!(BenchReport::parse(bad).is_err());
    }

    #[test]
    fn summaries_are_deterministic_and_roundtrip_the_wire() {
        use pt_ir::{FunctionBuilder, Module, Type, Value as IrValue};
        let mut m = Module::new("wire");
        let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![IrValue::int(3)], Type::Void);
        });
        b.ret(None);
        let kernel = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let n = b.call_external("pt_param_i64", vec![IrValue::int(0)], Type::I64);
        b.call(kernel, vec![n], Type::Void);
        b.ret(None);
        m.add_function(b.finish());

        let session = crate::SessionBuilder::new(&m, "main").build();
        let statics = session.static_analysis();
        let s = static_summary(&statics, &m);
        assert_eq!(s.get("module").and_then(Value::as_str), Some("wire"));
        assert_eq!(s.get("functions_total").and_then(Value::as_u64), Some(2));

        let a1 = session.taint_run(vec![("size".into(), 6)]).unwrap();
        let a2 = session.taint_run(vec![("size".into(), 6)]).unwrap();
        let r1 = analysis_summary(&a1, &m).render();
        let r2 = analysis_summary(&a2, &m).render();
        // Deterministic pipeline → byte-identical summaries, and the text
        // survives a parse→render round trip (the service's warm path).
        assert_eq!(r1, r2);
        let reparsed = Value::parse(&r1).unwrap();
        assert_eq!(reparsed.render(), r1);
        assert_eq!(
            reparsed
                .get("functions")
                .and_then(|f| f.get("kernel"))
                .and_then(|k| k.get("kind"))
                .and_then(Value::as_str),
            Some("kernel")
        );
        assert_eq!(
            reparsed
                .get("param_names")
                .and_then(Value::as_arr)
                .map(|a| a.len()),
            Some(1)
        );
    }

    #[test]
    fn engine_timing_roundtrips_and_rates() {
        let t = EngineTiming {
            decode_seconds: 0.002,
            execute_seconds: 0.5,
            insts: 25_000_000,
        };
        assert!((t.insts_per_second() - 5e7).abs() < 1e-6);
        let parsed = EngineTiming::from_json(&t.to_json()).expect("roundtrip");
        assert_eq!(parsed, t);
        let zero = EngineTiming {
            decode_seconds: 0.0,
            execute_seconds: 0.0,
            insts: 0,
        };
        assert_eq!(zero.insts_per_second(), 0.0);
        assert!(EngineTiming::from_json(&Value::obj(vec![])).is_err());
    }

    #[test]
    fn design_renders() {
        let d = crate::design::DesignReport {
            param_names: vec!["p".into(), "size".into()],
            values_per_param: vec![5, 5],
            groups: vec![vec![0], vec![1]],
            full_grid: 25,
            reduced: 9,
            additive_only: true,
        };
        let s = render_design(&d);
        assert!(s.contains("25"));
        assert!(s.contains("9"));
        assert!(s.contains("64.0%"));
    }
}
