//! Text rendering of analysis artifacts (the harness binaries print these).

use crate::census::{Table2, Table3};
use crate::design::DesignReport;
use crate::hybrid::FunctionModel;
use crate::validate::{ContentionFinding, SegmentationWarning};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Render Table 2 in the paper's layout.
pub fn render_table2(app: &str, t: &Table2) -> String {
    let mut s = String::new();
    writeln!(s, "Table 2 — overview: {app}").unwrap();
    writeln!(s, "  Functions                    {:>6}", t.functions_total).unwrap();
    writeln!(
        s,
        "  Pruned Statically/Dynamically {:>4}/{}",
        t.pruned_static, t.pruned_dynamic
    )
    .unwrap();
    writeln!(
        s,
        "  Kernels/Comm. Routines/MPI    {:>3}/{}/{}",
        t.kernels, t.comm_routines, t.mpi_functions
    )
    .unwrap();
    writeln!(s, "  Loops                        {:>6}", t.loops_total).unwrap();
    writeln!(
        s,
        "  Pruned Statically            {:>6}",
        t.loops_pruned_static
    )
    .unwrap();
    writeln!(s, "  Relevant                     {:>6}", t.loops_relevant).unwrap();
    writeln!(
        s,
        "  Constant functions           {:>5.1}%",
        100.0 * t.constant_fraction()
    )
    .unwrap();
    s
}

/// Render Table 3.
pub fn render_table3(app: &str, t: &Table3) -> String {
    let mut s = String::new();
    writeln!(s, "Table 3 — parameter coverage: {app}").unwrap();
    writeln!(
        s,
        "  {:<12} {:>10} {:>10}",
        "parameter", "functions", "loops"
    )
    .unwrap();
    writeln!(
        s,
        "  {:<12} {:>10} {:>10}",
        "(total)", t.total_functions, t.total_loops
    )
    .unwrap();
    for (name, cov) in &t.per_param {
        writeln!(s, "  {:<12} {:>10} {:>10}", name, cov.functions, cov.loops).unwrap();
    }
    writeln!(
        s,
        "  {:<12} {:>10} {:>10}",
        format!("{},{}", t.union_pair.0, t.union_pair.1),
        t.union_coverage.functions,
        t.union_coverage.loops
    )
    .unwrap();
    s
}

/// Render an experiment-design report (§A2).
pub fn render_design(d: &DesignReport) -> String {
    let mut s = String::new();
    writeln!(s, "Experiment design (§A2)").unwrap();
    writeln!(
        s,
        "  parameters: {:?} with {:?} values",
        d.param_names, d.values_per_param
    )
    .unwrap();
    let group_names: Vec<Vec<&str>> = d
        .groups
        .iter()
        .map(|g| g.iter().map(|&i| d.param_names[i].as_str()).collect())
        .collect();
    writeln!(s, "  joint-sampling groups: {group_names:?}").unwrap();
    writeln!(
        s,
        "  experiments: {} (full grid) → {} (taint-reduced), saving {:.1}%",
        d.full_grid,
        d.reduced,
        d.savings_percent()
    )
    .unwrap();
    writeln!(s, "  additive only: {}", d.additive_only).unwrap();
    s
}

/// Render a set of function models, largest mean first.
pub fn render_models(
    models: &BTreeMap<String, FunctionModel>,
    param_names: &[String],
    top: usize,
) -> String {
    let mut rows: Vec<&FunctionModel> = models.values().collect();
    rows.sort_by(|a, b| b.mean_value.total_cmp(&a.mean_value));
    let mut s = String::new();
    writeln!(
        s,
        "  {:<44} {:>9} {:>7}  model",
        "function", "mean[s]", "cv"
    )
    .unwrap();
    for m in rows.into_iter().take(top) {
        let flag = if m.reliable { ' ' } else { '!' };
        writeln!(
            s,
            "  {:<44} {:>9.3e} {:>6.3}{} {}",
            m.name,
            m.mean_value,
            m.max_cv,
            flag,
            m.fitted.model.render(param_names)
        )
        .unwrap();
    }
    s
}

/// Render contention findings (§C1 / Figure 5).
pub fn render_contention(findings: &[ContentionFinding], param: &str) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Contention findings (§C1): {} function(s) grow with {param} despite proven independence",
        findings.len()
    )
    .unwrap();
    for f in findings {
        writeln!(
            s,
            "  {:<44} ×{:.2} model: {}",
            f.function,
            f.rel_increase,
            f.model.model.render(&[param.to_string()])
        )
        .unwrap();
    }
    s
}

/// Render segmentation warnings (§C2).
pub fn render_segmentation(warnings: &[SegmentationWarning], configs: &[String]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Experiment-design warnings (§C2): {} branch(es) change behavior across the domain",
        warnings.len()
    )
    .unwrap();
    for w in warnings {
        writeln!(
            s,
            "  {} @{:?} driven by {:?}",
            w.function, w.block, w.params
        )
        .unwrap();
        for (a, b) in &w.boundaries {
            let ca = configs.get(*a).cloned().unwrap_or_else(|| a.to_string());
            let cb = configs.get(*b).cloned().unwrap_or_else(|| b.to_string());
            writeln!(s, "    behavior changes between {ca} and {cb}").unwrap();
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::ParamCoverage;

    #[test]
    fn tables_render() {
        let t2 = Table2 {
            functions_total: 356,
            pruned_static: 296,
            pruned_dynamic: 11,
            kernels: 40,
            comm_routines: 2,
            mpi_functions: 7,
            loops_total: 275,
            loops_pruned_static: 52,
            loops_relevant: 78,
        };
        let s = render_table2("mini-lulesh", &t2);
        assert!(s.contains("296/11"));
        assert!(s.contains("40/2/7"));
        assert!(s.contains("86.2%"));

        let mut t3 = Table3::default();
        t3.per_param.insert(
            "size".into(),
            ParamCoverage {
                functions: 40,
                loops: 78,
            },
        );
        t3.union_pair = ("p".into(), "size".into());
        t3.union_coverage = ParamCoverage {
            functions: 40,
            loops: 78,
        };
        t3.total_functions = 43;
        t3.total_loops = 86;
        let s = render_table3("mini-lulesh", &t3);
        assert!(s.contains("size"));
        assert!(s.contains("78"));
    }

    #[test]
    fn design_renders() {
        let d = crate::design::DesignReport {
            param_names: vec!["p".into(), "size".into()],
            values_per_param: vec![5, 5],
            groups: vec![vec![0], vec![1]],
            full_grid: 25,
            reduced: 9,
            additive_only: true,
        };
        let s = render_design(&d);
        assert!(s.contains("25"));
        assert!(s.contains("9"));
        assert!(s.contains("64.0%"));
    }
}
