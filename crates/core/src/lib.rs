//! # perf-taint — hybrid taint-based performance modeling
//!
//! A from-scratch Rust reproduction of *"Extracting Clean Performance
//! Models from Tainted Programs"* (Copik et al., PPoPP 2021): dynamic taint
//! analysis discovers which program parameters can influence every loop's
//! trip count; the resulting **compute-volume dependency structures** act as
//! a white-box prior for a black-box empirical modeler, improving its
//! **cost** (fewer, cheaper experiments — §A), **quality** (no noise-induced
//! false dependencies — §B), and **validity** (detection of contention and
//! experiment-design defects — §C).
//!
//! ## Pipeline (Fig. 2 of the paper)
//!
//! ```text
//! annotate parameters → static analysis (prune constant functions, §5.1)
//!   → dynamic taint run (loop-exit sinks, control-flow taint, §5.2)
//!   → dependency extraction (volume composition §4.2–4.3 + library DB §5.3)
//!   → reduced experiment design (§A2) + selective instrumentation (§A3)
//!   → measurements → hybrid PMNF modeling (restricted search space, §4.5)
//!   → validation (contention §C1, qualitative changes §C2)
//! ```
//!
//! ## The staged session API
//!
//! The pipeline's stages have different costs and different inputs: the
//! static stage depends only on the module, while every taint run also
//! depends on parameter values. [`Session`] (built by [`SessionBuilder`])
//! owns that split — it memoizes the static artifacts and shares them
//! across any number of [`Session::taint_run`] calls or a parallel
//! [`Session::analyze_batch`] fan-out:
//!
//! ```text
//! let session = SessionBuilder::new(&module, "main").build();
//! let statics = session.static_analysis();          // stage 1, memoized
//! let a = session.taint_run(params_a)?;             // stages 2–3
//! let results = session.analyze_batch(&param_sets); // parallel stages 2–3
//! ```
//!
//! One-shot use is just a throwaway session (`SessionBuilder::new(&m,
//! entry).build().taint_run(params)`). Long-lived callers share static
//! stages across sessions — and across module *edits* — through a
//! content-keyed [`SessionCache`] backed by the per-function artifact
//! cache of [`incremental`]. Every fallible API returns the unified
//! [`PtError`]; substrate error types (`InterpError`, `ParseError`) never
//! leak.
//!
//! ## Crate map
//!
//! * [`session`] — [`Session`] / [`SessionBuilder`]: memoized static stage
//!   ([`StaticArtifacts`]), staged taint runs, parallel batching, and the
//!   [`Analysis`] artifact they produce.
//! * [`incremental`] — the content-addressed per-function artifact cache
//!   ([`FunctionArtifactCache`], [`ReuseStats`], [`UnitStore`]) behind
//!   [`SessionCache`]'s near-constant-time edit loops.
//! * [`error`] — [`PtError`], the workspace-wide error enum.
//! * [`volume`] — symbolic compute volumes (Claims 1–2, Theorem 1) and
//!   [`volume::DepStructure`] monomial sets.
//! * [`deps`] — from taint records to per-function dependency structures.
//! * [`census`] — function/loop censuses (Tables 2 and 3).
//! * [`design`] — experiment-design reduction (§A2).
//! * [`hybrid`] — the restricted PMNF modeler and black-box comparison (§B1).
//! * [`validate`] — contention (§C1) and segmentation (§C2) detection.
//! * [`pipeline`] — [`PipelineConfig`].
//! * [`report`] — text rendering of every artifact.
//!
//! The substrates live in sibling crates: `pt-ir` (the compiler IR),
//! `pt-analysis` (dominators/loops/SCEV), `pt-taint` (the DFSan-style
//! runtime + interpreter), `pt-extrap` (the Extra-P reimplementation),
//! `pt-mpisim` (the simulated MPI machine), and `pt-measure` (the Score-P
//! stand-in).

pub mod census;
pub mod deps;
pub mod design;
pub mod error;
pub mod hybrid;
pub mod incremental;
pub mod pipeline;
pub mod report;
pub mod session;
pub mod validate;
pub mod volume;

pub use census::{FuncKind, Table2, Table3};
pub use design::{design_experiments, DesignReport};
pub use error::PtError;
pub use hybrid::{compare_against_truth, model_functions, FunctionModel, ModelComparison};
pub use incremental::{FunctionArtifact, FunctionArtifactCache, ReuseStats, UnitStore};
pub use pipeline::PipelineConfig;
pub use report::{
    analysis_summary, static_summary, BenchReport, RunStatus, ScenarioRecord, BENCH_SCHEMA_VERSION,
};
pub use session::{parse_module, Analysis, Session, SessionBuilder, SessionCache, StaticArtifacts};
pub use validate::{
    detect_contention, detect_segmentation, BranchObservations, BranchSide, ContentionFinding,
    SegmentationWarning,
};
pub use volume::{DepStructure, VolExpr};
// The taint-policy selector is part of the session-facing API (it keys
// `SessionCache` slots and salts unit keys), so re-export it here.
pub use pt_taint::PolicyKind;
