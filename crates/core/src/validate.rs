//! Validation of measurements and experiment designs (§C).
//!
//! * **Contention detection** (§C1): when measurements of a function grow
//!   with a machine axis (ranks per node `r`) although taint analysis proved
//!   its compute volume independent of every program parameter, the growth
//!   must come from *outside the application* — hardware contention. The
//!   paper's experiment fixes `p` and `size` and sweeps `r`; functions whose
//!   measured times rise get `log²r`-shaped models.
//!
//! * **Experiment-design validation** (§C2): tainted branches that take
//!   *different directions at different sweep configurations* indicate a
//!   qualitative behavior change (e.g. a communication algorithm switching
//!   with `p`) inside the modeled domain — one PMNF cannot fit both
//!   regimes, so the user should split the design at the boundary.

use pt_extrap::{fit_single_param, FittedModel, MeasurementSet, SearchSpace};
use pt_ir::BlockId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A function flagged as contention-affected (§C1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentionFinding {
    pub function: String,
    /// Fitted single-parameter model in the swept machine axis.
    pub model: FittedModel,
    /// measured(max axis) / measured(min axis).
    pub rel_increase: f64,
    pub reliable: bool,
}

/// Detect contention: fit every function's measurements against the machine
/// axis and flag growth on taint-proven parameter-independent functions.
///
/// `proven_independent` lists functions whose dependency structure contains
/// no parameter that varies along this axis (for a ranks-per-node sweep
/// that is *every* function — `r` is not a program parameter at all).
pub fn detect_contention(
    sets: &BTreeMap<String, MeasurementSet>,
    proven_independent: &dyn Fn(&str) -> bool,
    space: &SearchSpace,
    cv_threshold: f64,
    min_rel_increase: f64,
) -> Vec<ContentionFinding> {
    let mut findings = Vec::new();
    for (name, set) in sets {
        if !proven_independent(name) {
            continue;
        }
        if set.points.len() < 3 {
            continue;
        }
        let mut pts: Vec<(f64, f64)> = set.points.iter().map(|p| (p.coords[0], p.mean())).collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let first = pts.first().unwrap().1;
        let last = pts.last().unwrap().1;
        if first <= 0.0 {
            continue;
        }
        let rel_increase = last / first;
        if rel_increase < min_rel_increase {
            continue;
        }
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let model = fit_single_param(&xs, &ys, 0, space);
        if model.model.is_constant() {
            continue; // growth not statistically expressible
        }
        findings.push(ContentionFinding {
            function: name.clone(),
            model,
            rel_increase,
            reliable: set.max_cv() <= cv_threshold,
        });
    }
    findings.sort_by(|a, b| b.rel_increase.total_cmp(&a.rel_increase));
    findings
}

/// Observed branch direction at one sweep configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BranchSide {
    AlwaysTrue,
    AlwaysFalse,
    Mixed,
}

/// A branch whose behavior changes across the sweep (§C2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentationWarning {
    pub function: String,
    pub block: BlockId,
    /// Names of the parameters tainting the branch condition.
    pub params: Vec<String>,
    /// Per configuration (in input order): the observed direction.
    pub directions: Vec<BranchSide>,
    /// Consecutive configuration indices between which behavior flips.
    pub boundaries: Vec<(usize, usize)>,
}

/// Per-configuration branch observations, as collected by coverage-enabled
/// runs: `(function name, block) → (taken_true, taken_false, params)`.
pub type BranchObservations = BTreeMap<(String, BlockId), (u64, u64, Vec<String>)>;

/// Detect qualitative behavior changes from per-configuration branch
/// coverage. `observations[i]` is the coverage of configuration `i`.
pub fn detect_segmentation(observations: &[BranchObservations]) -> Vec<SegmentationWarning> {
    let mut keys: Vec<(String, BlockId)> = observations
        .iter()
        .flat_map(|o| o.keys().cloned())
        .collect();
    keys.sort();
    keys.dedup();

    let mut warnings = Vec::new();
    for key in keys {
        let mut directions = Vec::with_capacity(observations.len());
        let mut params: Vec<String> = Vec::new();
        for obs in observations {
            match obs.get(&key) {
                Some((t, f, ps)) => {
                    for p in ps {
                        if !params.contains(p) {
                            params.push(p.clone());
                        }
                    }
                    directions.push(if *t > 0 && *f > 0 {
                        BranchSide::Mixed
                    } else if *t > 0 {
                        BranchSide::AlwaysTrue
                    } else {
                        BranchSide::AlwaysFalse
                    });
                }
                None => directions.push(BranchSide::AlwaysFalse),
            }
        }
        let mut boundaries = Vec::new();
        for i in 1..directions.len() {
            if directions[i] != directions[i - 1] {
                boundaries.push((i - 1, i));
            }
        }
        if !boundaries.is_empty() {
            warnings.push(SegmentationWarning {
                function: key.0,
                block: key.1,
                params,
                directions,
                boundaries,
            });
        }
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_extrap::MeasurePoint;

    #[test]
    fn contention_flags_growing_independent_function() {
        let mut sets = BTreeMap::new();
        let mut s = MeasurementSet::new(vec!["r".into()]);
        for &r in &[2.0f64, 4.0, 8.0, 12.0, 16.0, 18.0] {
            let l: f64 = r.log2();
            s.points.push(MeasurePoint {
                coords: vec![r],
                reps: vec![10.0 + 2.8 * l * l],
            });
        }
        sets.insert("memory_kernel".to_string(), s);
        let mut flat = MeasurementSet::new(vec!["r".into()]);
        for &r in &[2.0, 4.0, 8.0, 12.0, 16.0, 18.0] {
            flat.points.push(MeasurePoint {
                coords: vec![r],
                reps: vec![5.0],
            });
        }
        sets.insert("compute_kernel".to_string(), flat);

        let findings = detect_contention(&sets, &|_| true, &SearchSpace::default(), 0.1, 1.1);
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.function, "memory_kernel");
        assert!(f.rel_increase > 1.5);
        // The fitted model should pick up the log² shape.
        let t = &f.model.model.terms[0].1.factors[0];
        assert_eq!(t.log_exp, 2, "model: {}", f.model.model);
        assert!(f.reliable);
    }

    #[test]
    fn contention_respects_dependence_proofs() {
        let mut sets = BTreeMap::new();
        let mut s = MeasurementSet::new(vec!["r".into()]);
        for &r in &[2.0, 4.0, 8.0] {
            s.points.push(MeasurePoint {
                coords: vec![r],
                reps: vec![r],
            });
        }
        sets.insert("comm".to_string(), s);
        // comm is *not* proven independent → never flagged.
        let findings = detect_contention(
            &sets,
            &|name| name != "comm",
            &SearchSpace::small(),
            0.1,
            1.1,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn segmentation_detects_flip() {
        // Configurations p = 4, 8, 16, 32: branch true for p ≤ 8.
        let mk = |t: u64, f: u64| -> BranchObservations {
            let mut o = BTreeMap::new();
            o.insert(
                ("do_gather".to_string(), BlockId(0)),
                (t, f, vec!["p".to_string()]),
            );
            o
        };
        let obs = vec![mk(3, 0), mk(3, 0), mk(0, 3), mk(0, 3)];
        let warnings = detect_segmentation(&obs);
        assert_eq!(warnings.len(), 1);
        let w = &warnings[0];
        assert_eq!(w.function, "do_gather");
        assert_eq!(w.params, vec!["p".to_string()]);
        assert_eq!(w.boundaries, vec![(1, 2)]);
        assert_eq!(w.directions[0], BranchSide::AlwaysTrue);
        assert_eq!(w.directions[3], BranchSide::AlwaysFalse);
    }

    #[test]
    fn segmentation_quiet_when_stable() {
        let mk = || -> BranchObservations {
            let mut o = BTreeMap::new();
            o.insert(
                ("f".to_string(), BlockId(1)),
                (5, 0, vec!["size".to_string()]),
            );
            o
        };
        let obs = vec![mk(), mk(), mk()];
        assert!(detect_segmentation(&obs).is_empty());
    }
}
