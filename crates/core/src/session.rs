//! The staged session API (Fig. 2 of the paper, as an object).
//!
//! The pipeline is explicitly staged — static analysis → dynamic taint run
//! → dependency extraction — and the static stage depends only on the
//! module and the library database, not on parameter values. A [`Session`]
//! owns that observation: it memoizes the static artifacts
//! ([`StaticArtifacts`]: the §5.1 classification and the precomputed
//! per-function facts) and lets any number of taint runs — sequential via
//! [`Session::taint_run`] or fanned across threads via
//! [`Session::analyze_batch`] — share them. Related systems lean on the
//! same amortization: the Taint Rabbit caches pre-generated fast paths
//! across runs, and partial-instrumentation tracking computes its scope
//! once and reuses it.
//!
//! ```
//! use perf_taint::{SessionBuilder, PipelineConfig};
//! # use pt_ir::{FunctionBuilder, Module, Type, Value};
//! # let mut m = Module::new("doc");
//! # let mut b = FunctionBuilder::new("main", vec![], Type::Void);
//! # let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
//! # b.for_loop(0i64, n, 1i64, |b, _| {
//! #     b.call_external("pt_work_flops", vec![Value::int(1)], Type::Void);
//! # });
//! # b.ret(None);
//! # m.add_function(b.finish());
//! let session = SessionBuilder::new(&m, "main").build();
//! let a = session.taint_run(vec![("n".into(), 8)]).unwrap();
//! let b = session.taint_run(vec![("n".into(), 16)]).unwrap();
//! // Both runs shared one static stage:
//! assert!(std::sync::Arc::ptr_eq(&a.statics, &b.statics));
//! ```

use crate::census::{classify_kinds, table2, table3, FuncKind, Table2, Table3};
use crate::deps::{extern_deps, extract_deps};
use crate::error::PtError;
use crate::incremental::{FunctionArtifactCache, ReuseStats, UnitStore};
use crate::pipeline::PipelineConfig;
use crate::validate::BranchObservations;
use crate::volume::DepStructure;
use pt_analysis::classify::{classify_module, StaticClassification};
use pt_extrap::Restriction;
use pt_ir::{FunctionId, Module};
use pt_mpisim::MpiHandler;
use pt_taint::prepared::PreparedModule;
use pt_taint::{
    tier, Interpreter, LabelTable, PolicyKind, SpecializedModule, TaintRecords, TierMode, TierPlan,
    TierStats,
};
use std::collections::{BTreeMap, HashSet};
use std::sync::{Arc, Mutex, OnceLock};

/// Parse textual IR into a [`Module`], wrapping failures in [`PtError`].
pub fn parse_module(text: &str) -> Result<Module, PtError> {
    pt_ir::parser::parse_module(text).map_err(PtError::from)
}

/// Everything the static stage (§5.1) produces: computed once per
/// [`Session`], shared by every taint run through an [`Arc`].
pub struct StaticArtifacts {
    /// Interprocedural constant-function classification.
    pub classification: StaticClassification,
    /// Precomputed per-function facts (loops, postdominators, trip counts).
    pub prepared: PreparedModule,
    /// How this stage was obtained, unit by unit: recomputed from scratch,
    /// or assembled from the per-function artifact cache (see
    /// [`crate::incremental`]). Accounting only — never part of any
    /// deterministic summary.
    pub reuse: ReuseStats,
}

/// Builder for a [`Session`]. Defaults to the MPI library database and
/// machine ([`PipelineConfig::with_mpi_defaults`]).
pub struct SessionBuilder<'m> {
    module: &'m Module,
    entry: String,
    config: PipelineConfig,
    units: Option<Arc<FunctionArtifactCache>>,
}

impl<'m> SessionBuilder<'m> {
    pub fn new(module: &'m Module, entry: impl Into<String>) -> SessionBuilder<'m> {
        SessionBuilder {
            module,
            entry: entry.into(),
            config: PipelineConfig::with_mpi_defaults(),
            units: None,
        }
    }

    /// Replace the whole pipeline configuration.
    pub fn config(mut self, config: PipelineConfig) -> SessionBuilder<'m> {
        self.config = config;
        self
    }

    /// Select the taint policy the session's runs execute under (see
    /// [`pt_taint::policy`]). Shorthand for mutating
    /// [`PipelineConfig::interp`]'s `taint_policy`; the default is
    /// [`PolicyKind::from_env`].
    pub fn policy(mut self, policy: PolicyKind) -> SessionBuilder<'m> {
        self.config.interp.taint_policy = policy;
        self
    }

    /// Run the static stage incrementally against a shared per-function
    /// artifact cache instead of recomputing it whole (see
    /// [`crate::incremental`]). [`SessionCache`] wires this automatically.
    pub fn units(mut self, cache: Arc<FunctionArtifactCache>) -> SessionBuilder<'m> {
        self.units = Some(cache);
        self
    }

    pub fn build(self) -> Session<'m> {
        Session {
            module: self.module,
            entry: self.entry,
            config: self.config,
            units: self.units,
            statics: OnceLock::new(),
            tier: OnceLock::new(),
        }
    }
}

/// A reusable analysis session over one module: the static stage is
/// computed lazily, exactly once, and shared by all taint runs.
pub struct Session<'m> {
    module: &'m Module,
    entry: String,
    config: PipelineConfig,
    units: Option<Arc<FunctionArtifactCache>>,
    statics: OnceLock<Arc<StaticArtifacts>>,
    /// Profile-guided tier-1 specialization, built from the first
    /// completed taint run under [`TierMode::Warmup`] and installed into
    /// every later run's interpreter — the session-level analogue of the
    /// interpreter's own mid-run warmup threshold. Like `statics`, set
    /// exactly once and shared.
    tier: OnceLock<Arc<SpecializedModule>>,
}

impl<'m> Session<'m> {
    pub fn module(&self) -> &'m Module {
        self.module
    }

    pub fn entry(&self) -> &str {
        &self.entry
    }

    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Stage 1 (§5.1): classification + precomputed facts, memoized.
    /// The first call computes; later calls (from any thread) are free.
    pub fn static_analysis(&self) -> Arc<StaticArtifacts> {
        self.statics
            .get_or_init(|| {
                let _span = pt_util::trace::span("session", "static_stage");
                let relevant: HashSet<String> =
                    self.config.db.relevant_names().map(String::from).collect();
                Arc::new(match &self.units {
                    // Incremental: assemble from the per-function artifact
                    // cache, recomputing only what the content keys say
                    // changed. Bit-identical to the plain path below.
                    Some(cache) => {
                        cache.compute(self.module, &relevant, self.config.interp.taint_policy)
                    }
                    None => StaticArtifacts {
                        classification: classify_module(self.module, &relevant),
                        prepared: PreparedModule::compute(self.module),
                        reuse: ReuseStats::all_recomputed(self.module.functions.len()),
                    },
                })
            })
            .clone()
    }

    /// Stages 2–3 (§5.2–§5.3): one representative taint run plus dependency
    /// extraction, against the memoized static artifacts.
    pub fn taint_run(&self, params: Vec<(String, i64)>) -> Result<Analysis, PtError> {
        if self.module.function_by_name(&self.entry).is_none() {
            return Err(PtError::EntryNotFound {
                entry: self.entry.clone(),
            });
        }
        // The label domain carries at most 64 base labels; reject oversized
        // parameter vectors up front with a configuration error instead of
        // surfacing a mid-run [`pt_taint::InterpError::LabelCapacity`].
        if params.len() > 64 {
            return Err(PtError::Config(format!(
                "at most 64 marked parameters supported, got {}",
                params.len()
            )));
        }
        let statics = self.static_analysis();

        // The machine's rank count follows the `p` parameter when present.
        let mut machine = self.config.machine.clone();
        if let Some((_, p)) = params.iter().find(|(n, _)| n == "p") {
            machine.ranks = u32::try_from(*p).ok().filter(|&r| r > 0).ok_or_else(|| {
                PtError::Config(format!(
                    "parameter p must be a positive rank count, got {p}"
                ))
            })?;
        }
        if machine.ranks == 0 {
            return Err(PtError::Config("machine has zero ranks".into()));
        }
        let ranks = machine.ranks;
        let handler = MpiHandler::new(machine);
        let mut interp = Interpreter::new(
            self.module,
            &statics.prepared,
            handler,
            params,
            self.config.interp.clone(),
        );
        // Session-level warmup policy: once any run of this session has
        // produced a tier-1 specialization, every later run starts with it
        // installed instead of re-warming from scratch.
        let tier_reused = match self.tier.get() {
            Some(spec) => {
                interp.set_tier(spec);
                true
            }
            None => false,
        };
        let exec_span = pt_util::trace::span("session", "exec");
        let t_exec = std::time::Instant::now();
        let out = interp
            .run_named(&self.entry, &[])
            .map_err(|source| PtError::TaintRun {
                entry: self.entry.clone(),
                source,
            })?;
        let taint_wall_seconds = t_exec.elapsed().as_secs_f64();
        // Per-function self-time attribution: scale the profile's
        // simulated exclusive seconds onto the measured exec wall and lay
        // the shares out sequentially inside the exec span. The *shares*
        // are exact (the profile is deterministic); the placement is
        // synthetic — these children attribute duration, not timeline
        // position.
        if let Some(parent) = exec_span.id() {
            let trace_id = pt_util::trace::current_context().trace_id;
            let total = out.profile.total_exclusive();
            if total > 0.0 {
                let exec_start = pt_util::trace::nanos_since_epoch(t_exec);
                let exec_nanos = (taint_wall_seconds * 1e9) as u64;
                let mut by_fn: Vec<_> = out.profile.by_function().into_values().collect();
                by_fn.sort_by_key(|e| e.func);
                let mut cursor = exec_start;
                for entry in by_fn {
                    let share = ((entry.exclusive / total) * exec_nanos as f64) as u64;
                    // Ids past the function table are the interpreter's
                    // pseudo-externals (MPI calls, work intrinsics).
                    let idx = entry.func.index();
                    let name = match self.module.functions.get(idx) {
                        Some(f) => f.name.clone(),
                        None => statics
                            .prepared
                            .decoded
                            .extern_names
                            .get(idx - self.module.functions.len())
                            .cloned()
                            .unwrap_or_else(|| format!("extern#{idx}")),
                    };
                    pt_util::trace::record_span(
                        trace_id,
                        parent,
                        "function",
                        name,
                        cursor,
                        cursor + share,
                    );
                    cursor += share;
                }
            }
        }
        drop(exec_span);

        // Build the session's specialization from the first completed run's
        // profile (Warmup mode only: Force specializes inside the
        // interpreter already, Off means tiering is disabled). Batch runs
        // racing here are harmless — the first finisher wins the slot and
        // the losers' specializations are dropped.
        if self.config.interp.tier.mode == TierMode::Warmup && self.tier.get().is_none() {
            let _span = pt_util::trace::span("tier", "specialize");
            let plan = TierPlan::from_run(
                &out.profile,
                &out.records,
                self.module.functions.len(),
                &self.config.interp.tier,
            );
            let spec = tier::specialize(
                &statics.prepared.decoded,
                &plan,
                &self.config.interp.tier,
                Some(&out.records.branches),
            );
            let _ = self.tier.set(Arc::new(spec));
        }

        let deps = extract_deps(
            self.module,
            &statics.prepared,
            &out.records,
            &out.labels,
            &self.config.db,
        );
        let ext_deps = extern_deps(self.module, &out.records, &out.labels, &self.config.db);
        let kinds = classify_kinds(
            self.module,
            &statics.classification,
            &out.records,
            &self.config.db,
        );
        let t2 = table2(
            self.module,
            &statics.prepared,
            &kinds,
            &statics.classification,
            &out.records,
        );

        Ok(Analysis {
            param_names: out.labels.param_names().to_vec(),
            statics,
            tier: out.tier,
            tier_reused,
            kinds,
            deps,
            extern_deps: ext_deps,
            table2: t2,
            records: out.records,
            labels: out.labels,
            taint_run_time: out.time,
            taint_run_core_hours: out.time * ranks as f64 / 3600.0,
            taint_wall_seconds,
            axis_cache: Mutex::new(Vec::new()),
        })
    }

    /// Seed the memoized static stage with artifacts computed elsewhere
    /// (a [`SessionCache`] hit). No-op if this session already computed
    /// its own. The artifacts must come from a session over the *same
    /// module* — the cache keys by module name to ensure this.
    fn seed_statics(&self, statics: Arc<StaticArtifacts>) {
        let _ = self.statics.set(statics);
    }

    /// The tier-1 specialization built by this session's first completed
    /// taint run, if any ([`TierMode::Warmup`] only).
    pub fn tier_specialization(&self) -> Option<Arc<SpecializedModule>> {
        self.tier.get().cloned()
    }

    /// Run one taint analysis per parameter set, fanned across worker
    /// threads, all sharing this session's static artifacts. Results keep
    /// the input order; each entry fails independently.
    pub fn analyze_batch(
        &self,
        param_sets: &[Vec<(String, i64)>],
    ) -> Vec<Result<Analysis, PtError>> {
        // Force the static stage once, outside the workers, so no two
        // threads race to compute it redundantly.
        self.static_analysis();

        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        pt_util::parallel_map(param_sets, workers, |params| self.taint_run(params.clone()))
    }
}

/// A cross-app cache of static-stage artifacts, keyed by module *content*.
///
/// A [`Session`] memoizes the static stage for *one* module, but its
/// lifetime is tied to the borrow of that module — callers that create
/// sessions on demand (the bench scenario registry runs 12 scenarios over
/// the same two apps; the analysis service accepts modules from many
/// clients) would recompute the §5.1 classification every time. The cache
/// outlives the sessions: [`SessionCache::get_or_compute`] is the single
/// entry point, and the first session obtained for a module content hash
/// computes the artifacts while every later one is seeded with the shared
/// [`Arc`], whatever its lifetime.
///
/// Two granularities of sharing compose here:
/// * **whole-module**: an unchanged module resubmitted under any name hits
///   the content-keyed slot and pays nothing;
/// * **per-function**: an *edited* module misses the slot but assembles
///   its static stage from the [`FunctionArtifactCache`] the sessions
///   share, recomputing only the edited function's invalidation cone (see
///   [`crate::incremental`]) — and persisting units through a
///   [`UnitStore`] when the cache was built
///   [`with_store`](SessionCache::with_store), so reuse survives process
///   restarts.
///
/// One caveat: cached sessions use the default MPI pipeline configuration
/// — custom configurations (e.g. ablated taint policies) change what the
/// static stage may legitimately observe downstream, so build those
/// sessions directly via [`SessionBuilder`] instead.
pub struct SessionCache {
    statics: Mutex<CacheMap>,
    units: Arc<FunctionArtifactCache>,
    /// Maximum number of module-content entries kept in memory (`None` =
    /// unbounded, the pre-LRU behavior).
    capacity: Option<usize>,
    evictions: pt_util::metrics::Counter,
}

/// The module-content map plus the logical clock backing its LRU order.
struct CacheMap {
    entries: BTreeMap<String, CacheEntry>,
    tick: u64,
}

struct CacheEntry {
    slot: Arc<OnceLock<Arc<StaticArtifacts>>>,
    last_used: u64,
}

impl Default for SessionCache {
    fn default() -> SessionCache {
        SessionCache::new()
    }
}

impl SessionCache {
    pub fn new() -> SessionCache {
        SessionCache::with_units(Arc::new(FunctionArtifactCache::new()))
    }

    /// A cache whose per-function artifacts are additionally persisted
    /// through `store`, extending reuse across process restarts.
    pub fn with_store(store: Arc<dyn UnitStore>) -> SessionCache {
        SessionCache::with_units(Arc::new(FunctionArtifactCache::with_store(store)))
    }

    fn with_units(units: Arc<FunctionArtifactCache>) -> SessionCache {
        SessionCache {
            statics: Mutex::new(CacheMap {
                entries: BTreeMap::new(),
                tick: 0,
            }),
            units,
            capacity: None,
            evictions: pt_util::metrics::Counter::new(),
        }
    }

    /// Bound the module map to `entries` distinct module contents,
    /// evicting least-recently-used entries past the cap (each counted in
    /// [`SessionCache::evictions`]). A capacity of 0 is treated as 1 —
    /// the entry being requested is never evicted under its requester.
    /// Eviction is pure degradation: a dropped module recomputes its
    /// static stage on the next request (assembled from the per-function
    /// unit cache, which this bound does not touch).
    pub fn with_capacity(mut self, entries: Option<usize>) -> SessionCache {
        self.capacity = entries.map(|n| n.max(1));
        self
    }

    /// A session over `module` whose static stage is shared with every
    /// other session this cache produced for the same module *content* —
    /// and assembled incrementally from the per-function artifact cache
    /// when the content is new.
    pub fn get_or_compute<'m>(&self, module: &'m Module, entry: &str) -> Session<'m> {
        self.get_or_compute_with_policy(module, entry, PolicyKind::from_env())
    }

    /// [`SessionCache::get_or_compute`] under an explicit taint policy.
    /// The cache slot is keyed by module content *and* policy, so sessions
    /// under different policies never share static artifacts (their unit
    /// keys differ too — see [`crate::incremental`]).
    pub fn get_or_compute_with_policy<'m>(
        &self,
        module: &'m Module,
        entry: &str,
        policy: PolicyKind,
    ) -> Session<'m> {
        let key = format!(
            "{}|{}",
            pt_ir::fingerprint::module_digest(module),
            policy.name()
        );
        let session = SessionBuilder::new(module, entry)
            .policy(policy)
            .units(self.units.clone())
            .build();
        // Reserve the per-key slot under the lock, compute outside it:
        // `OnceLock::get_or_init` blocks concurrent first callers until the
        // winner finishes, so the static stage runs exactly once per key
        // even when many sessions are requested at the same time.
        let slot = {
            let mut map = self.statics.lock().unwrap();
            map.tick += 1;
            let tick = map.tick;
            let slot = {
                let entry = map
                    .entries
                    .entry(key.clone())
                    .or_insert_with(|| CacheEntry {
                        slot: Arc::default(),
                        last_used: 0,
                    });
                entry.last_used = tick;
                entry.slot.clone()
            };
            // LRU bound: evict coldest-first until within capacity. The
            // just-touched key holds the newest tick, so it survives; a
            // concurrently computing entry another thread holds a slot
            // Arc for merely drops out of the map — the computation
            // finishes on the orphaned slot unharmed.
            if let Some(cap) = self.capacity {
                while map.entries.len() > cap {
                    let coldest = map
                        .entries
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| k.clone())
                        .expect("map is non-empty past its cap");
                    map.entries.remove(&coldest);
                    self.evictions.inc();
                }
            }
            slot
        };
        let statics = slot.get_or_init(|| session.static_analysis()).clone();
        // No-op when this session was the one that just computed them.
        session.seed_statics(statics);
        session
    }

    /// Cumulative per-function reuse accounting over every static stage
    /// this cache computed (the observable `pt-serve` reports in `stats`).
    pub fn unit_reuse(&self) -> ReuseStats {
        self.units.cumulative()
    }

    /// Module-map entries evicted by the LRU bound so far (0 when
    /// unbounded).
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// The configured module-map bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of distinct module contents cached so far.
    pub fn len(&self) -> usize {
        self.statics.lock().unwrap().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Pairs of `(app-parameter index, model-axis index)` shared through the
/// per-`Analysis` projection cache.
type AxisMapping = Arc<Vec<(usize, usize)>>;

/// Everything one taint run learned about the program, on top of the
/// session's shared static artifacts.
pub struct Analysis {
    /// Marked parameter names, in taint-index order.
    pub param_names: Vec<String>,
    /// The session's static stage (shared across runs; compare with
    /// [`Arc::ptr_eq`] to verify memoization).
    pub statics: Arc<StaticArtifacts>,
    /// Tiered-execution accounting for this run (specializations active,
    /// threaded/fast-path instructions, deopts). Accounting only — never
    /// part of any deterministic summary.
    pub tier: TierStats,
    /// Whether this run started with the session's cached tier-1
    /// specialization installed (`false` for the run that built it).
    pub tier_reused: bool,
    pub kinds: Vec<FuncKind>,
    /// Per-function dependency structures (internal functions).
    pub deps: BTreeMap<FunctionId, DepStructure>,
    /// Dependency structures of the MPI routines used.
    pub extern_deps: BTreeMap<String, DepStructure>,
    pub table2: Table2,
    pub records: TaintRecords,
    pub labels: LabelTable,
    /// Simulated duration of the taint run (seconds).
    pub taint_run_time: f64,
    /// Core-hours spent on the taint run (§A3 accounting).
    pub taint_run_core_hours: f64,
    /// Real wall-clock seconds the dynamic taint run took on the decoded
    /// engine (nondeterministic — excluded from served summaries; see
    /// [`crate::report::EngineTiming`]).
    pub taint_wall_seconds: f64,
    /// Memoized app-parameter → model-axis mappings, keyed by the
    /// `model_params` vector they were computed for.
    axis_cache: Mutex<Vec<(Vec<String>, AxisMapping)>>,
}

impl std::fmt::Debug for Analysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analysis")
            .field("param_names", &self.param_names)
            .field("functions", &self.kinds.len())
            .field("taint_run_time", &self.taint_run_time)
            .finish_non_exhaustive()
    }
}

impl Analysis {
    /// The static classification (shared with the session).
    pub fn classification(&self) -> &StaticClassification {
        &self.statics.classification
    }

    /// The precomputed static facts (shared with the session; reusable by
    /// measurement runs without recomputing).
    pub fn prepared(&self) -> &PreparedModule {
        &self.statics.prepared
    }

    /// Wall seconds the decode stage of the shared static artifacts took
    /// (paid once per module, amortized over every run).
    pub fn decode_seconds(&self) -> f64 {
        self.statics.prepared.decode_seconds
    }

    /// Index of a parameter in taint order.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.param_names.iter().position(|p| p == name)
    }

    /// The mapping from app-parameter indices to model-axis indices,
    /// memoized per `model_params` (every projection method needs it, and
    /// harnesses call those in tight loops over the same axes).
    fn axis_mapping(&self, model_params: &[String]) -> AxisMapping {
        let mut cache = self.axis_cache.lock().unwrap();
        if let Some((_, mapping)) = cache.iter().find(|(key, _)| key == model_params) {
            return mapping.clone();
        }
        let mapping: AxisMapping = Arc::new(
            model_params
                .iter()
                .enumerate()
                .filter_map(|(axis, name)| self.param_index(name).map(|app| (app, axis)))
                .collect(),
        );
        cache.push((model_params.to_vec(), mapping.clone()));
        mapping
    }

    /// A function's dependency structure projected onto the model axes.
    pub fn model_deps(&self, f: FunctionId, model_params: &[String]) -> DepStructure {
        self.deps[&f].remap(&self.axis_mapping(model_params))
    }

    /// Per-function search-space restrictions for the hybrid modeler,
    /// keyed by function name (internal functions and MPI routines).
    pub fn restrictions(
        &self,
        module: &Module,
        model_params: &[String],
    ) -> BTreeMap<String, Restriction> {
        let mapping = self.axis_mapping(model_params);
        let mut out = BTreeMap::new();
        for f in module.function_ids() {
            let restriction = match self.kinds[f.index()] {
                FuncKind::ConstantStatic | FuncKind::ConstantDynamic => Restriction::constant(),
                _ => self.deps[&f].remap(&mapping).to_restriction(),
            };
            // Single clone at the insertion point; the decision above only
            // borrowed the function.
            out.insert(module.function(f).name.clone(), restriction);
        }
        for (name, dep) in &self.extern_deps {
            out.insert(name.clone(), dep.remap(&mapping).to_restriction());
        }
        out
    }

    /// Union dependency structure over all relevant functions, projected
    /// onto the model axes — the input to experiment design (§A2).
    pub fn global_deps(&self, model_params: &[String]) -> DepStructure {
        let mapping = self.axis_mapping(model_params);
        let mut global = DepStructure::constant();
        for dep in self.deps.values() {
            global.merge(&dep.remap(&mapping));
        }
        for dep in self.extern_deps.values() {
            global.merge(&dep.remap(&mapping));
        }
        global
    }

    /// Names of the functions the taint-based filter instruments: executed,
    /// not provably constant (§A3).
    pub fn relevant_functions(&self, module: &Module) -> Vec<String> {
        module
            .function_ids()
            .filter(|f| matches!(self.kinds[f.index()], FuncKind::Kernel | FuncKind::Comm))
            .map(|f| module.function(f).name.clone())
            .collect()
    }

    /// Branch coverage in the shape `validate::detect_segmentation` expects.
    pub fn branch_observations(&self, module: &Module) -> BranchObservations {
        let mut out = BTreeMap::new();
        for ((f, block), rec) in &self.records.branches {
            if f.index() >= module.functions.len() {
                continue;
            }
            let names: Vec<String> = rec
                .params
                .iter()
                .filter_map(|i| self.param_names.get(i).cloned())
                .collect();
            out.insert(
                (module.function(*f).name.clone(), *block),
                (rec.taken_true, rec.taken_false, names),
            );
        }
        out
    }

    /// §4.4: code paths never visited during the representative run, inside
    /// functions that *were* executed — parameter-based algorithm selection
    /// leaves exactly this signature (one side of a tainted branch dead).
    /// Returns `(function name, unvisited block)` pairs.
    pub fn never_visited_paths(&self, module: &Module) -> Vec<(String, pt_ir::BlockId)> {
        let mut out = Vec::new();
        for f in module.function_ids() {
            if !self.records.executed[f.index()] {
                continue; // whole function dead: reported as pruned-dynamic
            }
            let func = module.function(f);
            for (i, visited) in self.records.visited_blocks.func(f).iter().enumerate() {
                if !visited {
                    out.push((func.name.clone(), pt_ir::BlockId(i as u32)));
                }
            }
        }
        out.sort();
        out
    }

    /// Table 3 for a chosen parameter pair.
    pub fn table3(&self, module: &Module, pair: (&str, &str)) -> Table3 {
        table3(
            module,
            &self.statics.prepared,
            &self.kinds,
            &self.deps,
            &self.records,
            &self.param_names,
            pair,
        )
    }
}
