//! The incremental static stage: a content-addressed per-function artifact
//! cache making repeated analysis of *edited* modules near-constant-time.
//!
//! [`crate::Session::static_analysis`] normally runs the whole §5.1 static
//! stage — classification, loop facts, decode, the pass pipeline — module
//! at a time. All of that decomposes per function
//! ([`pt_taint::unit::compute_unit`] packages the per-function slice, and
//! [`pt_analysis::classify::classify_function_local`] /
//! [`pt_analysis::classify::resolve_class`] split the classification the
//! same way), and every per-function result is a pure function of a
//! content key ([`pt_analysis::unitkey`]): the function's printed body,
//! its strongly connected component, its out-of-component callees'
//! keys, the module symbol environment, and the configuration salt.
//!
//! [`FunctionArtifactCache`] exploits that: it memoizes one
//! [`FunctionArtifact`] per key — in memory always, and through an optional
//! [`UnitStore`] on disk — so re-analyzing a module after editing one
//! function recomputes exactly that function, its SCC co-members, and its
//! transitive callers. Everything else is assembled from the cache,
//! *bit-identically* to a cold recompute (the differential tests below and
//! the `incremental_static_stage` integration suite assert this).
//!
//! [`ReuseStats`] is the accounting that proves it: every
//! [`crate::StaticArtifacts`] reports how many units were reused from
//! memory, reused from the store, or recomputed.

use crate::session::StaticArtifacts;
use pt_analysis::classify::{
    classify_function_local, resolve_class, FunctionClass, KeepReason, LoopStats,
    StaticClassification,
};
use pt_analysis::unitkey::unit_keys;
use pt_analysis::CallGraph;
use pt_ir::fingerprint::digest_parts;
use pt_ir::Module;
use pt_taint::decode::passes::InlineSpec;
use pt_taint::decode::DecodeEnv;
use pt_taint::policy::PolicyKind;
use pt_taint::unit::{assemble, compute_unit, FunctionUnit};
use pt_taint::unit_io::{unit_from_json, unit_to_json, UNIT_SCHEMA_VERSION};
use serde::json::Value;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How a static stage was obtained, unit by unit: the reuse ledger every
/// [`StaticArtifacts`] carries. `total` counts the module's functions;
/// the three buckets partition it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    pub total: usize,
    /// Units served from the in-process artifact cache.
    pub reused_memory: usize,
    /// Units deserialized from a persistent [`UnitStore`] (a prior
    /// process computed them).
    pub reused_store: usize,
    /// Units computed from scratch this time.
    pub recomputed: usize,
}

impl ReuseStats {
    /// The ledger of a plain (non-incremental) static stage.
    pub fn all_recomputed(total: usize) -> ReuseStats {
        ReuseStats {
            total,
            recomputed: total,
            ..ReuseStats::default()
        }
    }

    /// Units not recomputed, wherever they came from.
    pub fn reused(&self) -> usize {
        self.reused_memory + self.reused_store
    }
}

/// A persistent byte store for serialized [`FunctionArtifact`]s — the hook
/// `pt-serve` plugs its content-addressed store into. Both operations are
/// best-effort: a failed `save` degrades to compute-always, and `load`
/// returning garbage is harmless (undecodable documents count as misses).
pub trait UnitStore: Send + Sync {
    fn load(&self, key: &str) -> Option<String>;
    fn save(&self, key: &str, doc: &str);
}

/// Everything the static stage produces for one function: the
/// decode-stage unit plus this function's slice of the §5.1
/// classification. A cached artifact is valid exactly as long as its
/// content key is — see [`pt_analysis::unitkey`] for what the key closes
/// over.
#[derive(Debug, Clone)]
pub struct FunctionArtifact {
    pub unit: FunctionUnit,
    pub class: FunctionClass,
    pub loop_stats: LoopStats,
    /// Participates in recursion (feeds the module's recursion warnings).
    pub recursive: bool,
    /// Contains irreducible control flow (feeds the module's warnings).
    pub irreducible: bool,
}

/// The content-addressed per-function artifact cache. One of these lives
/// in every [`crate::SessionCache`]; long-running services share one
/// across all submissions, so an edited module reuses every untouched
/// function's artifact no matter which session computed it first.
#[derive(Default)]
pub struct FunctionArtifactCache {
    mem: Mutex<HashMap<String, Arc<FunctionArtifact>>>,
    store: Option<Arc<dyn UnitStore>>,
    // Cumulative process-lifetime counters (served via `pt-serve` stats).
    total: AtomicU64,
    reused_memory: AtomicU64,
    reused_store: AtomicU64,
    recomputed: AtomicU64,
}

impl FunctionArtifactCache {
    pub fn new() -> FunctionArtifactCache {
        FunctionArtifactCache::default()
    }

    /// A cache that additionally persists every artifact through `store`,
    /// extending reuse across process restarts.
    pub fn with_store(store: Arc<dyn UnitStore>) -> FunctionArtifactCache {
        FunctionArtifactCache {
            store: Some(store),
            ..FunctionArtifactCache::default()
        }
    }

    /// Cumulative reuse accounting over every `compute` this cache served.
    pub fn cumulative(&self) -> ReuseStats {
        ReuseStats {
            total: self.total.load(Ordering::Relaxed) as usize,
            reused_memory: self.reused_memory.load(Ordering::Relaxed) as usize,
            reused_store: self.reused_store.load(Ordering::Relaxed) as usize,
            recomputed: self.recomputed.load(Ordering::Relaxed) as usize,
        }
    }

    /// Run the static stage for `module` against the cache: bottom-up over
    /// the call graph, each function's artifact is taken from memory, the
    /// store, or recomputed — then the whole is assembled bit-identically
    /// to a cold [`pt_taint::PreparedModule::compute`] +
    /// [`pt_analysis::classify::classify_module`].
    ///
    /// `policy` is the taint policy the session will run under; it salts
    /// every artifact key (two policies must never share cached units —
    /// the decoded program is policy-independent today, but the key
    /// contract is "everything the result could depend on").
    pub fn compute(
        &self,
        module: &Module,
        relevant: &HashSet<String>,
        policy: PolicyKind,
    ) -> StaticArtifacts {
        let _span = pt_util::trace::span("taint", "decode");
        let t0 = std::time::Instant::now();
        let cg = CallGraph::build(module);
        let keys = unit_keys(module, &cg, &config_salt(relevant, policy));
        let env = DecodeEnv::of(module);
        let n = module.functions.len();

        let mut artifacts: Vec<Option<Arc<FunctionArtifact>>> = vec![None; n];
        let mut reuse = ReuseStats {
            total: n,
            ..ReuseStats::default()
        };
        // Bottom-up: callees before callers, so recomputation always has
        // resolved callee classes and inline specs at hand — and cache hits
        // observe the same order, keeping classification bit-identical.
        for fid in cg.bottom_up_order() {
            let key = &keys.keys[fid.index()];
            let memory_hit = self.mem.lock().unwrap().get(key).cloned();
            let artifact = if let Some(hit) = memory_hit {
                reuse.reused_memory += 1;
                pt_util::trace::event_with("unit", || {
                    format!("hit_memory:{}", module.function(fid).name)
                });
                hit
            } else if let Some(stored) = self.load_from_store(key) {
                reuse.reused_store += 1;
                pt_util::trace::event_with("unit", || {
                    format!("hit_store:{}", module.function(fid).name)
                });
                stored
            } else {
                reuse.recomputed += 1;
                let _unit_span = pt_util::trace::span_with("unit", || {
                    format!("compute:{}", module.function(fid).name)
                });
                let specs: Vec<Option<&InlineSpec>> = artifacts
                    .iter()
                    .map(|a| a.as_ref().and_then(|a| a.unit.inline_spec.as_ref()))
                    .collect();
                let unit = compute_unit(module, fid, &env, &specs);
                // The per-function slice of the §5.1 classification: same
                // "classify" label as the module-wide `classify_module`,
                // so traces show the classify stage under either
                // static-stage path.
                let classify_span = pt_util::trace::span("analysis", "classify");
                let local = classify_function_local(
                    module.function(fid),
                    &unit.prepared.forest,
                    &unit.prepared.trip_counts,
                    cg.is_recursive(fid),
                    relevant,
                );
                // Resolved non-self callees in call-site order — exactly
                // the visibility `classify_module`'s bottom-up pass has
                // (in-SCC members later in the order are still `None`).
                let resolved: Vec<(&str, bool)> = cg.callees[fid.index()]
                    .iter()
                    .filter(|&&callee| callee != fid)
                    .filter_map(|&callee| {
                        artifacts[callee.index()].as_ref().map(|a| {
                            (
                                module.function(callee).name.as_str(),
                                matches!(a.class, FunctionClass::PotentiallyParametric(_)),
                            )
                        })
                    })
                    .collect();
                let class = resolve_class(&local.reasons, resolved.into_iter());
                drop(classify_span);
                let artifact = Arc::new(FunctionArtifact {
                    recursive: local.recursive(),
                    irreducible: local.irreducible(),
                    loop_stats: local.loop_stats,
                    class,
                    unit,
                });
                if let Some(store) = &self.store {
                    store.save(key, &artifact_to_json(&artifact).render());
                }
                self.mem
                    .lock()
                    .unwrap()
                    .insert(key.clone(), artifact.clone());
                artifact
            };
            artifacts[fid.index()] = Some(artifact);
        }

        self.total.fetch_add(reuse.total as u64, Ordering::Relaxed);
        self.reused_memory
            .fetch_add(reuse.reused_memory as u64, Ordering::Relaxed);
        self.reused_store
            .fetch_add(reuse.reused_store as u64, Ordering::Relaxed);
        self.recomputed
            .fetch_add(reuse.recomputed as u64, Ordering::Relaxed);

        let artifacts: Vec<Arc<FunctionArtifact>> =
            artifacts.into_iter().map(|a| a.unwrap()).collect();
        let units: Vec<&FunctionUnit> = artifacts.iter().map(|a| &a.unit).collect();
        let prepared = assemble(&env, &units, t0.elapsed().as_secs_f64());

        let mut recursion_warnings = Vec::new();
        let mut irreducible_warnings = Vec::new();
        for fid in module.function_ids() {
            let a = &artifacts[fid.index()];
            if a.irreducible {
                irreducible_warnings.push(fid);
            }
            if a.recursive {
                recursion_warnings.push(fid);
            }
        }
        let classification = StaticClassification {
            classes: artifacts.iter().map(|a| a.class.clone()).collect(),
            loop_stats: artifacts.iter().map(|a| a.loop_stats).collect(),
            recursion_warnings,
            irreducible_warnings,
        };

        StaticArtifacts {
            classification,
            prepared,
            reuse,
        }
    }

    fn load_from_store(&self, key: &str) -> Option<Arc<FunctionArtifact>> {
        let text = self.store.as_ref()?.load(key)?;
        let doc = Value::parse(&text).ok()?;
        let artifact = Arc::new(artifact_from_json(&doc)?);
        self.mem
            .lock()
            .unwrap()
            .insert(key.to_string(), artifact.clone());
        Some(artifact)
    }
}

/// The configuration salt folded into every artifact key: the artifact
/// schema version (a bump silently invalidates old store entries), the
/// taint-policy identity, and the relevant-externals set, sorted (the
/// only configuration the static stage reads).
fn config_salt(relevant: &HashSet<String>, policy: PolicyKind) -> String {
    let schema = UNIT_SCHEMA_VERSION.to_string();
    let mut names: Vec<&str> = relevant.iter().map(String::as_str).collect();
    names.sort_unstable();
    let mut parts: Vec<&str> = vec!["statics-config", &schema, policy.name()];
    parts.extend(names);
    digest_parts(&parts)
}

// ---- artifact serialization -------------------------------------------
//
// The classification wrapper around `pt_taint::unit_io`'s unit encoding.
// Decoding is total: malformed documents yield `None` (a cache miss),
// never a wrong artifact.

fn artifact_to_json(a: &FunctionArtifact) -> Value {
    Value::obj(vec![
        ("class", class_to_json(&a.class)),
        (
            "loops",
            Value::Arr(vec![
                Value::int(a.loop_stats.total as i64),
                Value::int(a.loop_stats.constant_trip as i64),
            ]),
        ),
        ("rec", Value::Bool(a.recursive)),
        ("irr", Value::Bool(a.irreducible)),
        ("unit", unit_to_json(&a.unit)),
    ])
}

fn artifact_from_json(v: &Value) -> Option<FunctionArtifact> {
    let loops = v.get("loops")?.as_arr()?;
    if loops.len() != 2 {
        return None;
    }
    Some(FunctionArtifact {
        class: class_from_json(v.get("class")?)?,
        loop_stats: LoopStats {
            total: loops[0].as_u64()? as usize,
            constant_trip: loops[1].as_u64()? as usize,
        },
        recursive: v.get("rec")?.as_bool()?,
        irreducible: v.get("irr")?.as_bool()?,
        unit: unit_from_json(v.get("unit")?)?,
    })
}

fn class_to_json(c: &FunctionClass) -> Value {
    match c {
        FunctionClass::StaticallyConstant => Value::Null,
        FunctionClass::PotentiallyParametric(reasons) => {
            Value::Arr(reasons.iter().map(reason_to_json).collect())
        }
    }
}

fn class_from_json(v: &Value) -> Option<FunctionClass> {
    match v {
        Value::Null => Some(FunctionClass::StaticallyConstant),
        Value::Arr(items) => {
            let reasons = items
                .iter()
                .map(reason_from_json)
                .collect::<Option<Vec<_>>>()?;
            Some(FunctionClass::PotentiallyParametric(reasons))
        }
        _ => None,
    }
}

fn reason_to_json(r: &KeepReason) -> Value {
    match r {
        KeepReason::NonConstantLoop => Value::str("loop"),
        KeepReason::Recursive => Value::str("rec"),
        KeepReason::Irreducible => Value::str("irr"),
        KeepReason::RelevantExternal(name) => Value::Arr(vec![Value::str("ext"), Value::str(name)]),
        KeepReason::ParametricCallee(name) => {
            Value::Arr(vec![Value::str("callee"), Value::str(name)])
        }
    }
}

fn reason_from_json(v: &Value) -> Option<KeepReason> {
    match v {
        Value::Str(s) => match s.as_str() {
            "loop" => Some(KeepReason::NonConstantLoop),
            "rec" => Some(KeepReason::Recursive),
            "irr" => Some(KeepReason::Irreducible),
            _ => None,
        },
        Value::Arr(items) if items.len() == 2 => {
            let name = items[1].as_str()?.to_string();
            match items[0].as_str()? {
                "ext" => Some(KeepReason::RelevantExternal(name)),
                "callee" => Some(KeepReason::ParametricCallee(name)),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_analysis::classify::classify_module;
    use pt_ir::{FunctionBuilder, FunctionId, Type, Value as IrValue};
    use pt_taint::prepared::PreparedModule;

    fn relevant() -> HashSet<String> {
        [
            "MPI_Allreduce",
            "MPI_Barrier",
            "pt_work_flops",
            "pt_work_mem",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    /// leaf (inlinable) ← kernel (parametric loop) ← main; ping ↔ pong
    /// mutual recursion; `konst` parameterizes the leaf body so tests can
    /// "edit" one function.
    fn app(konst: i64) -> Module {
        let mut m = Module::new("app");
        let mut b = FunctionBuilder::new("leaf", vec![("x".into(), Type::I64)], Type::I64);
        let v = b.add(b.param(0), konst);
        b.ret(Some(v));
        let leaf = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |b, iv| {
            b.call_external("pt_work_flops", vec![IrValue::int(2)], Type::Void);
            b.call(leaf, vec![iv], Type::I64);
        });
        b.ret(None);
        let kernel = m.add_function(b.finish());
        let pong_id = FunctionId(3);
        let mut b = FunctionBuilder::new("ping", vec![("n".into(), Type::I64)], Type::Void);
        b.call(pong_id, vec![b.param(0)], Type::Void);
        b.ret(None);
        let ping = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("pong", vec![("n".into(), Type::I64)], Type::Void);
        b.call(ping, vec![b.param(0)], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let n = b.call_external("pt_param_i64", vec![IrValue::int(0)], Type::I64);
        b.call(kernel, vec![n], Type::Void);
        b.call(ping, vec![n], Type::Void);
        b.call_external("MPI_Barrier", vec![], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    fn assert_statics_identical(warm: &StaticArtifacts, module: &Module) {
        let cold_class = classify_module(module, &relevant());
        let cold_prep = PreparedModule::compute(module);
        assert_eq!(
            format!("{:?}", warm.classification),
            format!("{cold_class:?}"),
            "classification must be bit-identical to a cold run"
        );
        assert_eq!(warm.prepared.pass_stats, cold_prep.pass_stats);
        assert_eq!(
            format!("{:?}", warm.prepared.decoded.functions),
            format!("{:?}", cold_prep.decoded.functions),
            "decoded bytecode must be bit-identical to a cold run"
        );
    }

    #[test]
    fn cold_compute_matches_plain_static_stage() {
        let m = app(3);
        let cache = FunctionArtifactCache::new();
        let warm = cache.compute(&m, &relevant(), PolicyKind::default());
        assert_eq!(warm.reuse, ReuseStats::all_recomputed(5));
        assert_statics_identical(&warm, &m);
    }

    #[test]
    fn editing_one_function_recomputes_only_its_cone() {
        let cache = FunctionArtifactCache::new();
        let before = app(3);
        let first = cache.compute(&before, &relevant(), PolicyKind::default());
        assert_eq!(first.reuse.recomputed, 5);

        // Resubmit unchanged: everything comes from memory.
        let again = cache.compute(&before, &relevant(), PolicyKind::default());
        assert_eq!(again.reuse.reused_memory, 5);
        assert_eq!(again.reuse.recomputed, 0);
        assert_statics_identical(&again, &before);

        // Edit the leaf: leaf + kernel + main recompute; ping/pong reuse.
        let edited = app(4);
        let warm = cache.compute(&edited, &relevant(), PolicyKind::default());
        assert_eq!(warm.reuse.recomputed, 3, "leaf, kernel, main");
        assert_eq!(warm.reuse.reused_memory, 2, "ping and pong");
        assert_statics_identical(&warm, &edited);
        assert_eq!(cache.cumulative().total, 15);
    }

    /// An in-memory [`UnitStore`] standing in for the server's disk store.
    #[derive(Default)]
    struct MapStore(Mutex<HashMap<String, String>>);

    impl UnitStore for MapStore {
        fn load(&self, key: &str) -> Option<String> {
            self.0.lock().unwrap().get(key).cloned()
        }
        fn save(&self, key: &str, doc: &str) {
            self.0
                .lock()
                .unwrap()
                .insert(key.to_string(), doc.to_string());
        }
    }

    #[test]
    fn store_extends_reuse_across_cache_instances() {
        let store = Arc::new(MapStore::default());
        let m = app(3);
        // First process: computes and persists.
        let cache1 = FunctionArtifactCache::with_store(store.clone());
        cache1.compute(&m, &relevant(), PolicyKind::default());
        assert_eq!(store.0.lock().unwrap().len(), 5);

        // "Restarted process": fresh cache, same store — everything is
        // reused from disk, and the result is still bit-identical.
        let cache2 = FunctionArtifactCache::with_store(store.clone());
        let warm = cache2.compute(&m, &relevant(), PolicyKind::default());
        assert_eq!(warm.reuse.reused_store, 5);
        assert_eq!(warm.reuse.recomputed, 0);
        assert_statics_identical(&warm, &m);

        // An edit after the restart recomputes only its cone.
        let edited = app(4);
        let warm = cache2.compute(&edited, &relevant(), PolicyKind::default());
        assert_eq!(warm.reuse.recomputed, 3);
        assert_eq!(warm.reuse.reused_memory + warm.reuse.reused_store, 2);
        assert_statics_identical(&warm, &edited);
    }

    #[test]
    fn corrupt_store_entries_degrade_to_recompute() {
        let store = Arc::new(MapStore::default());
        let m = app(3);
        FunctionArtifactCache::with_store(store.clone()).compute(
            &m,
            &relevant(),
            PolicyKind::default(),
        );
        // Corrupt every stored document.
        for doc in store.0.lock().unwrap().values_mut() {
            *doc = "{broken".to_string();
        }
        let cache = FunctionArtifactCache::with_store(store.clone());
        let warm = cache.compute(&m, &relevant(), PolicyKind::default());
        assert_eq!(warm.reuse.recomputed, 5, "corrupt entries are misses");
        assert_statics_identical(&warm, &m);
    }

    #[test]
    fn config_change_invalidates_everything() {
        let cache = FunctionArtifactCache::new();
        let m = app(3);
        cache.compute(&m, &relevant(), PolicyKind::default());
        let fewer: HashSet<String> = ["MPI_Barrier"].iter().map(|s| s.to_string()).collect();
        let warm = cache.compute(&m, &fewer, PolicyKind::default());
        assert_eq!(warm.reuse.recomputed, 5, "salt covers the relevant set");
    }

    #[test]
    fn policy_change_invalidates_everything() {
        let cache = FunctionArtifactCache::new();
        let m = app(3);
        let cold = cache.compute(&m, &relevant(), PolicyKind::ParamSet);
        assert_eq!(cold.reuse.recomputed, 5);
        let other = cache.compute(&m, &relevant(), PolicyKind::Security);
        assert_eq!(other.reuse.recomputed, 5, "salt covers the taint policy");
        // Artifacts under either policy stay cached independently.
        let warm = cache.compute(&m, &relevant(), PolicyKind::ParamSet);
        assert_eq!(warm.reuse.reused_memory, 5);
    }

    #[test]
    fn artifact_json_roundtrips_classification() {
        let m = app(3);
        let cache = FunctionArtifactCache::new();
        cache.compute(&m, &relevant(), PolicyKind::default());
        // Round-trip every artifact currently in memory.
        for artifact in cache.mem.lock().unwrap().values() {
            let doc = artifact_to_json(artifact).render();
            let back = artifact_from_json(&Value::parse(&doc).unwrap()).unwrap();
            assert_eq!(format!("{:?}", back.class), format!("{:?}", artifact.class));
            assert_eq!(back.recursive, artifact.recursive);
            assert_eq!(back.irreducible, artifact.irreducible);
            assert_eq!(back.loop_stats.total, artifact.loop_stats.total);
        }
    }
}
