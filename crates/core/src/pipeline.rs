//! The Perf-Taint pipeline (Fig. 2 of the paper): static analysis →
//! dynamic taint run → dependency extraction → censuses, restrictions,
//! instrumentation lists, and experiment designs.

use crate::census::{classify_kinds, table2, table3, FuncKind, Table2, Table3};
use crate::deps::{extern_deps, extract_deps};
use crate::validate::BranchObservations;
use crate::volume::DepStructure;
use pt_analysis::classify::{classify_module, StaticClassification};
use pt_extrap::Restriction;
use pt_ir::{FunctionId, Module};
use pt_mpisim::{LibraryDb, MachineConfig, MpiHandler};
use pt_taint::prepared::PreparedModule;
use pt_taint::{InterpConfig, InterpError, Interpreter, LabelTable, TaintRecords};
use std::collections::{BTreeMap, HashSet};

/// Configuration of the analysis pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    pub db: LibraryDb,
    /// Machine used for the representative taint run. Its rank count is
    /// overridden by the `p` parameter when present.
    pub machine: MachineConfig,
    pub interp: InterpConfig,
}

impl PipelineConfig {
    pub fn with_mpi_defaults() -> PipelineConfig {
        PipelineConfig {
            db: LibraryDb::mpi_default(),
            machine: MachineConfig::default(),
            interp: InterpConfig::default(),
        }
    }
}

/// Everything the white-box analysis learned about a program.
pub struct Analysis {
    /// Marked parameter names, in taint-index order.
    pub param_names: Vec<String>,
    pub classification: StaticClassification,
    pub kinds: Vec<FuncKind>,
    /// Per-function dependency structures (internal functions).
    pub deps: BTreeMap<FunctionId, DepStructure>,
    /// Dependency structures of the MPI routines used.
    pub extern_deps: BTreeMap<String, DepStructure>,
    pub table2: Table2,
    /// Precomputed static facts (reusable by measurement runs).
    pub prepared: PreparedModule,
    pub records: TaintRecords,
    pub labels: LabelTable,
    /// Simulated duration of the taint run (seconds).
    pub taint_run_time: f64,
    /// Core-hours spent on the taint run (§A3 accounting).
    pub taint_run_core_hours: f64,
}

/// Run the full white-box analysis on `module`.
pub fn analyze(
    module: &Module,
    entry: &str,
    params: Vec<(String, i64)>,
    cfg: &PipelineConfig,
) -> Result<Analysis, InterpError> {
    // Stage 1: static analysis (§5.1).
    let relevant: HashSet<String> = cfg.db.relevant_names().map(String::from).collect();
    let classification = classify_module(module, &relevant);
    let prepared = PreparedModule::compute(module);

    // Stage 2: dynamic taint run (§5.2) on a representative configuration.
    let mut machine = cfg.machine.clone();
    if let Some((_, p)) = params.iter().find(|(n, _)| n == "p") {
        machine.ranks = *p as u32;
    }
    let ranks = machine.ranks;
    let handler = MpiHandler::new(machine);
    let interp = Interpreter::new(module, &prepared, handler, params, cfg.interp.clone());
    let out = interp.run_named(entry, &[])?;

    // Stage 3: dependency extraction (§4.2/§4.3 + §5.3).
    let deps = extract_deps(module, &prepared, &out.records, &out.labels, &cfg.db);
    let ext_deps = extern_deps(module, &out.records, &out.labels, &cfg.db);
    let kinds = classify_kinds(module, &classification, &out.records, &cfg.db);
    let t2 = table2(module, &prepared, &kinds, &classification, &out.records);

    Ok(Analysis {
        param_names: out.labels.param_names().to_vec(),
        classification,
        kinds,
        deps,
        extern_deps: ext_deps,
        table2: t2,
        prepared,
        records: out.records,
        labels: out.labels,
        taint_run_time: out.time,
        taint_run_core_hours: out.time * ranks as f64 / 3600.0,
    })
}

impl Analysis {
    /// Index of a parameter in taint order.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.param_names.iter().position(|p| p == name)
    }

    /// The mapping from app-parameter indices to model-axis indices.
    fn axis_mapping(&self, model_params: &[String]) -> Vec<(usize, usize)> {
        model_params
            .iter()
            .enumerate()
            .filter_map(|(axis, name)| self.param_index(name).map(|app| (app, axis)))
            .collect()
    }

    /// A function's dependency structure projected onto the model axes.
    pub fn model_deps(&self, f: FunctionId, model_params: &[String]) -> DepStructure {
        self.deps[&f].remap(&self.axis_mapping(model_params))
    }

    /// Per-function search-space restrictions for the hybrid modeler,
    /// keyed by function name (internal functions and MPI routines).
    pub fn restrictions(
        &self,
        module: &Module,
        model_params: &[String],
    ) -> BTreeMap<String, Restriction> {
        let mapping = self.axis_mapping(model_params);
        let mut out = BTreeMap::new();
        for f in module.function_ids() {
            let name = module.function(f).name.clone();
            let restriction = match self.kinds[f.index()] {
                FuncKind::ConstantStatic | FuncKind::ConstantDynamic => Restriction::constant(),
                _ => self.deps[&f].remap(&mapping).to_restriction(),
            };
            out.insert(name, restriction);
        }
        for (name, dep) in &self.extern_deps {
            out.insert(name.clone(), dep.remap(&mapping).to_restriction());
        }
        out
    }

    /// Union dependency structure over all relevant functions, projected
    /// onto the model axes — the input to experiment design (§A2).
    pub fn global_deps(&self, model_params: &[String]) -> DepStructure {
        let mapping = self.axis_mapping(model_params);
        let mut global = DepStructure::constant();
        for dep in self.deps.values() {
            global.merge(&dep.remap(&mapping));
        }
        for dep in self.extern_deps.values() {
            global.merge(&dep.remap(&mapping));
        }
        global
    }

    /// Names of the functions the taint-based filter instruments: executed,
    /// not provably constant (§A3).
    pub fn relevant_functions(&self, module: &Module) -> Vec<String> {
        module
            .function_ids()
            .filter(|f| {
                matches!(
                    self.kinds[f.index()],
                    FuncKind::Kernel | FuncKind::Comm
                )
            })
            .map(|f| module.function(f).name.clone())
            .collect()
    }

    /// Branch coverage in the shape `validate::detect_segmentation` expects.
    pub fn branch_observations(&self, module: &Module) -> BranchObservations {
        let mut out = BTreeMap::new();
        for ((f, block), rec) in &self.records.branches {
            if f.index() >= module.functions.len() {
                continue;
            }
            let names: Vec<String> = rec
                .params
                .iter()
                .filter_map(|i| self.param_names.get(i).cloned())
                .collect();
            out.insert(
                (module.function(*f).name.clone(), *block),
                (rec.taken_true, rec.taken_false, names),
            );
        }
        out
    }

    /// §4.4: code paths never visited during the representative run, inside
    /// functions that *were* executed — parameter-based algorithm selection
    /// leaves exactly this signature (one side of a tainted branch dead).
    /// Returns `(function name, unvisited block)` pairs.
    pub fn never_visited_paths(&self, module: &Module) -> Vec<(String, pt_ir::BlockId)> {
        let mut out = Vec::new();
        for f in module.function_ids() {
            if !self.records.executed[f.index()] {
                continue; // whole function dead: reported as pruned-dynamic
            }
            let func = module.function(f);
            for (i, visited) in self.records.visited_blocks[f.index()].iter().enumerate() {
                if !visited {
                    out.push((func.name.clone(), pt_ir::BlockId(i as u32)));
                }
            }
        }
        out.sort();
        out
    }

    /// Table 3 for a chosen parameter pair.
    pub fn table3(&self, module: &Module, pair: (&str, &str)) -> Table3 {
        table3(
            module,
            &self.prepared,
            &self.kinds,
            &self.deps,
            &self.records,
            &self.param_names,
            pair,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{FunctionBuilder, Type, Value};

    fn tiny_app() -> Module {
        let mut m = Module::new("tiny");
        let mut b = FunctionBuilder::new("getter", vec![("d".into(), Type::Ptr)], Type::I64);
        let v = b.load(b.param(0), Type::I64);
        b.ret(Some(v));
        m.add_function(b.finish());
        let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![Value::int(5)], Type::Void);
        });
        b.ret(None);
        let kernel = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("comm", vec![("n".into(), Type::I64)], Type::Void);
        b.call_external("MPI_Allreduce", vec![b.param(0)], Type::Void);
        b.ret(None);
        let comm = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
        let pslot = b.alloca(1i64);
        b.call_external("MPI_Comm_size", vec![pslot], Type::Void);
        let slot = b.alloca(1i64);
        b.store(slot, Value::int(7));
        b.call(kernel, vec![n], Type::Void);
        b.call(comm, vec![n], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn end_to_end_analysis() {
        let m = tiny_app();
        let cfg = PipelineConfig::with_mpi_defaults();
        let analysis = analyze(
            &m,
            "main",
            vec![("size".into(), 6), ("p".into(), 4)],
            &cfg,
        )
        .unwrap();

        assert_eq!(analysis.param_names, vec!["size", "p"]);
        let kernel = m.function_by_name("kernel").unwrap();
        let comm = m.function_by_name("comm").unwrap();
        let getter = m.function_by_name("getter").unwrap();
        assert_eq!(analysis.kinds[kernel.index()], FuncKind::Kernel);
        assert_eq!(analysis.kinds[comm.index()], FuncKind::Comm);
        assert_eq!(analysis.kinds[getter.index()], FuncKind::ConstantStatic);

        // Restrictions projected onto ["p", "size"]: kernel → size only.
        let model_params = vec!["p".to_string(), "size".to_string()];
        let r = analysis.restrictions(&m, &model_params);
        assert!(r["getter"].forbids_everything());
        assert!(r["kernel"].allows_mask(0b10), "kernel may use size");
        assert!(!r["kernel"].allows_mask(0b01), "kernel must not use p");
        // comm calls MPI with a size-tainted count → {p, size}.
        assert!(r["comm"].allows_mask(0b11));
        assert!(r["MPI_Allreduce"].allows_mask(0b11));
        // Environment queries are constant (§B1's MPI_Comm_rank finding).
        assert!(r["MPI_Comm_size"].forbids_everything());

        // Global structure: multiplicative (comm's {p·size}).
        let global = analysis.global_deps(&model_params);
        assert!(global.has_multiplicative());

        // Instrumentation list: kernel + comm + main.
        let relevant = analysis.relevant_functions(&m);
        assert!(relevant.contains(&"kernel".to_string()));
        assert!(relevant.contains(&"comm".to_string()));
        assert!(relevant.contains(&"main".to_string()));
        assert!(!relevant.contains(&"getter".to_string()));

        // Census sanity.
        assert_eq!(analysis.table2.pruned_static, 1);
        assert_eq!(analysis.table2.kernels, 2);
        assert_eq!(analysis.table2.comm_routines, 1);
        assert!(analysis.taint_run_core_hours > 0.0);
    }

    #[test]
    fn machine_ranks_follow_p_parameter() {
        let m = tiny_app();
        let cfg = PipelineConfig::with_mpi_defaults();
        let analysis = analyze(
            &m,
            "main",
            vec![("size".into(), 2), ("p".into(), 16)],
            &cfg,
        )
        .unwrap();
        // core-hours = time × 16 ranks; just verify the plumbing ran.
        assert!(analysis.taint_run_core_hours > 0.0);
        assert_eq!(analysis.param_index("p"), Some(1));
    }
}
