//! Configuration of the Perf-Taint pipeline (Fig. 2 of the paper).
//!
//! [`PipelineConfig`] bundles everything a [`crate::Session`] needs beyond
//! the module itself: the library database (§5.3), the simulated machine,
//! and the interpreter configuration. The staged [`crate::session`] API is
//! the sole entry point — `SessionBuilder::new(&module, entry).build()
//! .taint_run(params)` is the one-shot form, and keeping the session
//! around amortizes the static stage over sweeps, batches, and edits (the
//! deprecated one-shot `analyze()` shim this module used to export was
//! exactly that expression).

pub use crate::session::Analysis;
use pt_mpisim::{LibraryDb, MachineConfig};
use pt_taint::InterpConfig;

/// Configuration of the analysis pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    pub db: LibraryDb,
    /// Machine used for the representative taint run. Its rank count is
    /// overridden by the `p` parameter when present.
    pub machine: MachineConfig,
    pub interp: InterpConfig,
}

impl PipelineConfig {
    pub fn with_mpi_defaults() -> PipelineConfig {
        PipelineConfig {
            db: LibraryDb::mpi_default(),
            machine: MachineConfig::default(),
            interp: InterpConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::FuncKind;
    use crate::error::PtError;
    use crate::session::SessionBuilder;
    use pt_ir::{FunctionBuilder, Module, Type, Value};

    /// The one-shot form the retired `analyze()` shim used to package.
    fn analyze(
        module: &Module,
        entry: &str,
        params: Vec<(String, i64)>,
        cfg: &PipelineConfig,
    ) -> Result<Analysis, PtError> {
        SessionBuilder::new(module, entry)
            .config(cfg.clone())
            .build()
            .taint_run(params)
    }

    fn tiny_app() -> Module {
        let mut m = Module::new("tiny");
        let mut b = FunctionBuilder::new("getter", vec![("d".into(), Type::Ptr)], Type::I64);
        let v = b.load(b.param(0), Type::I64);
        b.ret(Some(v));
        m.add_function(b.finish());
        let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![Value::int(5)], Type::Void);
        });
        b.ret(None);
        let kernel = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("comm", vec![("n".into(), Type::I64)], Type::Void);
        b.call_external("MPI_Allreduce", vec![b.param(0)], Type::Void);
        b.ret(None);
        let comm = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
        let pslot = b.alloca(1i64);
        b.call_external("MPI_Comm_size", vec![pslot], Type::Void);
        let slot = b.alloca(1i64);
        b.store(slot, Value::int(7));
        b.call(kernel, vec![n], Type::Void);
        b.call(comm, vec![n], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn end_to_end_analysis() {
        let m = tiny_app();
        let cfg = PipelineConfig::with_mpi_defaults();
        let analysis =
            analyze(&m, "main", vec![("size".into(), 6), ("p".into(), 4)], &cfg).unwrap();

        assert_eq!(analysis.param_names, vec!["size", "p"]);
        let kernel = m.function_by_name("kernel").unwrap();
        let comm = m.function_by_name("comm").unwrap();
        let getter = m.function_by_name("getter").unwrap();
        assert_eq!(analysis.kinds[kernel.index()], FuncKind::Kernel);
        assert_eq!(analysis.kinds[comm.index()], FuncKind::Comm);
        assert_eq!(analysis.kinds[getter.index()], FuncKind::ConstantStatic);

        // Restrictions projected onto ["p", "size"]: kernel → size only.
        let model_params = vec!["p".to_string(), "size".to_string()];
        let r = analysis.restrictions(&m, &model_params);
        assert!(r["getter"].forbids_everything());
        assert!(r["kernel"].allows_mask(0b10), "kernel may use size");
        assert!(!r["kernel"].allows_mask(0b01), "kernel must not use p");
        // comm calls MPI with a size-tainted count → {p, size}.
        assert!(r["comm"].allows_mask(0b11));
        assert!(r["MPI_Allreduce"].allows_mask(0b11));
        // Environment queries are constant (§B1's MPI_Comm_rank finding).
        assert!(r["MPI_Comm_size"].forbids_everything());

        // Global structure: multiplicative (comm's {p·size}).
        let global = analysis.global_deps(&model_params);
        assert!(global.has_multiplicative());

        // Instrumentation list: kernel + comm + main.
        let relevant = analysis.relevant_functions(&m);
        assert!(relevant.contains(&"kernel".to_string()));
        assert!(relevant.contains(&"comm".to_string()));
        assert!(relevant.contains(&"main".to_string()));
        assert!(!relevant.contains(&"getter".to_string()));

        // Census sanity.
        assert_eq!(analysis.table2.pruned_static, 1);
        assert_eq!(analysis.table2.kernels, 2);
        assert_eq!(analysis.table2.comm_routines, 1);
        assert!(analysis.taint_run_core_hours > 0.0);
    }

    #[test]
    fn machine_ranks_follow_p_parameter() {
        let m = tiny_app();
        let cfg = PipelineConfig::with_mpi_defaults();
        let analysis =
            analyze(&m, "main", vec![("size".into(), 2), ("p".into(), 16)], &cfg).unwrap();
        // core-hours = time × 16 ranks; just verify the plumbing ran.
        assert!(analysis.taint_run_core_hours > 0.0);
        assert_eq!(analysis.param_index("p"), Some(1));
    }

    #[test]
    fn user_errors_surface_as_pt_error_not_panics() {
        let m = tiny_app();
        let cfg = PipelineConfig::with_mpi_defaults();
        // Unknown entry: named in the error, no panic.
        let err = analyze(&m, "no_such_entry", vec![], &cfg).unwrap_err();
        assert_eq!(
            err,
            crate::PtError::EntryNotFound {
                entry: "no_such_entry".into()
            }
        );
        // Nonsensical rank counts: Config errors (zero, and u32 overflow —
        // never a silent truncation).
        let err = analyze(&m, "main", vec![("p".into(), 0)], &cfg).unwrap_err();
        assert!(matches!(err, crate::PtError::Config(_)), "{err}");
        let err = analyze(&m, "main", vec![("p".into(), u32::MAX as i64 + 2)], &cfg).unwrap_err();
        assert!(matches!(err, crate::PtError::Config(_)), "{err}");
    }
}
