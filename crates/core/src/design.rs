//! Experiment-design reduction from dependency structures (§A2).
//!
//! Taint analysis reveals which parameters have *multiplicative*
//! dependencies (they appear together in a monomial — their interaction
//! must be sampled on a grid) and which are only *additive* (single-
//! parameter sweeps suffice, sharing one baseline point). For the paper's
//! `foo(p, s)` example with 5 values each: additive needs 5 + 5 − 1 = 9
//! experiments instead of 25.

use crate::volume::DepStructure;
use serde::{Deserialize, Serialize};

/// The outcome of experiment-design planning for a set of model parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignReport {
    pub param_names: Vec<String>,
    /// Values to sample per parameter.
    pub values_per_param: Vec<usize>,
    /// Parameter groups that must be sampled jointly (indices into
    /// `param_names`); singleton groups are additive.
    pub groups: Vec<Vec<usize>>,
    /// Experiments for the naive full grid: `Π vᵢ`.
    pub full_grid: usize,
    /// Experiments after the taint-based reduction.
    pub reduced: usize,
    /// True when no multiplicative dependency exists at all.
    pub additive_only: bool,
}

impl DesignReport {
    pub fn savings_percent(&self) -> f64 {
        if self.full_grid == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.reduced as f64 / self.full_grid as f64)
        }
    }
}

/// Plan experiments for `global` — the union dependency structure over all
/// modeled functions, already projected/remapped onto the model axes.
pub fn design_experiments(
    global: &DepStructure,
    param_names: &[String],
    values_per_param: &[usize],
) -> DesignReport {
    let n = param_names.len();
    assert_eq!(values_per_param.len(), n);

    // Union-find over parameters: joined when they co-occur in a monomial.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for m in &global.monomials {
        let members: Vec<usize> = (0..n).filter(|&i| m.contains(i)).collect();
        for w in members.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                parent[a] = b;
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        match groups.iter_mut().find(|g| find(&mut parent, g[0]) == root) {
            Some(g) => g.push(i),
            None => groups.push(vec![i]),
        }
    }
    groups.sort();

    let full_grid: usize = values_per_param.iter().product();
    // Each group needs its own sub-grid; a shared baseline configuration is
    // counted once.
    let reduced: usize = groups
        .iter()
        .map(|g| g.iter().map(|&i| values_per_param[i]).product::<usize>())
        .sum::<usize>()
        .saturating_sub(groups.len().saturating_sub(1));
    let additive_only = groups.iter().all(|g| g.len() == 1);

    DesignReport {
        param_names: param_names.to_vec(),
        values_per_param: values_per_param.to_vec(),
        groups,
        full_grid,
        reduced,
        additive_only,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_taint::ParamSet;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("x{i}")).collect()
    }

    #[test]
    fn papers_additive_example() {
        // §A2: foo with two sequential loops over p and s — additive.
        let d = DepStructure::from_monomials(vec![ParamSet(0b01), ParamSet(0b10)]);
        let r = design_experiments(&d, &names(2), &[5, 5]);
        assert!(r.additive_only);
        assert_eq!(r.full_grid, 25);
        assert_eq!(r.reduced, 9, "5 + 5 − 1 experiments");
        assert_eq!(r.groups.len(), 2);
    }

    #[test]
    fn multiplicative_needs_full_grid() {
        let d = DepStructure::from_monomials(vec![ParamSet(0b11)]);
        let r = design_experiments(&d, &names(2), &[5, 5]);
        assert!(!r.additive_only);
        assert_eq!(r.reduced, 25);
        assert_eq!(r.savings_percent(), 0.0);
    }

    #[test]
    fn mixed_structure_partial_reduction() {
        // {a·b} + {c}: grid over (a,b), sweep c separately.
        let d = DepStructure::from_monomials(vec![ParamSet(0b011), ParamSet(0b100)]);
        let r = design_experiments(&d, &names(3), &[5, 5, 5]);
        assert!(!r.additive_only);
        assert_eq!(r.full_grid, 125);
        assert_eq!(r.reduced, 25 + 5 - 1);
        assert_eq!(r.groups, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn transitive_grouping() {
        // {a·b} + {b·c}: a, b, c all joined.
        let d = DepStructure::from_monomials(vec![ParamSet(0b011), ParamSet(0b110)]);
        let r = design_experiments(&d, &names(3), &[3, 3, 3]);
        assert_eq!(r.groups.len(), 1);
        assert_eq!(r.reduced, 27);
    }

    #[test]
    fn constant_structure_needs_one_experiment_per_param_sweep() {
        let d = DepStructure::constant();
        let r = design_experiments(&d, &names(2), &[5, 5]);
        assert!(r.additive_only);
        assert_eq!(r.reduced, 9);
        assert!(r.savings_percent() > 60.0);
    }
}
