//! Dependency extraction: from taint-run records to per-function
//! dependency structures.
//!
//! A function's (exclusive-cost) dependency structure is the set of
//! monomials of its own non-constant loops. Because the interpreter
//! propagates control-context labels across calls, each recorded loop label
//! set is *already* the fully composed monomial of its enclosing loop nest
//! — including loops in callers (the interprocedural aggregation of §4.3).
//! Constant-trip loops are dropped: they were pruned statically (§5.1).
//!
//! Library-database dependencies (§5.3) are merged in: any function calling
//! a performance-relevant MPI routine gains an implicit `{p}` monomial, and
//! tainted message-count arguments extend it (e.g. a halo exchange of
//! `size²` words yields `{p, size}`).

use crate::volume::DepStructure;
use pt_ir::{Callee, FunctionId, InstKind, Module};
use pt_mpisim::LibraryDb;
use pt_taint::prepared::PreparedModule;
use pt_taint::{LabelTable, ParamSet, TaintRecords};
use std::collections::BTreeMap;

/// Extract the dependency structure of every function.
pub fn extract_deps(
    module: &Module,
    prepared: &PreparedModule,
    records: &TaintRecords,
    labels: &LabelTable,
    db: &LibraryDb,
) -> BTreeMap<FunctionId, DepStructure> {
    let mut out: BTreeMap<FunctionId, DepStructure> = BTreeMap::new();
    for f in module.function_ids() {
        out.insert(f, DepStructure::constant());
    }

    // Own loops (skip statically-constant trip counts).
    for ((func, loop_id), rec) in records.loops_by_function() {
        if func.index() >= module.functions.len() {
            continue; // pseudo-ids of externals carry no loops
        }
        if prepared.func(func).loop_is_constant(loop_id) {
            continue;
        }
        if rec.params.is_empty() {
            continue;
        }
        out.get_mut(&func)
            .expect("function present")
            .merge(&DepStructure::from_monomials(vec![rec.params]));
    }

    // Library database: implicit communicator-size dependency and tainted
    // count arguments.
    let p_idx = labels.param_index("p");
    for f in module.function_ids() {
        let mut lib_monomials: Vec<ParamSet> = Vec::new();
        for inst in &module.function(f).insts {
            if let InstKind::Call {
                callee: Callee::External(name),
                ..
            } = &inst.kind
            {
                let Some(entry) = db.get(name) else { continue };
                let mut monomial = ParamSet::EMPTY;
                if !entry.implicit_params.is_empty() {
                    if let Some(p) = p_idx {
                        monomial = monomial.union(ParamSet::single(p));
                    }
                }
                if entry.count_arg.is_some() {
                    if let Some(args) = records.extern_args.get(&(f, name.clone())) {
                        monomial = monomial.union(*args);
                    }
                }
                if !monomial.is_empty() {
                    lib_monomials.push(monomial);
                }
            }
        }
        if !lib_monomials.is_empty() {
            out.get_mut(&f)
                .expect("function present")
                .merge(&DepStructure::from_monomials(lib_monomials));
        }
    }
    out
}

/// Dependency structures for the external (MPI) routines themselves, keyed
/// by symbol name: implicit `{p}` plus any tainted count arguments observed
/// at any call site.
pub fn extern_deps(
    module: &Module,
    records: &TaintRecords,
    labels: &LabelTable,
    db: &LibraryDb,
) -> BTreeMap<String, DepStructure> {
    let p_idx = labels.param_index("p");
    let mut out = BTreeMap::new();
    for name in module.used_externals() {
        let Some(entry) = db.get(name) else {
            continue;
        };
        let mut monomial = ParamSet::EMPTY;
        if !entry.implicit_params.is_empty() {
            if let Some(p) = p_idx {
                monomial = monomial.union(ParamSet::single(p));
            }
        }
        if entry.count_arg.is_some() {
            for ((_, ext), args) in &records.extern_args {
                if ext == name {
                    monomial = monomial.union(*args);
                }
            }
        }
        let dep = if monomial.is_empty() {
            DepStructure::constant()
        } else {
            DepStructure::from_monomials(vec![monomial])
        };
        out.insert(name.to_string(), dep);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ir::{FunctionBuilder, Type, Value};
    use pt_mpisim::{MachineConfig, MpiHandler};
    use pt_taint::{InterpConfig, Interpreter, PreparedModule};

    /// kernel(n): loop n; comm(): allreduce; halo(s): send s*s words.
    fn test_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
        b.for_loop(0i64, b.param(0), 1i64, |b, _| {
            b.call_external("pt_work_flops", vec![Value::int(10)], Type::Void);
        });
        b.ret(None);
        let kernel = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("halo", vec![("s".into(), Type::I64)], Type::Void);
        let msg = b.mul(b.param(0), b.param(0));
        b.call_external("MPI_Send", vec![msg], Type::Void);
        b.ret(None);
        let halo = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
        let pslot = b.alloca(1i64);
        b.call_external("MPI_Comm_size", vec![pslot], Type::Void);
        b.call(kernel, vec![n], Type::Void);
        b.call(halo, vec![n], Type::Void);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn loop_and_library_deps_extracted() {
        let m = test_module();
        let prepared = PreparedModule::compute(&m);
        let handler = MpiHandler::new(MachineConfig::default().with_ranks(4));
        let out = Interpreter::new(
            &m,
            &prepared,
            handler,
            vec![("size".into(), 6), ("p".into(), 4)],
            InterpConfig::default(),
        )
        .run_named("main", &[])
        .unwrap();

        let db = LibraryDb::mpi_default();
        let deps = extract_deps(&m, &prepared, &out.records, &out.labels, &db);
        let kernel = m.function_by_name("kernel").unwrap();
        let halo = m.function_by_name("halo").unwrap();
        let size_idx = out.labels.param_index("size").unwrap();
        let p_idx = out.labels.param_index("p").unwrap();

        assert!(deps[&kernel].depends_on(size_idx));
        assert!(!deps[&kernel].depends_on(p_idx));
        // halo has no loops but calls MPI_Send with a size²-tainted count:
        // its monomial is {p, size}.
        let hd = &deps[&halo];
        assert!(hd.depends_on(p_idx));
        assert!(hd.depends_on(size_idx));
        assert!(hd.has_multiplicative());

        let ext = extern_deps(&m, &out.records, &out.labels, &db);
        assert!(ext["MPI_Send"].depends_on(p_idx));
        assert!(ext["MPI_Send"].depends_on(size_idx));
        // Environment queries have constant cost (§B1).
        assert!(ext["MPI_Comm_size"].is_constant());
    }

    #[test]
    fn constant_functions_have_empty_deps() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("getter", vec![("d".into(), Type::Ptr)], Type::I64);
        let v = b.load(b.param(0), Type::I64);
        b.ret(Some(v));
        let getter = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let slot = b.alloca(1i64);
        b.store(slot, Value::int(3));
        b.call(getter, vec![slot], Type::I64);
        b.ret(None);
        m.add_function(b.finish());
        let prepared = PreparedModule::compute(&m);
        let handler = MpiHandler::new(MachineConfig::default());
        let out = Interpreter::new(&m, &prepared, handler, vec![], InterpConfig::default())
            .run_named("main", &[])
            .unwrap();
        let deps = extract_deps(
            &m,
            &prepared,
            &out.records,
            &out.labels,
            &LibraryDb::mpi_default(),
        );
        assert!(deps[&getter].is_constant());
    }
}
