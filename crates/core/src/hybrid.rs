//! The hybrid modeler (§4.5): black-box PMNF search with the white-box
//! taint prior.
//!
//! `model_functions` fits one model per function from its measurement set.
//! With `restrictions = None` it reproduces plain black-box Extra-P —
//! including its §B1 failure mode of modeling noise on constant functions.
//! With restrictions, parameters a function provably cannot depend on are
//! removed from its search space, constants are forced constant, and
//! additive structures never receive cross terms.

use pt_extrap::{fit_multi_param, FittedModel, MeasurementSet, Restriction, SearchSpace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The modeled result for one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionModel {
    pub name: String,
    pub fitted: FittedModel,
    /// §B1 reliability gate: max CV across points ≤ threshold.
    pub reliable: bool,
    /// Whether a taint restriction was applied.
    pub restricted: bool,
    pub max_cv: f64,
    /// Mean measured value (for scale context in reports).
    pub mean_value: f64,
}

impl FunctionModel {
    /// Does the model claim a dependency on model-axis `k`?
    pub fn uses_param(&self, k: usize) -> bool {
        self.fitted.model.uses_param(k)
    }
}

/// Fit models for every function in `sets`.
pub fn model_functions(
    sets: &BTreeMap<String, MeasurementSet>,
    restrictions: Option<&BTreeMap<String, Restriction>>,
    space: &SearchSpace,
    cv_threshold: f64,
) -> BTreeMap<String, FunctionModel> {
    let mut out = BTreeMap::new();
    for (name, set) in sets {
        let restriction = restrictions.and_then(|r| r.get(name));
        let fitted = fit_multi_param(set, space, restriction);
        let max_cv = set.max_cv();
        let means = set.means();
        let mean_value = if means.is_empty() {
            0.0
        } else {
            means.iter().sum::<f64>() / means.len() as f64
        };
        out.insert(
            name.clone(),
            FunctionModel {
                name: name.clone(),
                fitted,
                reliable: max_cv <= cv_threshold,
                restricted: restriction.is_some(),
                max_cv,
                mean_value,
            },
        );
    }
    out
}

/// Compare black-box and hybrid model sets: which functions' models changed,
/// and which black-box models carried *false dependencies* — parameters the
/// taint analysis proves impossible (§B1's headline metric: "corrects 77%
/// of models previously indicating performance effects").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModelComparison {
    /// Functions whose black-box model used a forbidden parameter.
    pub false_dependencies: Vec<String>,
    /// Functions where black-box found parameters on a taint-proven
    /// constant function.
    pub overfitted_constants: Vec<String>,
    /// Total functions compared.
    pub total: usize,
}

impl ModelComparison {
    pub fn corrected_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.false_dependencies.len() + self.overfitted_constants.len()) as f64 / self.total as f64
    }
}

/// Compare a black-box model set against the taint restrictions.
pub fn compare_against_truth(
    blackbox: &BTreeMap<String, FunctionModel>,
    restrictions: &BTreeMap<String, Restriction>,
) -> ModelComparison {
    let mut cmp = ModelComparison::default();
    for (name, model) in blackbox {
        let Some(restriction) = restrictions.get(name) else {
            continue;
        };
        cmp.total += 1;
        let used = model.fitted.model.param_mask();
        if restriction.forbids_everything() {
            if used != 0 {
                cmp.overfitted_constants.push(name.clone());
            }
            continue;
        }
        let allowed = restriction.allowed_params();
        if used & !allowed != 0 {
            cmp.false_dependencies.push(name.clone());
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_extrap::MeasurePoint;

    fn set_of(f: impl Fn(f64, f64) -> f64, noise: &[f64]) -> MeasurementSet {
        let mut s = MeasurementSet::new(vec!["p".into(), "size".into()]);
        let mut k = 0;
        for &p in &[4.0, 8.0, 16.0, 32.0, 64.0] {
            for &size in &[16.0, 20.0, 24.0, 28.0, 32.0] {
                let base = f(p, size);
                let reps: Vec<f64> = (0..3)
                    .map(|i| base + noise.get((k + i) % noise.len()).copied().unwrap_or(0.0))
                    .collect();
                k += 1;
                s.points.push(MeasurePoint {
                    coords: vec![p, size],
                    reps,
                });
            }
        }
        s
    }

    #[test]
    fn hybrid_forces_constants() {
        // A constant function under noise that fools the black box.
        let noise: Vec<f64> = (0..25).map(|i| ((i * 37) % 11) as f64 * 2e-6).collect();
        let mut sets = BTreeMap::new();
        sets.insert("tiny_getter".to_string(), set_of(|_, _| 1e-6, &noise));

        let space = SearchSpace::small();
        let blackbox = model_functions(&sets, None, &space, 0.5);
        let mut restrictions = BTreeMap::new();
        restrictions.insert("tiny_getter".to_string(), Restriction::constant());
        let hybrid = model_functions(&sets, Some(&restrictions), &space, 0.5);

        assert!(
            hybrid["tiny_getter"].fitted.model.is_constant(),
            "hybrid must be constant: {}",
            hybrid["tiny_getter"].fitted.model
        );
        assert!(hybrid["tiny_getter"].restricted);
        // Comparison counts the black-box overfit (if it happened).
        let cmp = compare_against_truth(&blackbox, &restrictions);
        assert_eq!(cmp.total, 1);
        if !blackbox["tiny_getter"].fitted.model.is_constant() {
            assert_eq!(cmp.overfitted_constants, vec!["tiny_getter".to_string()]);
            assert!(cmp.corrected_fraction() > 0.99);
        }
    }

    #[test]
    fn restriction_removes_false_parameter() {
        // Function truly depends on size only; tiny p-correlated noise.
        let mut sets = BTreeMap::new();
        let mut s = MeasurementSet::new(vec!["p".into(), "size".into()]);
        for &p in &[4.0, 8.0, 16.0, 32.0, 64.0] {
            for &size in &[16.0, 20.0, 24.0, 28.0, 32.0] {
                let v = 1e-5 * size * size * size + 1e-7 * p; // contamination
                s.points.push(MeasurePoint {
                    coords: vec![p, size],
                    reps: vec![v],
                });
            }
        }
        sets.insert("kernel".to_string(), s);
        let mut restrictions = BTreeMap::new();
        restrictions.insert(
            "kernel".to_string(),
            Restriction::from_monomials(vec![0b10]),
        );
        let space = SearchSpace::small();
        let hybrid = model_functions(&sets, Some(&restrictions), &space, 0.5);
        assert!(!hybrid["kernel"].uses_param(0), "p must be pruned");
        assert!(hybrid["kernel"].uses_param(1));
    }

    #[test]
    fn reliability_gate() {
        let mut sets = BTreeMap::new();
        let mut s = MeasurementSet::new(vec!["p".into()]);
        s.points.push(MeasurePoint {
            coords: vec![4.0],
            reps: vec![1.0, 3.0], // CV >> 0.1
        });
        s.points.push(MeasurePoint {
            coords: vec![8.0],
            reps: vec![2.0, 2.0],
        });
        sets.insert("noisy".to_string(), s);
        let models = model_functions(&sets, None, &SearchSpace::small(), 0.1);
        assert!(!models["noisy"].reliable);
        assert!(models["noisy"].max_cv > 0.1);
    }
}
