//! The staged `Session` API contract: the static stage is memoized and
//! shared across taint runs, `analyze_batch` matches sequential `analyze`
//! exactly while computing the static stage once, and user errors surface
//! as `PtError` values — never panics, never substrate error types.

use perf_taint::{PtError, SessionBuilder};
use pt_apps::lulesh;
use std::sync::Arc;

/// The ≥4 parameter sets the acceptance criterion calls for: a sweep over
/// (size, p) around LULESH's representative configuration.
fn lulesh_param_sets(app: &pt_apps::AppSpec) -> Vec<Vec<(String, i64)>> {
    [(4i64, 8i64), (5, 8), (6, 27), (5, 27), (4, 64)]
        .iter()
        .map(|&(size, p)| app.sweep_params(&[("size", size), ("p", p)]))
        .collect()
}

#[test]
fn taint_runs_share_one_static_stage() {
    let app = lulesh::build();
    let session = SessionBuilder::new(&app.module, &app.entry).build();
    let a = session.taint_run(app.taint_run_params()).unwrap();
    let b = session
        .taint_run(app.sweep_params(&[("size", 6), ("p", 27)]))
        .unwrap();
    // Same Arc: the PreparedModule and classification were computed once.
    assert!(
        Arc::ptr_eq(&a.statics, &b.statics),
        "second taint_run must reuse the session's static artifacts"
    );
    assert!(Arc::ptr_eq(&a.statics, &session.static_analysis()));
    // And they are genuinely the session's artifacts, not clones.
    assert!(std::ptr::eq(a.prepared(), b.prepared()));
}

#[test]
fn static_analysis_is_idempotent_and_usable_without_a_run() {
    let app = lulesh::build();
    let session = SessionBuilder::new(&app.module, &app.entry).build();
    let s1 = session.static_analysis();
    let s2 = session.static_analysis();
    assert!(Arc::ptr_eq(&s1, &s2));
    // The §5.1 classification alone already prunes most of LULESH.
    assert!(s1.classification.pruned_count() > app.module.functions.len() / 2);
}

#[test]
fn analyze_batch_matches_sequential_analyze() {
    let app = lulesh::build();
    let param_sets = lulesh_param_sets(&app);
    assert!(param_sets.len() >= 4);

    let session = SessionBuilder::new(&app.module, &app.entry).build();
    let batch = session.analyze_batch(&param_sets);

    // The static stage was computed exactly once: every batch result holds
    // the session's own Arc (a recomputation would allocate a fresh one).
    let statics = session.static_analysis();
    for result in &batch {
        let a = result.as_ref().expect("batch entry");
        assert!(
            Arc::ptr_eq(&a.statics, &statics),
            "batch entry recomputed the static stage"
        );
    }

    // Results are identical to one-shot sequential runs (a throwaway
    // session per parameter set — the retired `analyze()` shim's shape).
    let model_params = app.model_params.clone();
    for (params, result) in param_sets.iter().zip(&batch) {
        let batched = result.as_ref().unwrap();
        let sequential = SessionBuilder::new(&app.module, &app.entry)
            .build()
            .taint_run(params.clone())
            .unwrap();
        assert_eq!(batched.param_names, sequential.param_names);
        assert_eq!(batched.kinds, sequential.kinds);
        assert_eq!(batched.deps, sequential.deps);
        assert_eq!(batched.extern_deps, sequential.extern_deps);
        assert_eq!(
            batched.records.loops_by_function().len(),
            sequential.records.loops_by_function().len()
        );
        for (key, rec) in batched.records.loops_by_function() {
            let seq = &sequential.records.loops_by_function()[&key];
            assert_eq!(rec.iterations, seq.iterations, "{key:?}");
            assert_eq!(rec.params, seq.params, "{key:?}");
        }
        assert!((batched.taint_run_time - sequential.taint_run_time).abs() < 1e-18);
        assert_eq!(
            batched.global_deps(&model_params),
            sequential.global_deps(&model_params)
        );
        assert_eq!(
            batched.relevant_functions(&app.module),
            sequential.relevant_functions(&app.module)
        );
    }
}

#[test]
fn batch_entries_fail_independently() {
    let app = lulesh::build();
    let session = SessionBuilder::new(&app.module, &app.entry).build();
    let good = app.taint_run_params();
    let bad = app.sweep_params(&[("p", 0)]); // rejected by config validation
    let results = session.analyze_batch(&[good.clone(), bad, good]);
    assert!(results[0].is_ok());
    assert!(matches!(results[1], Err(PtError::Config(_))));
    assert!(results[2].is_ok());
}

#[test]
fn errors_name_the_failing_entry_instead_of_panicking() {
    let app = lulesh::build();
    let session = SessionBuilder::new(&app.module, "not_a_function").build();
    let err = session.taint_run(app.taint_run_params()).unwrap_err();
    match &err {
        PtError::EntryNotFound { entry } => assert_eq!(entry, "not_a_function"),
        other => panic!("expected EntryNotFound, got {other:?}"),
    }
    assert!(err.to_string().contains("not_a_function"));
}

#[test]
fn parse_errors_wrap_into_pt_error() {
    let err = perf_taint::parse_module("func @broken(").unwrap_err();
    assert!(matches!(err, PtError::Parse(_)));
    // The line number survives the wrapping.
    assert!(err.to_string().contains("line"), "{err}");
}

#[test]
fn axis_mapping_cache_is_consistent_across_repeated_projections() {
    // The memoized axis mapping must never change results: repeated and
    // interleaved projections over different axis vectors agree with fresh
    // computations.
    let app = lulesh::build();
    let session = SessionBuilder::new(&app.module, &app.entry).build();
    let a = session.taint_run(app.taint_run_params()).unwrap();
    let axes1 = vec!["p".to_string(), "size".to_string()];
    let axes2 = vec!["size".to_string(), "regions".to_string(), "p".to_string()];
    let g1 = a.global_deps(&axes1);
    let g2 = a.global_deps(&axes2);
    let r1 = a.restrictions(&app.module, &axes1);
    for _ in 0..3 {
        assert_eq!(a.global_deps(&axes1), g1);
        assert_eq!(a.global_deps(&axes2), g2);
        assert_eq!(a.restrictions(&app.module, &axes1), r1);
    }
}

#[test]
fn session_cache_shares_statics_across_sessions_and_apps() {
    use perf_taint::SessionCache;
    let lulesh = lulesh::build();
    let milc = pt_apps::milc::build();
    let cache = SessionCache::new();
    assert!(cache.is_empty());

    // Two sessions over the same module content share one static stage.
    let s1 = cache.get_or_compute(&lulesh.module, &lulesh.entry);
    let s2 = cache.get_or_compute(&lulesh.module, &lulesh.entry);
    assert!(Arc::ptr_eq(&s1.static_analysis(), &s2.static_analysis()));
    assert_eq!(cache.len(), 1);

    // The whole-module slot absorbed the second request: the per-function
    // ledger shows exactly one compute pass over the module's functions.
    let reuse = cache.unit_reuse();
    assert_eq!(reuse.total, lulesh.module.functions.len());
    assert_eq!(reuse.recomputed, lulesh.module.functions.len());

    // A different app gets its own entry, not the cached one.
    let s3 = cache.get_or_compute(&milc.module, &milc.entry);
    assert!(!Arc::ptr_eq(&s1.static_analysis(), &s3.static_analysis()));
    assert_eq!(cache.len(), 2);

    // Cached sessions still produce working analyses, and the analysis
    // carries the shared artifacts.
    let a = s2.taint_run(lulesh.taint_run_params()).unwrap();
    assert!(Arc::ptr_eq(&a.statics, &s1.static_analysis()));
}
