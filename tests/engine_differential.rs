//! Differential suite over the evaluation applications: the decode-once
//! engine must be bit-identical to the legacy tree-walker on mini-LULESH,
//! mini-MILC, and generated synthetic workloads — full `RunOutput` and
//! `TaintRecords` equality per `pt_taint::differential`'s contract, under
//! the production MPI handler.

use pt_apps::AppSpec;
use pt_mpisim::{MachineConfig, MpiHandler};
use pt_taint::differential::compare_results;
use pt_taint::{CtlFlowPolicy, InterpConfig, Interpreter, PreparedModule, ReferenceInterpreter};

/// Mirror `Session::taint_run`'s machine setup: the rank count follows the
/// `p` parameter when present.
fn machine_for(params: &[(String, i64)]) -> MachineConfig {
    let mut machine = MachineConfig::default();
    if let Some((_, p)) = params.iter().find(|(n, _)| n == "p") {
        machine.ranks = u32::try_from(*p).expect("positive rank count");
    }
    machine
}

fn assert_app_identical(app: &AppSpec, config: InterpConfig) {
    let taint_on = config.taint;
    let params = app.taint_run_params();
    let machine = machine_for(&params);
    let prepared = PreparedModule::compute(&app.module);
    let decoded = Interpreter::new(
        &app.module,
        &prepared,
        MpiHandler::new(machine.clone()),
        params.clone(),
        config.clone(),
    )
    .run_named(&app.entry, &[]);
    let legacy = ReferenceInterpreter::new(
        &app.module,
        &prepared,
        MpiHandler::new(machine),
        params,
        config,
    )
    .run_named(&app.entry, &[]);
    compare_results(&decoded, &legacy).unwrap_or_else(|divergence| {
        panic!("engines diverge on {}: {divergence}", app.name);
    });
    let out = decoded.expect("taint run succeeds");
    assert!(out.insts > 0, "{} executed instructions", app.name);
    assert!(
        !taint_on || !out.records.loops.is_empty(),
        "{} recorded loop sinks",
        app.name
    );
}

#[test]
fn lulesh_taint_run_is_bit_identical() {
    assert_app_identical(&pt_apps::lulesh::build(), InterpConfig::default());
}

#[test]
fn lulesh_is_bit_identical_under_every_ctlflow_policy() {
    for policy in [CtlFlowPolicy::Off, CtlFlowPolicy::StoresOnly] {
        assert_app_identical(
            &pt_apps::lulesh::build(),
            InterpConfig {
                policy,
                ..Default::default()
            },
        );
    }
}

#[test]
fn milc_taint_run_is_bit_identical() {
    assert_app_identical(&pt_apps::milc::build(), InterpConfig::default());
}

#[test]
fn milc_measurement_mode_is_bit_identical() {
    // The measurement sweeps run with taint and coverage off plus probe
    // costs — the `pt-measure` configuration must match too.
    let app = pt_apps::milc::build();
    let nfuncs = app.module.functions.len() + app.module.used_externals().len();
    assert_app_identical(
        &app,
        InterpConfig {
            taint: false,
            coverage: false,
            probe_cost: vec![1e-7; nfuncs],
            ..Default::default()
        },
    );
}

#[test]
fn synthetic_workloads_are_bit_identical() {
    for seed in 0..6 {
        let synth = pt_apps::synth::generate(&pt_apps::synth::SynthConfig {
            seed,
            ..Default::default()
        });
        assert_app_identical(&synth.app, InterpConfig::default());
    }
}
