//! Property-based tests of the taint runtime: label-table algebra
//! (idempotent, commutative, associative semilattice with correct base
//! sets) and determinism of the interpreter across repeated runs.

use proptest::prelude::*;
use pt_apps::synth::{generate, SynthConfig};
use pt_mpisim::{MachineConfig, MpiHandler};
use pt_taint::{InterpConfig, Interpreter, Label, LabelTable, ParamSet, PreparedModule};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Union over arbitrary sequences of base labels behaves as set union.
    #[test]
    fn label_union_is_a_semilattice(ops in proptest::collection::vec(0usize..8, 1..40)) {
        let mut t = LabelTable::new();
        let bases: Vec<Label> = (0..8).map(|i| t.base_label(&format!("q{i}"))).collect();

        // Fold left and fold right must agree with the set semantics.
        let mut acc_l = Label::EMPTY;
        for &i in &ops {
            acc_l = t.union(acc_l, bases[i]);
        }
        let mut acc_r = Label::EMPTY;
        for &i in ops.iter().rev() {
            acc_r = t.union(bases[i], acc_r);
        }
        let expect = ops.iter().fold(ParamSet::EMPTY, |a, &i| a.union(ParamSet::single(i)));
        prop_assert_eq!(t.params_of(acc_l), expect);
        prop_assert_eq!(t.params_of(acc_r), expect);

        // Idempotence: unioning the result with itself allocates nothing.
        let before = t.len();
        let again = t.union(acc_l, acc_l);
        prop_assert_eq!(again, acc_l);
        prop_assert_eq!(t.len(), before);

        // Subsumption: result ∪ any operand = result.
        for &i in &ops {
            prop_assert_eq!(t.union(acc_l, bases[i]), acc_l);
        }

        // The tree walk agrees with the memoized bitset.
        let walked = t.base_labels_of(acc_l);
        prop_assert_eq!(walked.len(), expect.len());
    }

    /// Two interpreters over the same program and inputs produce identical
    /// clocks, instruction counts, records, and profiles.
    #[test]
    fn interpreter_is_deterministic(seed in 0u64..2000) {
        let cfg = SynthConfig {
            seed,
            num_params: 3,
            num_kernels: 3,
            max_depth: 3,
            param_values: vec![3, 4, 5],
        };
        let synth = generate(&cfg);
        let prepared = PreparedModule::compute(&synth.app.module);
        let run = || {
            let handler = MpiHandler::new(MachineConfig::default().with_ranks(4));
            Interpreter::new(
                &synth.app.module,
                &prepared,
                handler,
                synth.app.taint_run_params(),
                InterpConfig::default(),
            )
            .run_named("main", &[])
            .unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.insts, b.insts);
        prop_assert!((a.time - b.time).abs() < 1e-18);
        prop_assert_eq!(a.records.loops.len(), b.records.loops.len());
        for (k, ra) in &a.records.loops {
            let rb = &b.records.loops[k];
            prop_assert_eq!(ra.iterations, rb.iterations);
            prop_assert_eq!(ra.params, rb.params);
        }
        prop_assert_eq!(a.profile.len(), b.profile.len());
        prop_assert!((a.profile.total_exclusive() - b.profile.total_exclusive()).abs() < 1e-18);
    }

    /// Exclusive times always partition the wall clock, and inclusive ≥
    /// exclusive per entry.
    #[test]
    fn profile_time_accounting(seed in 0u64..2000) {
        let cfg = SynthConfig {
            seed,
            num_params: 2,
            num_kernels: 4,
            max_depth: 3,
            param_values: vec![4, 5],
        };
        let synth = generate(&cfg);
        let prepared = PreparedModule::compute(&synth.app.module);
        let handler = MpiHandler::new(MachineConfig::default().with_ranks(4));
        let out = Interpreter::new(
            &synth.app.module,
            &prepared,
            handler,
            synth.app.taint_run_params(),
            InterpConfig::default(),
        )
        .run_named("main", &[])
        .unwrap();
        let total_excl = out.profile.total_exclusive();
        prop_assert!(
            (total_excl - out.time).abs() < 1e-12 * out.time.max(1.0),
            "exclusive sum {total_excl} vs wall {}", out.time
        );
        for e in out.profile.entries() {
            prop_assert!(e.inclusive >= e.exclusive - 1e-15);
            prop_assert!(e.calls > 0);
        }
    }
}

#[test]
fn label_table_capacity_is_dfsan_like() {
    // The union-tree design must comfortably host big workloads: run many
    // distinct union patterns and stay far below the 2^16 ceiling.
    let mut t = LabelTable::new();
    let bases: Vec<Label> = (0..16).map(|i| t.base_label(&format!("q{i}"))).collect();
    for i in 0..16 {
        for j in 0..16 {
            let a = t.union(bases[i], bases[j]);
            for &base in &bases {
                let _ = t.union(a, base);
            }
        }
    }
    assert!(t.len() < 4096, "table size {}", t.len());
}
