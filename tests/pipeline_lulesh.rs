//! End-to-end pipeline assertions on mini-LULESH: the Table 2/3 shape, the
//! §6 kernel dependency structures, and the instrumentation list.

use perf_taint::{FuncKind, SessionBuilder};
use pt_apps::lulesh;

fn analysis() -> (pt_apps::AppSpec, perf_taint::Analysis) {
    let app = lulesh::build();
    let a = SessionBuilder::new(&app.module, &app.entry)
        .build()
        .taint_run(app.taint_run_params())
        .unwrap();
    (app, a)
}

#[test]
fn census_matches_paper_shape() {
    let (_, a) = analysis();
    let t2 = &a.table2;
    // Paper: 86.2% of functions constant; 40 kernels, 2 comm, 7 MPI.
    assert!(
        t2.constant_fraction() > 0.80,
        "constant fraction {:.3}",
        t2.constant_fraction()
    );
    assert!((30..=50).contains(&t2.kernels), "kernels {}", t2.kernels);
    assert!(
        (1..=4).contains(&t2.comm_routines),
        "comm {}",
        t2.comm_routines
    );
    assert!(
        (5..=8).contains(&t2.mpi_functions),
        "mpi {}",
        t2.mpi_functions
    );
    assert_eq!(t2.pruned_dynamic, 11, "the 11 never-executed functions");
    assert!(t2.loops_relevant > 20);
    assert!(t2.loops_pruned_static > 30);
}

#[test]
fn kernel_dependencies_are_correct() {
    let (app, a) = analysis();
    let idx = |name: &str| a.param_index(name).unwrap();
    let dep_of = |name: &str| {
        let f = app.module.function_by_name(name).unwrap();
        &a.deps[&f]
    };

    // Stencil kernels: size (through numElem), never regions/cost/balance.
    let d = dep_of("IntegrateStressForElems");
    assert!(d.depends_on(idx("size")));
    assert!(!d.depends_on(idx("regions")));
    assert!(!d.depends_on(idx("cost")));
    assert!(!d.depends_on(idx("p")));

    // Region kernels: size + regions + balance (the regElemSize histogram).
    let d = dep_of("CalcMonotonicQRegionForElems");
    assert!(d.depends_on(idx("size")));
    assert!(d.depends_on(idx("regions")));
    assert!(d.depends_on(idx("balance")));

    // The EOS repetition loop: cost.
    let d = dep_of("EvalEOSForElems");
    assert!(d.depends_on(idx("cost")));
    assert!(
        !d.depends_on(idx("size")),
        "EvalEOS's own loop is over reps"
    );
    let d = dep_of("CalcEnergyForElems");
    assert!(d.depends_on(idx("cost")), "cost via the enclosing rep loop");
    assert!(d.depends_on(idx("size")));

    // The p-dependent setup loop (Table 3's p column).
    let d = dep_of("InitMeshDecomposition");
    assert!(d.depends_on(idx("p")));
    assert!(!d.depends_on(idx("size")));

    // Halo exchange: count argument is size² and the cost model brings p.
    let d = dep_of("CommSBN");
    assert!(d.depends_on(idx("p")));
    assert!(d.depends_on(idx("size")));
    assert!(d.has_multiplicative());

    // Accessors are provably constant.
    let d = dep_of("Domain_x");
    assert!(d.is_constant());
}

#[test]
fn iters_multiplies_the_time_stepped_kernels() {
    let (app, a) = analysis();
    let iters = a.param_index("iters").unwrap();
    for kernel in ["IntegrateStressForElems", "CalcKinematicsForElems"] {
        let f = app.module.function_by_name(kernel).unwrap();
        let d = &a.deps[&f];
        assert!(d.depends_on(iters), "{kernel} runs once per timestep");
        // iters always multiplies with size — never appears alone.
        for m in &d.monomials {
            if m.contains(iters) {
                assert!(m.len() >= 2, "{kernel}: iters is never a lone factor");
            }
        }
    }
}

#[test]
fn dynamic_pruning_finds_dead_functions() {
    let (app, a) = analysis();
    for dead in ["VerifyAndWriteFinalOutput", "DumpToFile", "EnergyAudit"] {
        let f = app.module.function_by_name(dead).unwrap();
        assert_eq!(a.kinds[f.index()], FuncKind::ConstantDynamic, "{dead}");
    }
}

#[test]
fn instrumentation_list_is_selective() {
    let (app, a) = analysis();
    let relevant = a.relevant_functions(&app.module);
    // Paper: ~40 important functions instead of hundreds.
    assert!(
        relevant.len() < app.module.functions.len() / 4,
        "{} of {}",
        relevant.len(),
        app.module.functions.len()
    );
    for must in ["IntegrateStressForElems", "CommSBN", "main"] {
        assert!(relevant.contains(&must.to_string()), "{must} missing");
    }
    for must_not in ["Domain_x", "Domain_set_fx", "CalcElemVolume"] {
        assert!(
            !relevant.contains(&must_not.to_string()),
            "{must_not} included"
        );
    }
}

#[test]
fn restrictions_project_onto_model_axes() {
    let (app, a) = analysis();
    let model_params = vec!["p".to_string(), "size".to_string()];
    let r = a.restrictions(&app.module, &model_params);
    // Kernel: size-only (axis 1); never p (axis 0).
    assert!(r["IntegrateStressForElems"].allows_mask(0b10));
    assert!(!r["IntegrateStressForElems"].allows_mask(0b01));
    // Comm: multiplicative p×size allowed.
    assert!(r["CommSBN"].allows_mask(0b11));
    // Accessor: constant.
    assert!(r["Domain_x"].forbids_everything());
    // MPI routines present with their library-database structure.
    assert!(r["MPI_Allreduce"].allows_mask(0b01));
    assert!(r["MPI_Comm_rank"].forbids_everything());
}

#[test]
fn loop_iteration_counts_match_ground_truth() {
    // At size=5, numElem = 125: the element loops must iterate 125 times
    // per invocation; the main loop `iters` times.
    let app = lulesh::build();
    let a = SessionBuilder::new(&app.module, &app.entry)
        .build()
        .taint_run(app.taint_run_params())
        .unwrap();
    let records = a.records.loops_by_function();
    let f = app
        .module
        .function_by_name("UpdateVolumesForElems")
        .unwrap();
    let iters = 3; // taint-run value
    let recs: Vec<_> = records.iter().filter(|((fid, _), _)| *fid == f).collect();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].1.iterations, 125 * iters);
    assert_eq!(recs[0].1.entries, iters);
}
