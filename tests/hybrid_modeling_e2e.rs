//! End-to-end hybrid modeling: measure a program whose ground-truth cost
//! functions are known, then check that the hybrid models recover the right
//! shapes and that the restriction machinery holds under noise.

use perf_taint::{compare_against_truth, model_functions, SessionBuilder};
use pt_extrap::SearchSpace;
use pt_ir::{FunctionBuilder, Module, Type, Value};
use pt_measure::{function_sets, run_sweep, Filter, NoiseModel, SweepPoint};
use pt_mpisim::MachineConfig;

/// quad(n): n² work; lin(n): n work; fixed(): constant; comm(): log p.
fn app() -> Module {
    let mut m = Module::new("e2e");
    let mut b = FunctionBuilder::new("quad", vec![("n".into(), Type::I64)], Type::Void);
    let n2 = b.mul(b.param(0), b.param(0));
    b.for_loop(0i64, n2, 1i64, |b, _| {
        b.call_external("pt_work_flops", vec![Value::int(200)], Type::Void);
    });
    b.ret(None);
    let quad = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("lin", vec![("n".into(), Type::I64)], Type::Void);
    b.for_loop(0i64, b.param(0), 1i64, |b, _| {
        b.call_external("pt_work_flops", vec![Value::int(5000)], Type::Void);
    });
    b.ret(None);
    let lin = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("fixed", vec![], Type::Void);
    b.call_external("pt_work_flops", vec![Value::int(100_000)], Type::Void);
    b.ret(None);
    let fixed = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("comm", vec![], Type::Void);
    b.call_external("MPI_Allreduce", vec![Value::int(64)], Type::Void);
    b.ret(None);
    let comm = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let pslot = b.alloca(1i64);
    b.call_external("MPI_Comm_size", vec![pslot], Type::Void);
    b.call(quad, vec![n], Type::Void);
    b.call(lin, vec![n], Type::Void);
    b.call(fixed, vec![], Type::Void);
    b.call(comm, vec![], Type::Void);
    b.ret(None);
    m.add_function(b.finish());
    m
}

#[test]
fn hybrid_models_recover_planted_shapes() {
    let module = app();
    let session = SessionBuilder::new(&module, "main").build();
    let analysis = session
        .taint_run(vec![("n".into(), 8), ("p".into(), 4)])
        .unwrap();

    let model_params = vec!["p".to_string(), "n".to_string()];
    let probe = Filter::None.probe_vector(&module, 0.0);
    let mut points = Vec::new();
    for &p in &[4i64, 8, 16, 32, 64] {
        for &n in &[16i64, 24, 32, 40, 48] {
            points.push(SweepPoint {
                params: vec![("n".into(), n), ("p".into(), p)],
                machine: MachineConfig::default().with_ranks(p as u32),
            });
        }
    }
    let profiles = run_sweep(&module, analysis.prepared(), "main", &points, &probe, 4);
    let sets = function_sets(&profiles, &model_params, 3, &NoiseModel::NONE, 5);

    let restrictions = analysis.restrictions(&module, &model_params);
    let space = SearchSpace::default();
    let models = model_functions(&sets, Some(&restrictions), &space, 0.1);

    // quad: c·n²; the dominant term exponent must be exactly 2.
    let quad = &models["quad"].fitted.model;
    assert!(quad.uses_param(1), "quad model: {quad}");
    assert!(!quad.uses_param(0));
    let max_term = quad
        .terms
        .iter()
        .max_by(|a, b| {
            let va = a.0 * a.1.eval(&[64.0, 48.0]);
            let vb = b.0 * b.1.eval(&[64.0, 48.0]);
            va.total_cmp(&vb)
        })
        .unwrap();
    assert_eq!(max_term.1.factors.len(), 1);
    assert!(
        (max_term.1.factors[0].exp - 2.0).abs() < 1e-9,
        "quad: {quad}"
    );

    // lin: c·n.
    let lin = &models["lin"].fitted.model;
    assert!(lin.uses_param(1), "lin model: {lin}");
    // fixed: constant.
    assert!(models["fixed"].fitted.model.is_constant());
    // comm: p only (log-family), never n.
    let comm = &models["comm"].fitted.model;
    assert!(!comm.uses_param(1), "comm model: {comm}");

    // MPI_Allreduce's own model: log2(p)-shaped.
    let ar = &models["MPI_Allreduce"].fitted.model;
    assert!(ar.uses_param(0), "allreduce model: {ar}");
    let has_log = ar
        .terms
        .iter()
        .any(|(c, t)| *c != 0.0 && t.factors.iter().any(|f| f.log_exp > 0));
    assert!(has_log, "allreduce should be log-shaped: {ar}");

    // No model may violate the taint structure.
    let cmp = compare_against_truth(&models, &restrictions);
    assert_eq!(
        cmp.false_dependencies.len() + cmp.overfitted_constants.len(),
        0
    );
}

#[test]
fn noise_does_not_leak_into_hybrid_models() {
    let module = app();
    let session = SessionBuilder::new(&module, "main").build();
    let analysis = session
        .taint_run(vec![("n".into(), 8), ("p".into(), 4)])
        .unwrap();
    let model_params = vec!["p".to_string(), "n".to_string()];
    let probe = Filter::None.probe_vector(&module, 0.0);
    let mut points = Vec::new();
    for &p in &[4i64, 8, 16, 32] {
        for &n in &[16i64, 24, 32, 40] {
            points.push(SweepPoint {
                params: vec![("n".into(), n), ("p".into(), p)],
                machine: MachineConfig::default().with_ranks(p as u32),
            });
        }
    }
    let profiles = run_sweep(&module, analysis.prepared(), "main", &points, &probe, 4);
    // Heavy noise: 10% relative + 5µs floor.
    let noise = NoiseModel {
        rel_sigma: 0.10,
        abs_floor: 5e-6,
    };
    let restrictions = analysis.restrictions(&module, &model_params);
    for seed in [1u64, 2, 3] {
        let sets = function_sets(&profiles, &model_params, 5, &noise, seed);
        let models = model_functions(&sets, Some(&restrictions), &SearchSpace::default(), 0.5);
        assert!(
            models["fixed"].fitted.model.is_constant(),
            "seed {seed}: fixed must stay constant under noise"
        );
        let cmp = compare_against_truth(&models, &restrictions);
        assert_eq!(
            cmp.false_dependencies.len() + cmp.overfitted_constants.len(),
            0,
            "seed {seed}"
        );
    }
}
