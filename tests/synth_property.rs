//! Property-based tests: over randomly generated loop-nest programs with
//! known ground truth, the pipeline must recover exactly the dependency
//! structure and the exact iteration counts (Claims 1–2 / Theorem 1 of the
//! paper, checked mechanically).

use perf_taint::SessionBuilder;
use proptest::prelude::*;
use pt_apps::synth::{generate, SynthConfig};
use pt_taint::ParamSet;

fn run_synth(seed: u64, num_params: usize, num_kernels: usize) {
    let values: Vec<i64> = (0..num_params)
        .map(|k| 2 + (k as i64 + seed as i64) % 4)
        .collect();
    let cfg = SynthConfig {
        seed,
        num_params,
        num_kernels,
        max_depth: 3,
        param_values: values.clone(),
    };
    let synth = generate(&cfg);
    let analysis = SessionBuilder::new(&synth.app.module, &synth.app.entry)
        .build()
        .taint_run(synth.app.taint_run_params())
        .expect("analysis");

    for (name, truth_masks) in &synth.truth {
        let f = synth.app.module.function_by_name(name).unwrap();
        let got = &analysis.deps[&f];
        let truth: Vec<ParamSet> = truth_masks.iter().map(|&m| ParamSet(m)).collect();

        // Soundness (Claim 1): every true monomial must be covered by some
        // extracted monomial (the analysis may only over-approximate).
        for t in &truth {
            assert!(
                got.monomials.iter().any(|g| g.is_superset(*t)),
                "seed {seed}: {name} misses monomial {t:?}; got {:?}",
                got.monomials
            );
        }
        // Precision: no extracted monomial may use a parameter absent from
        // the ground truth entirely.
        let truth_params = truth.iter().fold(ParamSet::EMPTY, |a, m| a.union(*m));
        for g in &got.monomials {
            assert!(
                truth_params.is_superset(*g),
                "seed {seed}: {name} invents parameters: {g:?} vs {truth_params:?}"
            );
        }

        // Exact iteration counts (the volume bound of Claim 2): total body
        // iterations across the kernel equal the tree's arithmetic.
        let tree = &synth.trees[name];
        let expected = tree.body_iterations(&values);
        let measured: u64 = analysis
            .records
            .loops_by_function()
            .iter()
            .filter(|((fid, _), _)| *fid == f)
            .map(|(_, rec)| rec.iterations)
            .sum();
        assert_eq!(
            measured, expected,
            "seed {seed}: {name} iteration count mismatch"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_recovers_ground_truth(seed in 0u64..5000) {
        run_synth(seed, 3, 3);
    }

    #[test]
    fn pipeline_recovers_with_more_params(seed in 0u64..2000) {
        run_synth(seed, 5, 2);
    }
}

#[test]
fn pipeline_recovers_many_fixed_seeds() {
    // A deterministic sweep (wider than the proptest sample) for CI.
    for seed in 0..40 {
        run_synth(seed, 4, 4);
    }
}
