//! Concurrency contract of `perf_taint::SessionCache`: N threads racing
//! sessions for the same module observe exactly one static-stage
//! computation (every session holds the same `Arc<StaticArtifacts>`), and
//! sessions for distinct modules get independent artifacts — the per-key
//! slot design means one module's computation never blocks another's.

use perf_taint::SessionCache;
use pt_ir::{FunctionBuilder, Module, Type, Value};
use std::sync::{Arc, Barrier};

/// A module with a parametric kernel (enough structure for the static
/// stage to chew on) under the given module name.
fn app(name: &str) -> Module {
    let mut m = Module::new(name);
    let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
    b.for_loop(0i64, b.param(0), 1i64, |b, _| {
        b.call_external("pt_work_flops", vec![Value::int(7)], Type::Void);
    });
    b.ret(None);
    let kernel = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let n = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    b.call(kernel, vec![n], Type::Void);
    b.ret(None);
    m.add_function(b.finish());
    m
}

#[test]
fn racing_threads_share_one_static_stage_per_module() {
    let cache = SessionCache::new();
    let module = app("contended");
    const THREADS: usize = 16;
    let barrier = Barrier::new(THREADS);

    let artifacts: Vec<Arc<perf_taint::StaticArtifacts>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = &cache;
                let module = &module;
                let barrier = &barrier;
                scope.spawn(move || {
                    // Line every thread up so the first-computation race is
                    // as hot as we can make it.
                    barrier.wait();
                    cache.get_or_compute(module, "main").static_analysis()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // One computation, shared by all: every Arc is the same allocation.
    for a in &artifacts[1..] {
        assert!(
            Arc::ptr_eq(&artifacts[0], a),
            "a racing session recomputed the static stage"
        );
    }
    assert_eq!(cache.len(), 1, "one module name, one cache slot");
}

#[test]
fn distinct_modules_do_not_share_or_block() {
    let cache = SessionCache::new();
    let modules: Vec<Module> = (0..4).map(|i| app(&format!("app_{i}"))).collect();
    const PER_MODULE: usize = 4;
    let barrier = Barrier::new(modules.len() * PER_MODULE);

    let artifacts: Vec<(usize, Arc<perf_taint::StaticArtifacts>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..modules.len() * PER_MODULE)
            .map(|t| {
                let cache = &cache;
                let modules = &modules;
                let barrier = &barrier;
                scope.spawn(move || {
                    let which = t % modules.len();
                    barrier.wait();
                    (
                        which,
                        cache
                            .get_or_compute(&modules[which], "main")
                            .static_analysis(),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Within a module: one shared computation. Across modules: distinct
    // allocations (no false sharing through the cache).
    for (i, a) in &artifacts {
        for (j, b) in &artifacts {
            if i == j {
                assert!(Arc::ptr_eq(a, b), "module {i} recomputed its static stage");
            } else {
                assert!(!Arc::ptr_eq(a, b), "modules {i} and {j} share artifacts");
            }
        }
    }
    assert_eq!(cache.len(), modules.len());

    // And a session built *after* the race still joins the shared stage.
    let late = cache.get_or_compute(&modules[0], "main").static_analysis();
    let first = &artifacts.iter().find(|(i, _)| *i == 0).unwrap().1;
    assert!(Arc::ptr_eq(first, &late));
}
