//! Property-based round-trip tests of the IR text format: printing a
//! generated module and parsing it back must preserve structure exactly
//! (print∘parse∘print is a fixed point), and the parsed module must pass
//! both the structural verifier and SSA dominance checking.

use proptest::prelude::*;
use pt_apps::synth::{generate, SynthConfig};
use pt_ir::printer::print_module;

/// Parsing renumbers instructions into textual (block) order, so the first
/// `print∘parse` normalizes the module; from then on the text must be a
/// fixed point, and every intermediate module must verify (structurally and
/// SSA-wise).
fn round_trip(seed: u64) {
    let cfg = SynthConfig {
        seed,
        num_params: 3,
        num_kernels: 3,
        max_depth: 3,
        param_values: vec![2, 3, 4],
    };
    let synth = generate(&cfg);
    let text = print_module(&synth.app.module);
    let parsed = pt_ir::parser::parse_module(&text)
        .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}\n{text}"));
    pt_ir::verify_module(&parsed)
        .unwrap_or_else(|e| panic!("seed {seed}: verifier rejected round-trip: {e:?}"));
    for f in &parsed.functions {
        pt_analysis::ssa_verify::verify_ssa(f)
            .unwrap_or_else(|e| panic!("seed {seed}: SSA violation after round-trip: {e:?}"));
    }
    assert_eq!(
        parsed.functions.len(),
        synth.app.module.functions.len(),
        "seed {seed}"
    );
    // Normalized text is a fixed point.
    let normalized = print_module(&parsed);
    let reparsed = pt_ir::parser::parse_module(&normalized)
        .unwrap_or_else(|e| panic!("seed {seed}: re-parse failed: {e}"));
    pt_ir::verify_module(&reparsed).unwrap();
    assert_eq!(
        print_module(&reparsed),
        normalized,
        "seed {seed}: normalized text not a fixed point"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn print_parse_fixed_point(seed in 0u64..10_000) {
        round_trip(seed);
    }
}

#[test]
fn lulesh_module_round_trips() {
    let app = pt_apps::lulesh::build();
    let text = print_module(&app.module);
    let parsed = pt_ir::parser::parse_module(&text).expect("parse mini-lulesh");
    assert_eq!(parsed.functions.len(), app.module.functions.len());
    pt_ir::verify_module(&parsed).expect("round-tripped mini-lulesh verifies");
    let normalized = print_module(&parsed);
    let reparsed = pt_ir::parser::parse_module(&normalized).unwrap();
    assert_eq!(print_module(&reparsed), normalized);
}

#[test]
fn milc_module_round_trips() {
    let app = pt_apps::milc::build();
    let text = print_module(&app.module);
    let parsed = pt_ir::parser::parse_module(&text).expect("parse mini-milc");
    assert_eq!(parsed.functions.len(), app.module.functions.len());
    pt_ir::verify_module(&parsed).expect("round-tripped mini-milc verifies");
    let normalized = print_module(&parsed);
    let reparsed = pt_ir::parser::parse_module(&normalized).unwrap();
    assert_eq!(print_module(&reparsed), normalized);
}
