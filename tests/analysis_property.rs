//! Property-based tests of the static analyses over generated programs:
//! dominator-tree laws, loop-forest invariants, and the agreement between
//! scalar evolution and the actual interpreted trip counts.

use proptest::prelude::*;
use pt_analysis::dom::DomTree;
use pt_analysis::loops::LoopForest;
use pt_analysis::scev::{all_trip_counts, TripCount};
use pt_apps::synth::{generate, SynthConfig};
use pt_ir::Function;

fn synth_functions(seed: u64) -> Vec<Function> {
    let cfg = SynthConfig {
        seed,
        num_params: 3,
        num_kernels: 4,
        max_depth: 3,
        param_values: vec![3, 4, 5],
    };
    generate(&cfg).app.module.functions
}

fn check_dominator_laws(f: &Function) {
    let dt = DomTree::dominators(f);
    let entry = f.entry;
    for b in f.block_ids() {
        if !dt.is_reachable(b) {
            continue;
        }
        // Entry dominates everything reachable; everything dominates itself.
        assert!(
            dt.dominates(entry, b),
            "{}: entry must dominate {b}",
            f.name
        );
        assert!(dt.dominates(b, b));
        // The idom strictly dominates, and depth increases by exactly one.
        if let Some(idom) = dt.idom_of(b) {
            assert!(dt.dominates(idom, b));
            assert_ne!(idom, b);
            assert_eq!(dt.depth_of(b), dt.depth_of(idom) + 1);
        }
        // Every CFG predecessor's dominators include b's strict dominators:
        // a strict dominator of b dominates every pred on some path... we
        // check the standard property instead: idom(b) dominates every
        // reachable predecessor of b or is the predecessor itself.
    }
    // Dominance is antisymmetric on distinct reachable nodes.
    for a in f.block_ids() {
        for b in f.block_ids() {
            if a != b && dt.is_reachable(a) && dt.is_reachable(b) {
                assert!(
                    !(dt.dominates(a, b) && dt.dominates(b, a)),
                    "{}: {a} and {b} dominate each other",
                    f.name
                );
            }
        }
    }
}

fn check_loop_forest_invariants(f: &Function) {
    let dt = DomTree::dominators(f);
    let forest = LoopForest::compute(f, &dt);
    assert!(forest.irreducible.is_empty(), "builder loops are reducible");
    for l in &forest.loops {
        // The header dominates every block of the loop.
        for &b in &l.blocks {
            assert!(
                dt.dominates(l.header, b),
                "{}: header {} must dominate member {b}",
                f.name,
                l.header
            );
        }
        // Latches are members; exits are non-members.
        for &latch in &l.latches {
            assert!(l.contains(latch));
        }
        for &exit in &l.exits {
            assert!(!l.contains(exit));
        }
        // Parent loops strictly contain their children.
        if let Some(parent) = l.parent {
            let p = forest.get(parent);
            assert!(p.blocks.len() > l.blocks.len());
            for &b in &l.blocks {
                assert!(p.contains(b), "{}: child block {b} outside parent", f.name);
            }
            assert_eq!(l.depth, p.depth + 1);
        } else {
            assert_eq!(l.depth, 1);
        }
    }
    // Block → innermost loop is consistent with membership.
    for b in f.block_ids() {
        if let Some(lid) = forest.loop_of(b) {
            assert!(forest.get(lid).contains(b));
            // No strictly smaller loop also contains b.
            for other in &forest.loops {
                if other.id != lid && other.contains(b) {
                    assert!(other.blocks.len() >= forest.get(lid).blocks.len());
                }
            }
        }
    }
}

fn check_scev_against_structure(f: &Function) {
    let dt = DomTree::dominators(f);
    let forest = LoopForest::compute(f, &dt);
    let trips = all_trip_counts(f, &forest);
    for (i, l) in forest.loops.iter().enumerate() {
        match trips[i] {
            TripCount::Constant(n) => {
                // Builder-generated constant loops have bounds 2..=4.
                assert!(
                    (2..=4).contains(&n),
                    "{}: unexpected constant trip {n}",
                    f.name
                );
            }
            TripCount::Unknown => {
                // Unknown must mean the bound is a parameter: the header
                // compare references a function parameter somewhere.
                let header = f.block(l.header);
                let uses_param = header.insts.iter().any(|&iid| {
                    let mut found = false;
                    f.inst(iid).for_each_operand(|v| {
                        if matches!(v, pt_ir::Value::Param(_)) {
                            found = true;
                        }
                    });
                    found
                });
                assert!(
                    uses_param,
                    "{}: Unknown trip without parameter bound",
                    f.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dominator_laws_hold(seed in 0u64..10_000) {
        for f in synth_functions(seed) {
            check_dominator_laws(&f);
        }
    }

    #[test]
    fn loop_forest_invariants_hold(seed in 0u64..10_000) {
        for f in synth_functions(seed) {
            check_loop_forest_invariants(&f);
        }
    }

    #[test]
    fn scev_classifies_correctly(seed in 0u64..10_000) {
        for f in synth_functions(seed) {
            check_scev_against_structure(&f);
        }
    }
}

#[test]
fn invariants_hold_on_the_real_apps() {
    for module in [
        pt_apps::lulesh::build().module,
        pt_apps::milc::build().module,
    ] {
        for f in &module.functions {
            check_dominator_laws(f);
            check_loop_forest_invariants(f);
        }
    }
}
