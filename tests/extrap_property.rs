//! Property-based tests of the PMNF model search: for data generated from a
//! random model *inside the search space*, the search must recover a model
//! that predicts (interpolation and mild extrapolation) within tight error.

use proptest::prelude::*;
use pt_extrap::{fit_multi_param, fit_single_param, MeasurementSet, Restriction, SearchSpace};

/// Exponents restricted to a well-separated subset so recovery is
/// well-conditioned on 5-point sweeps (neighboring exponents like 9/4 vs
/// 10/4 are legitimately indistinguishable there — the paper's search has
/// the same property).
const EXPS: [f64; 4] = [0.5, 1.0, 2.0, 3.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_param_recovery(
        exp_idx in 0usize..4,
        log_exp in 0u32..2,
        coef in 1e-6f64..1e-2,
        constant in 0.0f64..1.0,
    ) {
        let exp = EXPS[exp_idx];
        let xs: Vec<f64> = vec![4.0, 8.0, 16.0, 32.0, 64.0];
        let truth = |x: f64| constant + coef * x.powf(exp) * x.log2().powi(log_exp as i32);
        let ys: Vec<f64> = xs.iter().map(|&x| truth(x)).collect();
        let fit = fit_single_param(&xs, &ys, 0, &SearchSpace::default());
        // Prediction accuracy on the sampled domain and one octave beyond.
        for &x in &[4.0, 6.0, 12.0, 24.0, 48.0, 64.0, 128.0] {
            let t = truth(x);
            let p = fit.model.eval(&[x]);
            let rel = (p - t).abs() / t.abs().max(1e-12);
            prop_assert!(
                rel < 0.35,
                "x={x}: truth {t:.3e} pred {p:.3e} (model {})",
                fit.model
            );
        }
    }

    #[test]
    fn constant_data_never_gains_terms(value in 1e-9f64..1e3) {
        let xs: Vec<f64> = vec![4.0, 8.0, 16.0, 32.0, 64.0];
        let ys: Vec<f64> = xs.iter().map(|_| value).collect();
        let fit = fit_single_param(&xs, &ys, 0, &SearchSpace::default());
        prop_assert!(fit.model.is_constant(), "model: {}", fit.model);
        prop_assert!((fit.model.constant - value).abs() / value < 1e-6);
    }

    #[test]
    fn restriction_is_always_respected(
        seedx in 0u64..1000,
        allow_p in proptest::bool::ANY,
        allow_s in proptest::bool::ANY,
        allow_cross in proptest::bool::ANY,
    ) {
        // Arbitrary (deterministic per seed) data over a (p, size) grid.
        let mut s = MeasurementSet::new(vec!["p".into(), "size".into()]);
        let mut state = seedx.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        for &p in &[4.0, 8.0, 16.0, 32.0] {
            for &size in &[8.0, 12.0, 16.0, 20.0] {
                s.push(vec![p, size], vec![1.0 + next() * p + next() * size]);
            }
        }
        let mut monomials = Vec::new();
        if allow_p { monomials.push(0b01); }
        if allow_s { monomials.push(0b10); }
        if allow_cross { monomials.push(0b11); }
        let r = Restriction::from_monomials(monomials);
        let fit = fit_multi_param(&s, &SearchSpace::small(), Some(&r));
        let used = fit.model.param_mask();
        prop_assert!(
            used & !r.allowed_params() == 0,
            "model {} uses forbidden params (mask {used:b})", fit.model
        );
        if !(allow_cross || (allow_p && allow_s)) {
            prop_assert!(!fit.model.has_multiplicative_term());
        }
        for (c, t) in &fit.model.terms {
            if *c != 0.0 {
                prop_assert!(r.allows_mask(t.param_mask()), "term violates restriction");
            }
        }
    }
}

#[test]
fn two_parameter_separable_recovery() {
    // f(p, s) = a·log2(p) + b·s² — additive ground truth over the grid.
    let mut s = MeasurementSet::new(vec!["p".into(), "size".into()]);
    for &p in &[4.0f64, 8.0, 16.0, 32.0, 64.0] {
        for &size in &[8.0, 12.0, 16.0, 20.0, 24.0] {
            s.push(vec![p, size], vec![2e-3 * p.log2() + 5e-5 * size * size]);
        }
    }
    let fit = fit_multi_param(&s, &SearchSpace::default(), None);
    assert!(fit.quality.smape < 2.0, "smape {}", fit.quality.smape);
    assert!(fit.model.uses_param(0) && fit.model.uses_param(1));
    // Prediction at an unseen interior point.
    let truth = 2e-3 * 24.0f64.log2() + 5e-5 * 14.0 * 14.0;
    let pred = fit.model.eval(&[24.0, 14.0]);
    assert!(
        (pred - truth).abs() / truth < 0.15,
        "pred {pred} truth {truth}"
    );
}
