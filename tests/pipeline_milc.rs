//! End-to-end pipeline assertions on mini-MILC: the parameter-pruning
//! ground truth (numerical parameters irrelevant), the local-volume
//! coupling with p, and the §C2 gather detection.

use perf_taint::validate::detect_segmentation;
use perf_taint::SessionBuilder;
use pt_apps::milc;

fn analysis() -> (pt_apps::AppSpec, perf_taint::Analysis) {
    let app = milc::build();
    let a = SessionBuilder::new(&app.module, &app.entry)
        .build()
        .taint_run(app.taint_run_params())
        .unwrap();
    (app, a)
}

#[test]
fn census_matches_paper_shape() {
    let (_, a) = analysis();
    let t2 = &a.table2;
    // Paper: 87.7% constant, 364/188 pruned, 56/13/8 kernels/comm/MPI.
    assert!(
        t2.constant_fraction() > 0.85,
        "constant fraction {:.3}",
        t2.constant_fraction()
    );
    assert_eq!(t2.pruned_dynamic, 188, "the unused suite code");
    assert!((40..=60).contains(&t2.kernels), "kernels {}", t2.kernels);
    assert!(
        (8..=14).contains(&t2.comm_routines),
        "comm {}",
        t2.comm_routines
    );
}

#[test]
fn numerical_parameters_are_performance_irrelevant() {
    // The §A1 headline for MILC: mass, beta, u0 flow through data only.
    let (_, a) = analysis();
    for numeric in ["mass", "beta", "u0"] {
        let idx = a.param_index(numeric).unwrap();
        let affected = a.deps.values().filter(|d| d.depends_on(idx)).count();
        assert_eq!(affected, 0, "{numeric} must affect no function");
    }
}

#[test]
fn site_loops_couple_sizes_with_p() {
    // Local volume = nx·ny·nz·nt / p: site loops depend on all five.
    let (app, a) = analysis();
    let f = app.module.function_by_name("dslash_fn_field").unwrap();
    let d = &a.deps[&f];
    for param in ["nx", "ny", "nz", "nt", "p"] {
        assert!(
            d.depends_on(a.param_index(param).unwrap()),
            "dslash must depend on {param}"
        );
    }
    assert!(d.has_multiplicative(), "volume/p is one monomial");
}

#[test]
fn cg_depends_on_niter_and_trajectory_structure() {
    let (app, a) = analysis();
    let f = app.module.function_by_name("ks_congrad").unwrap();
    let d = &a.deps[&f];
    assert!(d.depends_on(a.param_index("niter").unwrap()));
    // Called inside steps/trajecs/warms loops → control context carries them.
    assert!(d.depends_on(a.param_index("steps").unwrap()));
}

#[test]
fn gather_branch_flips_across_p_domain() {
    let app = milc::build();
    // One session, four coverage runs: the batch shares the static stage.
    let session = SessionBuilder::new(&app.module, &app.entry).build();
    let param_sets: Vec<Vec<(String, i64)>> = [4i64, 8, 16, 32]
        .iter()
        .map(|&p| app.sweep_params(&[("nx", 8), ("p", p)]))
        .collect();
    let observations: Vec<_> = session
        .analyze_batch(&param_sets)
        .into_iter()
        .map(|r| r.unwrap().branch_observations(&app.module))
        .collect();
    let warnings = detect_segmentation(&observations);
    let gather: Vec<_> = warnings
        .iter()
        .filter(|w| w.function == "do_gather")
        .collect();
    assert!(!gather.is_empty(), "the algorithm switch must be flagged");
    // The boundary sits between p=8 (index 1) and p=16 (index 2).
    assert!(gather[0].boundaries.contains(&(1, 2)));
    assert!(gather[0].params.contains(&"p".to_string()));
}

#[test]
fn do_gather_costs_switch_regimes() {
    // Quantitative check of the two regimes: the gather uses the linear
    // path at p ≤ 8 and the collective beyond.
    use pt_measure::{run_point, Filter, SweepPoint};
    use pt_taint::PreparedModule;
    let app = milc::build();
    let prepared = PreparedModule::compute(&app.module);
    let probe = Filter::None.probe_vector(&app.module, 0.0);
    let mut times = Vec::new();
    for p in [4i64, 8, 16, 32] {
        let point = SweepPoint {
            params: app.sweep_params(&[("nx", 32), ("p", p)]),
            machine: pt_mpisim::MachineConfig::default().with_ranks(p as u32),
        };
        let prof = run_point(&app.module, &prepared, &app.entry, &point, &probe).unwrap();
        times.push(prof.functions["do_gather"].inclusive);
    }
    // Small communicators pay 16 point-to-point messages; the collective
    // path is cheaper right after the switch.
    assert!(
        times[1] > times[2],
        "linear@p=8 ({}) vs tree@p=16 ({})",
        times[1],
        times[2]
    );
}

#[test]
fn never_visited_paths_expose_algorithm_selection() {
    // §4.4: at a fixed p only one side of do_gather's algorithm-selection
    // branch executes — the other side is a never-visited path. Two runs
    // on one session; the second reuses the static stage.
    let app = milc::build();
    let session = SessionBuilder::new(&app.module, &app.entry).build();
    let a = session
        .taint_run(app.sweep_params(&[("nx", 8), ("p", 4)])) // small communicator
        .unwrap();
    let dead = a.never_visited_paths(&app.module);
    assert!(
        dead.iter().any(|(f, _)| f == "do_gather"),
        "the collective path must be unvisited at p=4: {dead:?}"
    );
    // At p=32 the linear path is dead instead — still flagged.
    let a32 = session
        .taint_run(app.sweep_params(&[("nx", 8), ("p", 32)]))
        .unwrap();
    let dead32 = a32.never_visited_paths(&app.module);
    assert!(dead32.iter().any(|(f, _)| f == "do_gather"));
    // The two analyses really shared one static stage.
    assert!(std::sync::Arc::ptr_eq(&a.statics, &a32.statics));
}
