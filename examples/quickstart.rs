//! Quickstart: annotate a program's parameters, run the taint analysis
//! through a [`perf_taint::Session`], and get clean performance models.
//!
//! The program below is the paper's running example shape: a kernel looping
//! over `size`, a communication phase depending on the implicit `p`, and a
//! numerical parameter `eps` that never influences control flow. We write
//! it in the textual IR, parse it, build a session, analyze it, measure a
//! small sweep, and fit models with the taint prior.
//!
//! The walkthrough is staged exactly like the paper's Fig. 2:
//!
//! 1. `parse_module` — text → IR (parse failures are `PtError::Parse`).
//! 2. `SessionBuilder::new(&module, "main").build()` — a session memoizes
//!    the static stage (§5.1) so later taint runs share it.
//! 3. `session.taint_run(params)` — one representative dynamic run (§5.2)
//!    plus dependency extraction (§4.2–4.3); errors are `PtError`, never a
//!    panic or a substrate type.
//! 4. Experiment design, measurement, and hybrid modeling on the artifacts.
//!
//! Migrating from the old one-shot API is mechanical: `analyze(&m, entry,
//! params, &cfg)` ≡ `SessionBuilder::new(&m, entry).config(cfg).build()
//! .taint_run(params)` — and the session form lets you call `taint_run`
//! (or `analyze_batch`) again without re-paying static analysis.
//!
//! Run with: `cargo run --release --example quickstart`

use perf_taint::report::render_models;
use perf_taint::{design_experiments, model_functions, parse_module, PtError, SessionBuilder};
use pt_extrap::SearchSpace;
use pt_measure::{function_sets, run_sweep, Filter, NoiseModel, SweepPoint};
use pt_mpisim::MachineConfig;

const PROGRAM: &str = r#"
; module quickstart
func @kernel(%n: i64) -> void {
bb0:
  br bb1
bb1:
  %0 = phi i64 [bb0 -> 0, bb2 -> %2]
  %1 = cmp lt %0, %n
  cond_br %1, bb2, bb3
bb2:
  call void @pt_work_flops(500)
  %2 = add %0, 1
  br bb1
bb3:
  ret
}

func @exchange(%n: i64) -> void {
bb0:
  call void @MPI_Allreduce(%n)
  ret
}

func @main() -> void {
bb0:
  %0 = call i64 @pt_param_i64(0)      ; size
  %1 = call i64 @pt_param_i64(1)      ; eps (numerical; no control flow)
  %2 = alloca 1
  call void @MPI_Comm_size(%2)
  %3 = mul %0, %0
  call void @kernel(%3)
  call void @exchange(%0)
  ret
}
"#;

fn main() -> Result<(), PtError> {
    // 1. Parse, then build a session: the static stage (§5.1) will be
    //    computed once and shared by every run this session performs.
    let module = parse_module(PROGRAM)?;
    let session = SessionBuilder::new(&module, "main").build();

    // 2. One representative taint run (stages 2–3 of Fig. 2).
    let analysis =
        session.taint_run(vec![("size".into(), 8), ("eps".into(), 3), ("p".into(), 4)])?;

    println!("== white-box analysis ==");
    for f in module.function_ids() {
        println!(
            "  {:<10} {:?}  deps: {}",
            module.function(f).name,
            analysis.kinds[f.index()],
            analysis.deps[&f].render(&analysis.param_names)
        );
    }

    // 3. Experiment design over (p, size).
    let model_params = vec!["p".to_string(), "size".to_string()];
    let design = design_experiments(&analysis.global_deps(&model_params), &model_params, &[4, 4]);
    println!(
        "\n== experiment design: {} experiments instead of {} ({:.0}% saved) ==",
        design.reduced,
        design.full_grid,
        design.savings_percent()
    );

    // 4. Measure a sweep (taint-selective instrumentation) and model. The
    //    session already computed the prepared facts — no second
    //    `PreparedModule::compute`.
    let filter = Filter::TaintBased {
        relevant: analysis.relevant_functions(&module).into_iter().collect(),
    };
    let probe = filter.probe_vector(&module, 1e-6);
    let mut points = Vec::new();
    for &p in &[4i64, 8, 16, 32] {
        for &size in &[8i64, 16, 24, 32] {
            points.push(SweepPoint {
                params: vec![("size".into(), size), ("eps".into(), 3), ("p".into(), p)],
                machine: MachineConfig::default().with_ranks(p as u32),
            });
        }
    }
    let profiles = run_sweep(&module, analysis.prepared(), "main", &points, &probe, 4);
    let sets = function_sets(&profiles, &model_params, 5, &NoiseModel::CLUSTER, 7);

    let restrictions = analysis.restrictions(&module, &model_params);
    let hybrid = model_functions(&sets, Some(&restrictions), &SearchSpace::default(), 0.1);
    println!("\n== hybrid models (search space restricted by taint) ==");
    println!("{}", render_models(&hybrid, &model_params, 6));
    println!("kernel runs size² iterations -> expect a size^2 model;");
    println!("exchange is log2(p); eps never appears anywhere.");
    Ok(())
}
