//! Analyze mini-LULESH: censuses, dependency structures of the §6 kernels,
//! the iters insight, and the instrumentation list.
//!
//! Run with: `cargo run --release --example lulesh_analysis`

use perf_taint::report::{render_design, render_table2, render_table3};
use perf_taint::{design_experiments, PtError, SessionBuilder};

fn main() -> Result<(), PtError> {
    let app = pt_apps::lulesh::build();
    let session = SessionBuilder::new(&app.module, &app.entry).build();
    // The paper's representative configuration: size=5 on 8 ranks.
    let analysis = session.taint_run(app.taint_run_params())?;

    println!("{}", render_table2(&app.name, &analysis.table2));
    println!();
    println!(
        "{}",
        render_table3(&app.name, &analysis.table3(&app.module, ("p", "size")))
    );

    println!("\nDependency structures of the kernels discussed in §6:");
    for name in pt_apps::lulesh::known_kernels() {
        let f = app.module.function_by_name(name).unwrap();
        println!(
            "  {:<36} {}",
            name,
            analysis.deps[&f].render(&analysis.param_names)
        );
    }

    let model_params = vec!["p".to_string(), "size".to_string()];
    let design = design_experiments(&analysis.global_deps(&model_params), &model_params, &[5, 5]);
    println!("\n{}", render_design(&design));

    let relevant = analysis.relevant_functions(&app.module);
    println!(
        "Selective instrumentation: {} of {} functions ({}%)",
        relevant.len(),
        app.module.functions.len(),
        100 * relevant.len() / app.module.functions.len()
    );
    println!(
        "Constant-function fraction: {:.1}% (paper: 86.2%)",
        100.0 * analysis.table2.constant_fraction()
    );
    Ok(())
}
