//! Detect hardware contention (§C1): sweep ranks-per-node on a machine
//! with memory-bandwidth saturation and let the white-box pipeline flag
//! functions that slow down although their compute volume is provably
//! parameter-independent.
//!
//! Run with: `cargo run --release --example contention_detection`

use perf_taint::report::render_contention;
use perf_taint::validate::detect_contention;
use perf_taint::SessionBuilder;
use pt_extrap::{MeasurementSet, SearchSpace};
use pt_measure::{run_sweep, Filter, SweepPoint};
use pt_mpisim::{ContentionModel, MachineConfig};
use std::collections::BTreeMap;

fn main() {
    let app = pt_apps::lulesh::build();
    // No taint run needed here — only the memoized static stage.
    let session = SessionBuilder::new(&app.module, &app.entry).build();
    let statics = session.static_analysis();
    let prepared = &statics.prepared;

    // Fixed program configuration; only the node layout varies.
    let rpn = [2u32, 4, 8, 12, 16, 18];
    let points: Vec<SweepPoint> = rpn
        .iter()
        .map(|&r| SweepPoint {
            params: app.sweep_params(&[("size", 14), ("p", 64), ("iters", 2)]),
            machine: MachineConfig::default()
                .with_ranks(64)
                .with_ranks_per_node(r)
                .with_contention(ContentionModel::CALIBRATED),
        })
        .collect();
    let probe = Filter::None.probe_vector(&app.module, 0.0);
    let profiles = run_sweep(&app.module, prepared, &app.entry, &points, &probe, 4);

    println!("wall time vs ranks per node (p=64, size fixed):");
    for (i, prof) in profiles.iter().enumerate() {
        println!(
            "  r={:<3} {:.4}s  (×{:.2})",
            rpn[i],
            prof.wall,
            prof.wall / profiles[0].wall
        );
    }

    // Per-function sets over the r axis; every function is taint-proven
    // independent of the machine layout.
    let mut sets = BTreeMap::new();
    for name in profiles[0].functions.keys() {
        let mut set = MeasurementSet::new(vec!["r".to_string()]);
        for (i, prof) in profiles.iter().enumerate() {
            let t = prof.functions.get(name).map(|f| f.exclusive).unwrap_or(0.0);
            set.push(vec![rpn[i] as f64], vec![t]);
        }
        sets.insert(name.clone(), set);
    }
    let findings = detect_contention(&sets, &|_| true, &SearchSpace::default(), 0.1, 1.05);
    println!();
    println!(
        "{}",
        render_contention(&findings[..findings.len().min(8)], "r")
    );
    println!("Memory-bound kernels pick up log2(r)-family models — the §C1 signature");
    println!("of memory-bandwidth saturation, invisible to black-box modeling.");
}
