//! Noise resilience (§B1) on a controlled example: a program with one true
//! `size³` kernel and a dozen constant helpers, measured under realistic
//! noise. Black-box Extra-P models the noise on the short functions; the
//! hybrid modeler provably cannot.
//!
//! Run with: `cargo run --release --example noise_resilience`

use perf_taint::report::render_models;
use perf_taint::{compare_against_truth, model_functions, PtError, SessionBuilder};
use pt_extrap::SearchSpace;
use pt_ir::{FunctionBuilder, Module, Type, Value};
use pt_measure::{function_sets, run_sweep, Filter, NoiseModel, SweepPoint};
use pt_mpisim::MachineConfig;

fn build_app() -> Module {
    let mut m = Module::new("noise-demo");
    // Twelve tiny constant helpers (the noise victims).
    let mut helper_ids = Vec::new();
    for k in 0..12 {
        let mut b = FunctionBuilder::new(format!("helper_{k}"), vec![], Type::Void);
        b.call_external("pt_work_flops", vec![Value::int(50)], Type::Void);
        b.ret(None);
        helper_ids.push(m.add_function(b.finish()));
    }
    // One real kernel: size³ work.
    let mut b = FunctionBuilder::new("kernel", vec![("n".into(), Type::I64)], Type::Void);
    let n2 = b.mul(b.param(0), b.param(0));
    let n3 = b.mul(n2, b.param(0));
    b.for_loop(0i64, n3, 1i64, |b, _| {
        b.call_external("pt_work_flops", vec![Value::int(40)], Type::Void);
    });
    b.ret(None);
    let kernel = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("main", vec![], Type::Void);
    let size = b.call_external("pt_param_i64", vec![Value::int(0)], Type::I64);
    let pslot = b.alloca(1i64);
    b.call_external("MPI_Comm_size", vec![pslot], Type::Void);
    for h in helper_ids {
        b.call(h, vec![], Type::Void);
    }
    b.call(kernel, vec![size], Type::Void);
    b.call_external("MPI_Allreduce", vec![Value::int(1)], Type::Void);
    b.ret(None);
    m.add_function(b.finish());
    m
}

fn main() -> Result<(), PtError> {
    let module = build_app();
    let session = SessionBuilder::new(&module, "main").build();
    let analysis = session.taint_run(vec![("size".into(), 4), ("p".into(), 4)])?;

    let model_params = vec!["p".to_string(), "size".to_string()];
    let probe = Filter::Full.probe_vector(&module, 1e-6);
    let mut points = Vec::new();
    for &p in &[4i64, 8, 16, 32, 64] {
        for &size in &[8i64, 10, 12, 14, 16] {
            points.push(SweepPoint {
                params: vec![("size".into(), size), ("p".into(), p)],
                machine: MachineConfig::default().with_ranks(p as u32),
            });
        }
    }
    let profiles = run_sweep(&module, analysis.prepared(), "main", &points, &probe, 4);
    let sets = function_sets(&profiles, &model_params, 5, &NoiseModel::CLUSTER, 99);

    let space = SearchSpace::default();
    let blackbox = model_functions(&sets, None, &space, 0.1);
    let restrictions = analysis.restrictions(&module, &model_params);
    let hybrid = model_functions(&sets, Some(&restrictions), &space, 0.1);

    println!("black-box models (note the parametric fits on constant helpers):");
    println!("{}", render_models(&blackbox, &model_params, 8));
    println!("hybrid models (taint forces helpers constant):");
    println!("{}", render_models(&hybrid, &model_params, 8));

    let cmp = compare_against_truth(&blackbox, &restrictions);
    println!(
        "black-box false models: {}/{} ({:.0}% corrected by the taint prior)",
        cmp.false_dependencies.len() + cmp.overfitted_constants.len(),
        cmp.total,
        100.0 * cmp.corrected_fraction()
    );
    let clean = compare_against_truth(&hybrid, &restrictions);
    assert_eq!(
        clean.false_dependencies.len() + clean.overfitted_constants.len(),
        0,
        "hybrid models can never violate the taint structure"
    );
    println!("hybrid false models: 0 (by construction)");
    Ok(())
}
