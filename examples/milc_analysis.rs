//! Analyze mini-MILC: the parameter-pruning result (numerical parameters
//! provably performance-irrelevant), the implicit `p` in nearly every site
//! loop, and the §C2 gather warning.
//!
//! Run with: `cargo run --release --example milc_analysis`

use perf_taint::report::{render_segmentation, render_table2};
use perf_taint::validate::detect_segmentation;
use perf_taint::{analyze, PipelineConfig};

fn main() {
    let app = pt_apps::milc::build();
    let cfg = PipelineConfig::with_mpi_defaults();
    let analysis = analyze(&app.module, &app.entry, app.taint_run_params(), &cfg)
        .expect("taint analysis (the paper: size 128 on 32 ranks)");

    println!("{}", render_table2(&app.name, &analysis.table2));

    // §A1: which marked parameters actually matter? The numerical inputs
    // mass, beta, u0 must not appear in any dependency structure — the
    // paper's findings are "identical with the ground truth established by
    // experts in a laborious manual process".
    println!("\nParameter relevance (functions affected):");
    for (idx, name) in analysis.param_names.iter().enumerate() {
        let affected = analysis
            .deps
            .values()
            .filter(|d| d.depends_on(idx))
            .count();
        let verdict = if affected == 0 { "prune (irrelevant)" } else { "keep" };
        println!("  {name:<10} {affected:>4} functions → {verdict}");
    }

    println!("\nDependency structures of the §6 kernels:");
    for name in pt_apps::milc::known_kernels() {
        let f = app.module.function_by_name(name).unwrap();
        println!(
            "  {:<24} {}",
            name,
            analysis.deps[&f].render(&analysis.param_names)
        );
    }

    // §C2: coverage across the p domain reveals the gather's algorithm
    // switch.
    let mut observations = Vec::new();
    let mut names = Vec::new();
    for p in [4i64, 8, 16, 32] {
        let a = analyze(
            &app.module,
            &app.entry,
            app.sweep_params(&[("nx", 16), ("p", p)]),
            &cfg,
        )
        .expect("coverage run");
        observations.push(a.branch_observations(&app.module));
        names.push(format!("p={p}"));
    }
    println!();
    println!(
        "{}",
        render_segmentation(&detect_segmentation(&observations), &names)
    );
}
