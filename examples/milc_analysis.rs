//! Analyze mini-MILC: the parameter-pruning result (numerical parameters
//! provably performance-irrelevant), the implicit `p` in nearly every site
//! loop, and the §C2 gather warning.
//!
//! Run with: `cargo run --release --example milc_analysis`

use perf_taint::report::{render_segmentation, render_table2};
use perf_taint::validate::detect_segmentation;
use perf_taint::{PtError, SessionBuilder};

fn main() -> Result<(), PtError> {
    let app = pt_apps::milc::build();
    let session = SessionBuilder::new(&app.module, &app.entry).build();
    // The paper's representative configuration: size 128 on 32 ranks.
    let analysis = session.taint_run(app.taint_run_params())?;

    println!("{}", render_table2(&app.name, &analysis.table2));

    // §A1: which marked parameters actually matter? The numerical inputs
    // mass, beta, u0 must not appear in any dependency structure — the
    // paper's findings are "identical with the ground truth established by
    // experts in a laborious manual process".
    println!("\nParameter relevance (functions affected):");
    for (idx, name) in analysis.param_names.iter().enumerate() {
        let affected = analysis.deps.values().filter(|d| d.depends_on(idx)).count();
        let verdict = if affected == 0 {
            "prune (irrelevant)"
        } else {
            "keep"
        };
        println!("  {name:<10} {affected:>4} functions → {verdict}");
    }

    println!("\nDependency structures of the §6 kernels:");
    for name in pt_apps::milc::known_kernels() {
        let f = app.module.function_by_name(name).unwrap();
        println!(
            "  {:<24} {}",
            name,
            analysis.deps[&f].render(&analysis.param_names)
        );
    }

    // §C2: coverage across the p domain reveals the gather's algorithm
    // switch. The batch reuses this session's static stage and fans the
    // four coverage runs across worker threads.
    let ranks = [4i64, 8, 16, 32];
    let param_sets: Vec<Vec<(String, i64)>> = ranks
        .iter()
        .map(|&p| app.sweep_params(&[("nx", 16), ("p", p)]))
        .collect();
    let mut observations = Vec::new();
    let mut names = Vec::new();
    for (p, result) in ranks.iter().zip(session.analyze_batch(&param_sets)) {
        observations.push(result?.branch_observations(&app.module));
        names.push(format!("p={p}"));
    }
    println!();
    println!(
        "{}",
        render_segmentation(&detect_segmentation(&observations), &names)
    );
    Ok(())
}
